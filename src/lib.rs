//! Root crate: re-exports the whole Effective PRE workspace; the
//! examples/ and tests/ directories of the repository hang off this
//! package. See the `epre` crate for the primary API.
pub mod report;

pub use epre::*;
