//! `epre` — the workspace's command-line driver.
//!
//! ```text
//! epre lint <file.iloc|-> [--json] [--no-audit]   lint ILOC, print diagnostics
//! epre rules                                      list the lint rule registry
//! epre opt <file.iloc|-> [--level L] [--verify-each]
//!                                                 optimize ILOC, print result
//! ```
//!
//! `lint` exits 0 when no error-severity diagnostics were found, 1 when
//! there were errors, 2 on usage or parse problems. `opt --verify-each`
//! re-lints after every pass and aborts (exit 1) naming the pass that
//! introduced an invariant violation.

use std::io::Read;
use std::process::ExitCode;

use epre::{OptLevel, Optimizer};
use epre_ir::parse_module;
use epre_lint::{lint_module, LintOptions, Rule};

const USAGE: &str = "usage:\n  \
    epre lint <file.iloc|-> [--json] [--no-audit]\n  \
    epre rules\n  \
    epre opt <file.iloc|-> [--level baseline|partial|reassociation|distribution|distribution+lvn] [--verify-each]";

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))
    }
}

fn parse_input(path: &str) -> Result<epre_ir::Module, String> {
    let text = read_input(path)?;
    parse_module(&text).map_err(|e| format!("parse error in `{path}`: {e}"))
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut opts = LintOptions::default();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--no-audit" => opts.audit_redundancy = false,
            other if path.is_none() && (!other.starts_with('-') || other == "-") => {
                path = Some(other);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let module = match parse_input(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = lint_module(&module, &opts);
    if json {
        println!("{}", report.to_json());
    } else if report.diagnostics.is_empty() {
        println!("clean: no diagnostics");
    } else {
        println!("{report}");
    }
    if report.has_errors() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_rules() -> ExitCode {
    println!("{:<6} {:<26} {:<8} invariant", "code", "rule", "severity");
    for rule in Rule::ALL {
        println!(
            "{:<6} {:<26} {:<8} {}",
            rule.code(),
            rule.slug(),
            rule.severity().label(),
            rule.invariant()
        );
    }
    ExitCode::SUCCESS
}

fn level_by_label(label: &str) -> Option<OptLevel> {
    [
        OptLevel::Baseline,
        OptLevel::Partial,
        OptLevel::Reassociation,
        OptLevel::Distribution,
        OptLevel::DistributionLvn,
    ]
    .into_iter()
    .find(|l| l.label() == label)
}

fn cmd_opt(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut level = OptLevel::Distribution;
    let mut verify_each = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--verify-each" => verify_each = true,
            "--level" => {
                let Some(l) = it.next().and_then(|s| level_by_label(s)) else {
                    eprintln!("--level needs one of: baseline partial reassociation distribution distribution+lvn");
                    return ExitCode::from(2);
                };
                level = l;
            }
            other if path.is_none() && (!other.starts_with('-') || other == "-") => {
                path = Some(other);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let module = match parse_input(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let opt = Optimizer::new(level);
    let out = if verify_each {
        match opt.optimize_verified(&module) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("verify-each: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        opt.optimize(&module)
    };
    print!("{out}");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("rules") => cmd_rules(),
        Some("opt") => cmd_opt(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
