//! `epre` — the workspace's command-line driver.
//!
//! ```text
//! epre lint <file.iloc|-> [--json] [--no-audit]   lint ILOC, print diagnostics
//! epre rules                                      list the lint rule registry
//! epre opt <file.iloc|-> [--level L] [--verify-each] [--best-effort] [--fuel N]
//!          [--jobs N] [--timings] [--deadline-ms N] [--max-growth X]
//!          [--journal PATH] [--resume]
//!          [--trace PATH] [--trace-format jsonl|chrome]
//!                                                 optimize ILOC, print result
//! epre report [--quick] [--json] [--out PATH]     the paper's Table 1 over the suite
//! epre explain <file.iloc|-> <function> [--level L]
//!                                                 per-pass provenance ledgers
//! epre fuzz <file.iloc|-> [--seed N] [--iters N] [--fuel N] [--level L]
//!                                                 seeded fault-injection campaign
//! epre reduce <file.iloc|-> (--panic-contains S | --lint-code CODE | --oracle-mismatch)
//!             [--level L] [--fuel N]              ddmin-shrink a failing module
//! epre serve [--port N | --stdio] [--cache PATH] [--cache-max-bytes N] [--queue N]
//!            [--workers N] [--jobs N] [--breaker N] [--client-threshold N] [--fuel N]
//!            [--idle-timeout-ms N] [--max-session-requests N] [--drain-deadline-ms N]
//!            [--chaos-inject nonterminating|quadratic-growth] [--telemetry PATH]
//!            [--metrics-port N] [--slow-ms N] [--flight-recorder PATH]
//!                                                 run the optimization daemon
//! epre submit <file.iloc|-> [--addr HOST:PORT] [--level L] [--policy P] [--deadline-ms N]
//!             [--retries N] [--seed N] [--client ID]
//! epre submit (--stats | --ping | --shutdown | --metrics) [--addr HOST:PORT]
//!                                                 talk to a running daemon
//! epre metrics [--addr HOST:PORT] [--json]        scrape the daemon's live metrics
//! epre loadgen [--addr HOST:PORT] [--clients N] [--duration-ms N] [--seed N]
//!              [--mix COLD:WARM:POISON:OVERSIZED] [--warm-pool N] [--cache-max-bytes N]
//!              [--out PATH] [--no-record] [--metrics-snapshot]
//!                                                 mixed-workload load generator
//! ```
//!
//! `lint` exits 0 when no error-severity diagnostics were found, 1 when
//! there were errors, 2 on usage or parse problems. `opt --verify-each`
//! re-lints after every pass and aborts (exit 1) naming the pass that
//! introduced an invariant violation; `opt --best-effort` instead contains
//! pass faults (rollback + continue), reports them on stderr, and exits 3
//! when anything was contained or rolled back (the output is still a safe,
//! runnable module — the distinct code lets scripts notice the
//! degradation). `--deadline-ms` imposes a per-pass wall-clock budget and
//! a watchdog-enforced per-function deadline; `--max-growth` caps code
//! growth as a ratio of the input size; `--journal PATH` write-ahead-logs
//! every finished function so a killed run can continue with `--resume`,
//! producing byte-identical output. All four require `--best-effort`.
//! `fuzz` exits 1 when any injected fault escaped containment. `reduce`
//! prints the shrunk module on stdout and statistics on stderr, exiting 2
//! when the failure predicate does not even hold on the input.
//!
//! `serve` runs the crash-safe optimization daemon of `epre-serve`: a
//! length-prefixed JSONL protocol over TCP (`--port`, `0` picks an
//! ephemeral port; the bound address is printed as `listening on …`) or
//! stdio (`--stdio`). Results are cached content-addressed in `--cache
//! PATH` write-ahead style — a `kill -9` loses at most the in-flight
//! function and restart recovers the rest. `submit` is the matching
//! client: it optimizes a file through the daemon with jittered
//! exponential-backoff retries, exiting 0 on a clean response, 3 on a
//! degraded one (faults were contained; the module on stdout is still
//! safe), 1 when the server refused or every retry failed, 2 on usage
//! errors. `report` refuses (exit 1) to run when an existing
//! `BENCH_OPT.json` or `BENCH_SERVE.json` carries a non-monotonic
//! `runs[]` history — the signature of hand-editing or
//! concurrent-writer corruption.
//!
//! The daemon serves keep-alive sessions: one connection carries many
//! requests, ended by a typed `goaway` frame on idle timeout
//! (`--idle-timeout-ms`), per-session request cap
//! (`--max-session-requests`), or drain. `--cache-max-bytes` bounds the
//! result-cache journal: least-recently-used entries are evicted and
//! the journal is compacted online (crash-atomically — a `kill -9` at
//! any instant leaves the old or the new journal, never a torn one).
//! SIGTERM (or a `shutdown` request) drains gracefully: accepting
//! stops, admitted sessions get `--drain-deadline-ms` to finish, the
//! cache is compacted and fsynced, and the daemon exits 0. `loadgen`
//! drives a daemon (a self-hosted ephemeral one by default, or
//! `--addr`) with N concurrent retrying clients for a fixed duration,
//! mixing cold/warm/poison/oversized traffic, checks every answer
//! against ground truth, appends per-class p50/p95/p99 latency and
//! throughput to `BENCH_SERVE.json` (unless `--no-record`), and exits 1
//! on any wrong answer or hang. With `--metrics-snapshot` it also
//! scrapes the daemon's live metrics at the end of the run and records
//! a distilled snapshot in the same entry.
//!
//! The daemon is observable while it runs: `epre metrics` (or `epre
//! submit --metrics`) scrapes per-class latency histograms, queue and
//! worker gauges, per-pass cumulative pipeline time, and every `--stats`
//! counter through the protocol as Prometheus text (`--json` for the
//! integer-exact JSON form); `--metrics-port N` additionally serves the
//! text render over plain HTTP at `GET /metrics` for scrapers that
//! don't speak the framed protocol. `--slow-ms N` writes any request
//! whose total service time exceeds N milliseconds to a slow-request
//! log (`<PATH>.slow` next to the `--flight-recorder PATH`) with the
//! full admission→cache-probe→governed-run→oracle→respond span
//! breakdown, before the answer frame is emitted. `--flight-recorder
//! PATH` keeps a bounded in-memory ring of recent request summaries and
//! daemon events; SIGQUIT checkpoints it to PATH as JSONL (atomically,
//! via rename) without disturbing service, and the drain path writes a
//! final dump on exit.
//!
//! `opt --trace PATH` additionally exports the run's telemetry trace —
//! pass spans with per-pass counters and provenance deltas on the plain
//! path, fault/rollback/quarantine/journal events under `--best-effort`
//! — as JSON Lines or Chrome `trace_event` JSON (loadable in
//! `about://tracing`). Exported traces are deterministic: byte-identical
//! across `--jobs` values. `report` measures the bundled 50-routine suite
//! at the paper's four levels, prints Table 1 (dynamic operation counts,
//! % improvement vs baseline), and writes the JSON form to
//! `BENCH_TABLE1.json` (or `--out PATH`). `explain` prints per-function
//! ledgers of which pass eliminated or inserted how many of which opcode,
//! level by level.

use std::io::Read;
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

use effective_pre::report::collect_table1;
use epre::{Budget, OptLevel, Optimizer};
use epre_harness::{
    harden_events, journal_events, reduce as ddmin_reduce, run_campaign, CampaignConfig,
    FailureSpec, FaultPolicy, Harness, JournalError, OracleConfig, PassFaultModel,
};
use epre_ir::parse_module;
use epre_lint::{lint_module, LintOptions, Rule};
use epre_serve::{
    client::metrics as serve_metrics, ping as serve_ping, run_loadgen, serve_metrics_http,
    serve_stdio, serve_tcp, shutdown as serve_shutdown, stats as serve_stats,
    submit as serve_submit, write_frame, ClientConfig, LoadgenConfig, OptimizeRequest, Request,
    ResultCache, ServeConfig, ServerCore,
};
use epre_telemetry::{ledgers_from_trace, Trace};

const USAGE: &str = "usage:\n  \
    epre lint <file.iloc|-> [--json] [--no-audit]\n  \
    epre rules\n  \
    epre opt <file.iloc|-> [--level baseline|partial|reassociation|distribution|distribution+lvn] [--verify-each] [--best-effort] [--fuel N] [--jobs N] [--timings] [--deadline-ms N] [--max-growth X] [--journal PATH] [--resume] [--trace PATH] [--trace-format jsonl|chrome]\n  \
    epre report [--quick] [--json] [--out PATH]\n  \
    epre explain <file.iloc|-> <function> [--level L]\n  \
    epre fuzz <file.iloc|-> [--seed N] [--iters N] [--fuel N] [--level L]\n  \
    epre reduce <file.iloc|-> (--panic-contains S | --lint-code CODE | --oracle-mismatch) [--level L] [--fuel N]\n  \
    epre serve [--port N | --stdio] [--cache PATH] [--cache-max-bytes N] [--queue N] [--workers N] [--jobs N] [--breaker N] [--client-threshold N] [--fuel N] [--idle-timeout-ms N] [--max-session-requests N] [--drain-deadline-ms N] [--chaos-inject nonterminating|quadratic-growth] [--telemetry PATH] [--metrics-port N] [--slow-ms N] [--flight-recorder PATH]\n  \
    epre submit <file.iloc|-> [--addr HOST:PORT] [--level L] [--policy best-effort|retry-then-skip] [--deadline-ms N] [--retries N] [--seed N] [--client ID]\n  \
    epre submit (--stats | --ping | --shutdown | --metrics) [--addr HOST:PORT]\n  \
    epre metrics [--addr HOST:PORT] [--json]\n  \
    epre loadgen [--addr HOST:PORT] [--clients N] [--duration-ms N] [--seed N] [--mix COLD:WARM:POISON:OVERSIZED] [--warm-pool N] [--cache-max-bytes N] [--out PATH] [--no-record] [--metrics-snapshot]";

/// Render `trace` in the chosen export format and write it to `path`.
fn write_trace(path: &str, trace: &Trace, format: &str) -> Result<(), String> {
    let body = match format {
        "chrome" => trace.to_chrome(),
        _ => trace.to_jsonl(),
    };
    std::fs::write(path, body).map_err(|e| format!("writing trace `{path}`: {e}"))
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading `{path}`: {e}"))
    }
}

fn parse_input(path: &str) -> Result<epre_ir::Module, String> {
    let text = read_input(path)?;
    parse_module(&text).map_err(|e| format!("parse error in `{path}`: {e}"))
}

fn cmd_lint(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut opts = LintOptions::default();
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--no-audit" => opts.audit_redundancy = false,
            other if path.is_none() && (!other.starts_with('-') || other == "-") => {
                path = Some(other);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let module = match parse_input(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = lint_module(&module, &opts);
    if json {
        println!("{}", report.to_json());
    } else if report.diagnostics.is_empty() {
        println!("clean: no diagnostics");
    } else {
        println!("{report}");
    }
    if report.has_errors() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_rules() -> ExitCode {
    println!("{:<6} {:<26} {:<8} invariant", "code", "rule", "severity");
    for rule in Rule::ALL {
        println!(
            "{:<6} {:<26} {:<8} {}",
            rule.code(),
            rule.slug(),
            rule.severity().label(),
            rule.invariant()
        );
    }
    ExitCode::SUCCESS
}

fn level_by_label(label: &str) -> Option<OptLevel> {
    [
        OptLevel::Baseline,
        OptLevel::Partial,
        OptLevel::Reassociation,
        OptLevel::Distribution,
        OptLevel::DistributionLvn,
    ]
    .into_iter()
    .find(|l| l.label() == label)
}

fn parse_u64(flag: &str, v: Option<&String>) -> Result<u64, ExitCode> {
    match v.and_then(|s| s.parse().ok()) {
        Some(n) => Ok(n),
        None => {
            eprintln!("{flag} needs a non-negative integer");
            Err(ExitCode::from(2))
        }
    }
}

fn cmd_opt(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut level = OptLevel::Distribution;
    let mut verify_each = false;
    let mut best_effort = false;
    let mut timings = false;
    let mut jobs: usize = 1;
    let mut fuel = OracleConfig::default().fuel;
    let mut deadline_ms: Option<u64> = None;
    let mut max_growth: Option<f64> = None;
    let mut journal: Option<String> = None;
    let mut resume = false;
    let mut trace_path: Option<String> = None;
    let mut trace_format = "jsonl".to_string();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--verify-each" => verify_each = true,
            "--best-effort" => best_effort = true,
            "--timings" => timings = true,
            "--resume" => resume = true,
            "--trace" => {
                let Some(p) = it.next() else {
                    eprintln!("--trace needs a file path");
                    return ExitCode::from(2);
                };
                trace_path = Some(p.clone());
            }
            "--trace-format" => {
                let Some(f) = it.next().filter(|f| ["jsonl", "chrome"].contains(&f.as_str()))
                else {
                    eprintln!("--trace-format needs one of: jsonl chrome");
                    return ExitCode::from(2);
                };
                trace_format = f.clone();
            }
            "--deadline-ms" => match parse_u64("--deadline-ms", it.next()) {
                Ok(n) if n >= 1 => deadline_ms = Some(n),
                Ok(_) => {
                    eprintln!("--deadline-ms needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--max-growth" => {
                let Some(x) = it.next().and_then(|s| s.parse::<f64>().ok()) else {
                    eprintln!("--max-growth needs a ratio (e.g. 8.0)");
                    return ExitCode::from(2);
                };
                if !x.is_finite() || x < 1.0 {
                    eprintln!("--max-growth needs a finite ratio >= 1");
                    return ExitCode::from(2);
                }
                max_growth = Some(x);
            }
            "--journal" => {
                let Some(p) = it.next() else {
                    eprintln!("--journal needs a file path");
                    return ExitCode::from(2);
                };
                journal = Some(p.clone());
            }
            "--jobs" => match parse_u64("--jobs", it.next()) {
                Ok(n) if n >= 1 => jobs = n as usize,
                Ok(_) => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--fuel" => match parse_u64("--fuel", it.next()) {
                Ok(n) => fuel = n,
                Err(code) => return code,
            },
            "--level" => {
                let Some(l) = it.next().and_then(|s| level_by_label(s)) else {
                    eprintln!("--level needs one of: baseline partial reassociation distribution distribution+lvn");
                    return ExitCode::from(2);
                };
                level = l;
            }
            other if path.is_none() && (!other.starts_with('-') || other == "-") => {
                path = Some(other);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if !best_effort
        && (deadline_ms.is_some() || max_growth.is_some() || journal.is_some() || resume)
    {
        eprintln!("--deadline-ms, --max-growth, --journal, and --resume require --best-effort");
        return ExitCode::from(2);
    }
    if resume && journal.is_none() {
        eprintln!("--resume requires --journal PATH");
        return ExitCode::from(2);
    }
    let module = match parse_input(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if best_effort {
        let oracle = OracleConfig { fuel, ..OracleConfig::default() };
        let mut harness = Harness::new(level, FaultPolicy::BestEffort).with_oracle(oracle);
        if let Some(x) = max_growth {
            harness = harness.with_budget(Budget { max_growth: Some(x), ..harness.budget });
        }
        if let Some(ms) = deadline_ms {
            harness = harness.with_deadline(Duration::from_millis(ms));
        }
        let out = if let Some(jpath) = &journal {
            match harness.optimize_journaled(&module, jobs, Path::new(jpath), resume) {
                Ok(j) => {
                    eprintln!(
                        "journal: {} function(s) reused, {} optimized fresh{}",
                        j.reused,
                        j.fresh,
                        if j.resumed_torn { " (torn tail discarded)" } else { "" }
                    );
                    if let Some(tpath) = &trace_path {
                        let trace = Trace::from_events(journal_events(&j));
                        if let Err(e) = write_trace(tpath, &trace, &trace_format) {
                            eprintln!("error: {e}");
                            return ExitCode::from(2);
                        }
                    }
                    j.output
                }
                Err(e @ (JournalError::Io(_) | JournalError::HeaderMismatch { .. })) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
                Err(JournalError::Fault(f)) => {
                    eprintln!("error: {f}");
                    return ExitCode::from(1);
                }
            }
        } else {
            let out = harness.optimize_jobs(&module, jobs).expect("best-effort never fails fast");
            if let Some(tpath) = &trace_path {
                let trace = Trace::from_events(harden_events(&out));
                if let Err(e) = write_trace(tpath, &trace, &trace_format) {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
            out
        };
        for f in &out.faults {
            eprintln!("contained: {f}");
        }
        for q in &out.quarantined {
            eprintln!("quarantined: {q}");
        }
        for d in &out.divergences {
            eprintln!("rolled back after divergence: {d}");
        }
        if out.inconclusive > 0 {
            eprintln!(
                "inconclusive: {} oracle comparison(s) ran out of fuel (raise --fuel to make them count)",
                out.inconclusive
            );
        }
        print!("{}", out.module);
        if !out.is_clean() {
            let rolled = out.rolled_back_functions();
            eprintln!(
                "best-effort: {} fault(s) contained, {} pass(es) quarantined, {} function(s) degraded to a rolled-back form: {}",
                out.faults.len(),
                out.quarantined.len(),
                rolled.len(),
                rolled.join(", ")
            );
            // Distinct from lint's 1 and usage's 2: the module on stdout is
            // safe, but something was degraded along the way.
            return ExitCode::from(3);
        }
        return ExitCode::SUCCESS;
    }
    let opt = Optimizer::new(level);
    let out = if verify_each {
        if timings {
            eprintln!("note: --timings is ignored under --verify-each");
        }
        if trace_path.is_some() {
            eprintln!("note: --trace is ignored under --verify-each");
        }
        match opt.optimize_verified(&module) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("verify-each: {e}");
                return ExitCode::from(1);
            }
        }
    } else if timings {
        // Per-pass attribution requires the serial pipeline; --jobs is
        // measured end-to-end by the `throughput` benchmark instead.
        if trace_path.is_some() {
            eprintln!("note: --trace is ignored under --timings");
        }
        let (out, report) = opt.optimize_timed(&module);
        eprint!("{report}");
        out
    } else if let Some(tpath) = &trace_path {
        match opt.try_optimize_traced(&module, jobs, false) {
            Ok((m, trace)) => {
                if let Err(e) = write_trace(tpath, &trace, &trace_format) {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
                m
            }
            Err(f) => {
                eprintln!("error: {f}");
                return ExitCode::from(1);
            }
        }
    } else {
        opt.optimize_jobs(&module, jobs)
    };
    print!("{out}");
    ExitCode::SUCCESS
}

fn cmd_fuzz(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut cfg = CampaignConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => match parse_u64("--seed", it.next()) {
                Ok(n) => cfg.seed = n,
                Err(code) => return code,
            },
            "--iters" => match parse_u64("--iters", it.next()) {
                Ok(n) => cfg.iters = n as usize,
                Err(code) => return code,
            },
            "--fuel" => match parse_u64("--fuel", it.next()) {
                Ok(n) => cfg.fuel = n,
                Err(code) => return code,
            },
            "--level" => {
                let Some(l) = it.next().and_then(|s| level_by_label(s)) else {
                    eprintln!("--level needs one of: baseline partial reassociation distribution distribution+lvn");
                    return ExitCode::from(2);
                };
                cfg.levels = vec![l];
            }
            other if path.is_none() && (!other.starts_with('-') || other == "-") => {
                path = Some(other);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let module = match parse_input(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let report = run_campaign(&[module], &cfg);
    println!("{report}");
    if report.is_contained() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_reduce(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut level = OptLevel::Distribution;
    let mut fuel = OracleConfig::default().fuel;
    let mut panic_needle: Option<String> = None;
    let mut lint_code: Option<String> = None;
    let mut oracle_mismatch = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--panic-contains" => {
                let Some(s) = it.next() else {
                    eprintln!("--panic-contains needs a substring");
                    return ExitCode::from(2);
                };
                panic_needle = Some(s.clone());
            }
            "--lint-code" => {
                let Some(s) = it.next() else {
                    eprintln!("--lint-code needs a rule code such as L020");
                    return ExitCode::from(2);
                };
                lint_code = Some(s.clone());
            }
            "--oracle-mismatch" => oracle_mismatch = true,
            "--fuel" => match parse_u64("--fuel", it.next()) {
                Ok(n) => fuel = n,
                Err(code) => return code,
            },
            "--level" => {
                let Some(l) = it.next().and_then(|s| level_by_label(s)) else {
                    eprintln!("--level needs one of: baseline partial reassociation distribution distribution+lvn");
                    return ExitCode::from(2);
                };
                level = l;
            }
            other if path.is_none() && (!other.starts_with('-') || other == "-") => {
                path = Some(other);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let spec = match (panic_needle, lint_code, oracle_mismatch) {
        (Some(needle), None, false) => FailureSpec::PanicContains { level, needle },
        (None, Some(code), false) => FailureSpec::LintCode { code },
        (None, None, true) => FailureSpec::OracleMismatch {
            level,
            oracle: OracleConfig { fuel, ..OracleConfig::default() },
        },
        _ => {
            eprintln!(
                "reduce needs exactly one of --panic-contains, --lint-code, --oracle-mismatch"
            );
            return ExitCode::from(2);
        }
    };
    let module = match parse_input(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let (small, stats) = ddmin_reduce(&module, &|m| spec.holds(m));
    if !stats.held {
        eprintln!("the failure predicate does not hold on the input module");
        return ExitCode::from(2);
    }
    eprintln!(
        "reduced {} -> {} instructions ({:.0}% smaller), {} -> {} function(s), {} predicate test(s)",
        stats.initial_insts,
        stats.final_insts,
        stats.reduction() * 100.0,
        stats.initial_functions,
        stats.final_functions,
        stats.tests
    );
    print!("{small}");
    ExitCode::SUCCESS
}

fn cmd_report(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut quick = false;
    let mut out_path = String::from("BENCH_TABLE1.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--quick" => quick = true,
            "--out" => {
                let Some(p) = it.next() else {
                    eprintln!("--out needs a file path");
                    return ExitCode::from(2);
                };
                out_path = p.clone();
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    // A corrupted bench history invalidates any trend the report would
    // sit next to: refuse before doing the expensive measurement.
    for bench_file in ["BENCH_OPT.json", "BENCH_SERVE.json"] {
        if let Ok(history) = std::fs::read_to_string(bench_file) {
            if !epre_bench::runs_monotonic(&history) {
                eprintln!(
                    "error: {bench_file} run history is not monotonic (hand-edited or \
                     corrupted?); move the file aside and re-run the benches"
                );
                return ExitCode::from(1);
            }
        }
    }
    let table = collect_table1(quick);
    let json_body = table.to_json();
    if json {
        println!("{json_body}");
    } else {
        print!("{}", table.render_text());
        // The serving story next to the paper's table: the latest
        // recorded loadgen run, when one exists.
        if let Some(line) = std::fs::read_to_string("BENCH_SERVE.json")
            .ok()
            .as_deref()
            .and_then(effective_pre::report::latest_loadgen_summary)
        {
            println!("{line}");
        }
    }
    if let Err(e) = std::fs::write(&out_path, format!("{json_body}\n")) {
        eprintln!("error: writing `{out_path}`: {e}");
        return ExitCode::from(2);
    }
    eprintln!("wrote {out_path}");
    ExitCode::SUCCESS
}

fn cmd_explain(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut function: Option<&str> = None;
    let mut only: Option<OptLevel> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--level" => {
                let Some(l) = it.next().and_then(|s| level_by_label(s)) else {
                    eprintln!("--level needs one of: baseline partial reassociation distribution distribution+lvn");
                    return ExitCode::from(2);
                };
                only = Some(l);
            }
            other if path.is_none() && (!other.starts_with('-') || other == "-") => {
                path = Some(other);
            }
            other if function.is_none() && !other.starts_with('-') => function = Some(other),
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(path), Some(function)) = (path, function) else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let module = match parse_input(path) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if !module.functions.iter().any(|f| f.name == function) {
        eprintln!("error: no function `{function}` in `{path}`");
        return ExitCode::from(2);
    }
    let levels: Vec<OptLevel> = match only {
        Some(l) => vec![l],
        None => OptLevel::PAPER_LEVELS.to_vec(),
    };
    for (i, level) in levels.iter().enumerate() {
        let opt = Optimizer::new(*level);
        let trace = match opt.try_optimize_traced(&module, 1, false) {
            Ok((_, trace)) => trace,
            Err(f) => {
                eprintln!("error: {f}");
                return ExitCode::from(1);
            }
        };
        let ledgers = ledgers_from_trace(&trace);
        let ledger = ledgers
            .iter()
            .find(|l| l.function == function)
            .expect("every optimized function has a ledger");
        if i > 0 {
            println!();
        }
        println!("== {} ==", level.label());
        print!("{}", ledger.render());
    }
    ExitCode::SUCCESS
}

/// Set when the process receives SIGTERM; polled by the drain watcher
/// thread `cmd_serve` spawns. A store is all the handler does — every
/// other step of the drain happens on a normal thread.
static SIGTERM_SEEN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigterm(_sig: i32) {
    SIGTERM_SEEN.store(true, std::sync::atomic::Ordering::SeqCst);
}

#[cfg(unix)]
fn install_sigterm_handler() {
    // The workspace is libc-free, so registration goes through the raw
    // C `signal` symbol. SIGTERM is 15 on every POSIX platform this
    // builds on, and a store-only handler is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(15, on_sigterm as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigterm_handler() {}

/// Set when the process receives SIGQUIT; unlike SIGTERM this is a
/// checkpoint, not a drain — the watcher dumps the flight recorder,
/// clears the flag, and keeps serving.
static SIGQUIT_SEEN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_sigquit(_sig: i32) {
    SIGQUIT_SEEN.store(true, std::sync::atomic::Ordering::SeqCst);
}

#[cfg(unix)]
fn install_sigquit_handler() {
    // SIGQUIT is 3 on every POSIX platform this builds on. Catching it
    // replaces the default core-dump death with a flight-recorder
    // checkpoint, which is the whole point.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(3, on_sigquit as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigquit_handler() {}

/// Write a flight-recorder dump crash-atomically: readers racing the
/// write see the previous complete dump or the new one, never a torn
/// file.
fn dump_flight_recorder(path: &str, body: &str) -> std::io::Result<()> {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, body)?;
    std::fs::rename(&tmp, path)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut port: u16 = 9944;
    let mut stdio = false;
    let mut cache_path: Option<String> = None;
    let mut cache_max_bytes: Option<u64> = None;
    let mut telemetry_path: Option<String> = None;
    let mut metrics_port: Option<u16> = None;
    let mut recorder_path: Option<String> = None;
    let mut config = ServeConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stdio" => stdio = true,
            "--port" => match parse_u64("--port", it.next()) {
                Ok(n) if n <= u16::MAX as u64 => port = n as u16,
                Ok(_) => {
                    eprintln!("--port needs a value in 0..=65535");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--cache" => {
                let Some(p) = it.next() else {
                    eprintln!("--cache needs a file path");
                    return ExitCode::from(2);
                };
                cache_path = Some(p.clone());
            }
            "--telemetry" => {
                let Some(p) = it.next() else {
                    eprintln!("--telemetry needs a file path");
                    return ExitCode::from(2);
                };
                telemetry_path = Some(p.clone());
            }
            "--queue" => match parse_u64("--queue", it.next()) {
                Ok(n) if n >= 1 => config.queue_capacity = n as usize,
                Ok(_) => {
                    eprintln!("--queue needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--workers" => match parse_u64("--workers", it.next()) {
                Ok(n) if n >= 1 => config.workers = n as usize,
                Ok(_) => {
                    eprintln!("--workers needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--jobs" => match parse_u64("--jobs", it.next()) {
                Ok(n) if n >= 1 => config.request_jobs = n as usize,
                Ok(_) => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--breaker" => match parse_u64("--breaker", it.next()) {
                Ok(n) if n >= 1 => config.breaker_threshold = n as usize,
                Ok(_) => {
                    eprintln!("--breaker needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--client-threshold" => match parse_u64("--client-threshold", it.next()) {
                Ok(n) if n >= 1 => config.client_threshold = n as usize,
                Ok(_) => {
                    eprintln!("--client-threshold needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--fuel" => match parse_u64("--fuel", it.next()) {
                Ok(n) => config.oracle.fuel = n,
                Err(code) => return code,
            },
            "--cache-max-bytes" => match parse_u64("--cache-max-bytes", it.next()) {
                Ok(n) if n >= 1 => cache_max_bytes = Some(n),
                Ok(_) => {
                    eprintln!("--cache-max-bytes needs a positive byte count");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--idle-timeout-ms" => match parse_u64("--idle-timeout-ms", it.next()) {
                Ok(n) if n >= 1 => config.idle_timeout = Duration::from_millis(n),
                Ok(_) => {
                    eprintln!("--idle-timeout-ms needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--max-session-requests" => match parse_u64("--max-session-requests", it.next()) {
                Ok(n) if n >= 1 => config.max_session_requests = n as usize,
                Ok(_) => {
                    eprintln!("--max-session-requests needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--drain-deadline-ms" => match parse_u64("--drain-deadline-ms", it.next()) {
                Ok(n) => config.drain_deadline = Duration::from_millis(n),
                Err(code) => return code,
            },
            "--metrics-port" => match parse_u64("--metrics-port", it.next()) {
                Ok(n) if n <= u16::MAX as u64 => metrics_port = Some(n as u16),
                Ok(_) => {
                    eprintln!("--metrics-port needs a value in 0..=65535");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--slow-ms" => match parse_u64("--slow-ms", it.next()) {
                Ok(n) => config.slow_us = Some(n.saturating_mul(1000)),
                Err(code) => return code,
            },
            "--flight-recorder" => {
                let Some(p) = it.next() else {
                    eprintln!("--flight-recorder needs a file path");
                    return ExitCode::from(2);
                };
                recorder_path = Some(p.clone());
            }
            "--chaos-inject" => {
                let model = it.next().and_then(|s| match s.as_str() {
                    "nonterminating" => Some(PassFaultModel::NonTerminating),
                    "quadratic-growth" => Some(PassFaultModel::QuadraticGrowth),
                    _ => None,
                });
                let Some(model) = model else {
                    eprintln!("--chaos-inject needs one of: nonterminating quadratic-growth");
                    return ExitCode::from(2);
                };
                config.chaos = Some(model);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let cache = match &cache_path {
        Some(p) => match ResultCache::open_capped(Path::new(p), cache_max_bytes) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: opening cache `{p}`: {e}");
                return ExitCode::from(2);
            }
        },
        None => ResultCache::in_memory_capped(cache_max_bytes),
    };
    let rec = cache.recovery();
    if rec.recovered > 0 || rec.resumed_torn || rec.corrupt_dropped > 0 {
        eprintln!(
            "cache: {} entr{} recovered{}{}",
            rec.recovered,
            if rec.recovered == 1 { "y" } else { "ies" },
            if rec.resumed_torn { ", torn tail discarded" } else { "" },
            if rec.corrupt_dropped > 0 {
                format!(", {} corrupt record(s) dropped", rec.corrupt_dropped)
            } else {
                String::new()
            }
        );
    }
    let mut core = ServerCore::new(config, cache);
    if let Some(p) = &telemetry_path {
        match std::fs::OpenOptions::new().create(true).append(true).open(p) {
            Ok(f) => core.attach_telemetry(Box::new(f)),
            Err(e) => {
                eprintln!("error: opening telemetry log `{p}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(p) = &recorder_path {
        // Slow requests stream to an append-only sibling of the dump
        // path: the dump is a point-in-time checkpoint, the slow log is
        // the durable record (written before the answer frame, so any
        // answer a client holds is already on disk).
        let slow_path = format!("{p}.slow");
        match std::fs::OpenOptions::new().create(true).append(true).open(&slow_path) {
            Ok(f) => core.attach_slow_log(Box::new(f)),
            Err(e) => {
                eprintln!("error: opening slow-request log `{slow_path}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if stdio {
        if metrics_port.is_some() {
            eprintln!("--metrics-port needs TCP mode (it is its own listener)");
            return ExitCode::from(2);
        }
        // stdout is the protocol channel in stdio mode; status goes to
        // stderr only.
        eprintln!("serving on stdio");
        let (mut stdin, mut stdout) = (std::io::stdin().lock(), std::io::stdout().lock());
        let result = serve_stdio(&core, &mut stdin, &mut stdout);
        if let Some(p) = &recorder_path {
            if let Err(e) = dump_flight_recorder(p, &core.recorder().dump()) {
                eprintln!("error: writing flight recorder `{p}`: {e}");
            }
        }
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    let listener = match std::net::TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: binding 127.0.0.1:{port}: {e}");
            return ExitCode::from(2);
        }
    };
    let local_addr = match listener.local_addr() {
        Ok(addr) => {
            // Scrapable by wrappers (`--port 0` picks an ephemeral port).
            println!("listening on {addr}");
            use std::io::Write as _;
            let _ = std::io::stdout().flush();
            addr
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    // SIGTERM takes the same graceful drain a `shutdown` request does:
    // a watcher thread polls the handler's flag, flips the core's
    // shutdown state, and pokes the acceptor awake with a control ping.
    // Exit 0 after the drain is the contract init systems rely on;
    // SIGKILL still tests the crash-recovery path instead.
    let core = std::sync::Arc::new(core);
    install_sigterm_handler();
    install_sigquit_handler();
    if let Some(mp) = metrics_port {
        // The plain-HTTP scrape endpoint is its own listener so metrics
        // stay reachable even when the protocol queue is saturated.
        let ml = match std::net::TcpListener::bind(("127.0.0.1", mp)) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: binding metrics port 127.0.0.1:{mp}: {e}");
                return ExitCode::from(2);
            }
        };
        match ml.local_addr() {
            Ok(addr) => {
                println!("metrics on http://{addr}/metrics");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
        let core = std::sync::Arc::clone(&core);
        std::thread::spawn(move || {
            let _ = serve_metrics_http(ml, core);
        });
    }
    {
        let core = std::sync::Arc::clone(&core);
        let recorder_path = recorder_path.clone();
        std::thread::spawn(move || loop {
            if SIGQUIT_SEEN.swap(false, std::sync::atomic::Ordering::SeqCst) {
                // A checkpoint, not a drain: dump and keep serving.
                match &recorder_path {
                    Some(p) => match dump_flight_recorder(p, &core.recorder().dump()) {
                        Ok(()) => eprintln!("sigquit: flight recorder dumped to {p}"),
                        Err(e) => eprintln!("sigquit: writing flight recorder `{p}`: {e}"),
                    },
                    None => eprintln!("sigquit: no --flight-recorder path, dump skipped"),
                }
            }
            if SIGTERM_SEEN.load(std::sync::atomic::Ordering::SeqCst) {
                eprintln!("sigterm: draining");
                core.request_shutdown();
                if let Ok(stream) = std::net::TcpStream::connect(local_addr) {
                    let mut w = std::io::BufWriter::new(stream);
                    let _ = write_frame(&mut w, &Request::Ping.encode());
                }
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }
    let result = serve_tcp(std::sync::Arc::clone(&core), listener);
    if let Some(p) = &recorder_path {
        // The final dump rides the drain path so a graceful exit leaves
        // the same artifact a SIGQUIT checkpoint would.
        if let Err(e) = dump_flight_recorder(p, &core.recorder().dump()) {
            eprintln!("error: writing flight recorder `{p}`: {e}");
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let mut path: Option<&str> = None;
    let mut cfg = ClientConfig::default();
    let mut level = OptLevel::Distribution;
    let mut policy = "best-effort".to_string();
    let mut deadline_ms: Option<u64> = None;
    let mut client = String::new();
    let mut stats_only = false;
    let mut ping_only = false;
    let mut shutdown_only = false;
    let mut metrics_only = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--stats" => stats_only = true,
            "--ping" => ping_only = true,
            "--shutdown" => shutdown_only = true,
            "--metrics" => metrics_only = true,
            "--addr" => {
                let Some(addr) = it.next() else {
                    eprintln!("--addr needs HOST:PORT");
                    return ExitCode::from(2);
                };
                cfg.addr = addr.clone();
            }
            "--client" => {
                let Some(id) = it.next() else {
                    eprintln!("--client needs an identifier");
                    return ExitCode::from(2);
                };
                client = id.clone();
            }
            "--policy" => {
                let Some(p) = it
                    .next()
                    .filter(|p| ["best-effort", "retry-then-skip"].contains(&p.as_str()))
                else {
                    eprintln!("--policy needs one of: best-effort retry-then-skip");
                    return ExitCode::from(2);
                };
                policy = p.clone();
            }
            "--deadline-ms" => match parse_u64("--deadline-ms", it.next()) {
                Ok(n) => deadline_ms = Some(n),
                Err(code) => return code,
            },
            "--retries" => match parse_u64("--retries", it.next()) {
                Ok(n) => cfg.attempts = (n as u32).saturating_add(1),
                Err(code) => return code,
            },
            "--seed" => match parse_u64("--seed", it.next()) {
                Ok(n) => cfg.seed = n,
                Err(code) => return code,
            },
            "--level" => {
                let Some(l) = it.next().and_then(|s| level_by_label(s)) else {
                    eprintln!("--level needs one of: baseline partial reassociation distribution distribution+lvn");
                    return ExitCode::from(2);
                };
                level = l;
            }
            other if path.is_none() && (!other.starts_with('-') || other == "-") => {
                path = Some(other);
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if ping_only {
        return match serve_ping(&cfg) {
            Ok(()) => {
                println!("pong");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    if shutdown_only {
        return match serve_shutdown(&cfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    if metrics_only {
        return match serve_metrics(&cfg, "text") {
            Ok(body) => {
                print!("{body}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    if stats_only {
        return match serve_stats(&cfg) {
            Ok(counters) => {
                for (name, value) in counters {
                    println!("{name} {value}");
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(1)
            }
        };
    }
    let Some(path) = path else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let module_text = match read_input(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let request = OptimizeRequest {
        client,
        level: level.label().to_string(),
        policy,
        deadline_ms,
        idempotency: String::new(),
        request: String::new(),
        module_text,
    };
    match serve_submit(&cfg, &request) {
        Ok(outcome) => {
            let done = &outcome.done;
            eprintln!(
                "serve: {} — {} reused, {} fresh, {} fault(s), {} rollback(s), attempt {}",
                done.status, done.reused, done.fresh, done.faults, done.rollbacks,
                outcome.attempts
            );
            print!("{}", done.module_text);
            if done.status == "clean" {
                ExitCode::SUCCESS
            } else {
                // Same convention as `opt --best-effort`: the module on
                // stdout is safe, but something degraded along the way.
                ExitCode::from(3)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_metrics(args: &[String]) -> ExitCode {
    let mut cfg = ClientConfig::default();
    let mut format = "text";
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                let Some(addr) = it.next() else {
                    eprintln!("--addr needs HOST:PORT");
                    return ExitCode::from(2);
                };
                cfg.addr = addr.clone();
            }
            "--json" => format = "json",
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match serve_metrics(&cfg, format) {
        Ok(body) => {
            print!("{body}");
            if !body.ends_with('\n') {
                println!();
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_loadgen(args: &[String]) -> ExitCode {
    let mut cfg = LoadgenConfig::default();
    let mut addr: Option<String> = None;
    let mut cache_max_bytes: u64 = 256 * 1024;
    let mut out_path = String::from("BENCH_SERVE.json");
    let mut record = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                let Some(s) = it.next() else {
                    eprintln!("--addr needs HOST:PORT");
                    return ExitCode::from(2);
                };
                addr = Some(s.clone());
            }
            "--clients" => match parse_u64("--clients", it.next()) {
                Ok(n) if n >= 1 => cfg.clients = n as usize,
                Ok(_) => {
                    eprintln!("--clients needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--duration-ms" => match parse_u64("--duration-ms", it.next()) {
                Ok(n) if n >= 1 => cfg.duration = Duration::from_millis(n),
                Ok(_) => {
                    eprintln!("--duration-ms needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--seed" => match parse_u64("--seed", it.next()) {
                Ok(n) => cfg.seed = n,
                Err(code) => return code,
            },
            "--warm-pool" => match parse_u64("--warm-pool", it.next()) {
                Ok(n) if n >= 1 => cfg.warm_pool = n as usize,
                Ok(_) => {
                    eprintln!("--warm-pool needs a positive integer");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--cache-max-bytes" => match parse_u64("--cache-max-bytes", it.next()) {
                Ok(n) if n >= 1 => cache_max_bytes = n,
                Ok(_) => {
                    eprintln!("--cache-max-bytes needs a positive byte count");
                    return ExitCode::from(2);
                }
                Err(code) => return code,
            },
            "--mix" => {
                let parts: Option<Vec<u32>> = it
                    .next()
                    .map(|s| s.split(':').map(|p| p.parse::<u32>().ok()).collect())
                    .unwrap_or(None);
                match parts.as_deref() {
                    Some([c, w, p, o]) if c + w + p + o > 0 => {
                        cfg.mix_cold = *c;
                        cfg.mix_warm = *w;
                        cfg.mix_poison = *p;
                        cfg.mix_oversized = *o;
                    }
                    _ => {
                        eprintln!(
                            "--mix needs COLD:WARM:POISON:OVERSIZED weights, at least one nonzero"
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => {
                let Some(p) = it.next() else {
                    eprintln!("--out needs a file path");
                    return ExitCode::from(2);
                };
                out_path = p.clone();
            }
            "--no-record" => record = false,
            "--metrics-snapshot" => cfg.metrics_snapshot = true,
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // Self-serve unless a daemon was named: an in-process server on an
    // ephemeral port over a byte-capped temp-file cache, so one command
    // exercises eviction, online compaction, and keep-alive rotation
    // under load — and can assert the cap held afterward.
    let (report, capped_file_bytes) = if let Some(a) = addr {
        cfg.addr = a;
        match run_loadgen(&cfg) {
            Ok(r) => (r, None),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        let tmp = std::env::temp_dir().join(format!("epre-loadgen-{}.cache", std::process::id()));
        let _ = std::fs::remove_file(&tmp);
        let cache = match ResultCache::open_capped(&tmp, Some(cache_max_bytes)) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: opening temp cache `{}`: {e}", tmp.display());
                return ExitCode::from(2);
            }
        };
        let config = ServeConfig {
            // Keep-alive clients pin workers; leave headroom for the
            // raw poison/oversized connections.
            workers: cfg.clients + 2,
            max_session_requests: 64, // exercise goaway rotation
            ..Default::default()
        };
        let core = std::sync::Arc::new(ServerCore::new(config, cache));
        let listener = match std::net::TcpListener::bind("127.0.0.1:0") {
            Ok(l) => l,
            Err(e) => {
                eprintln!("error: binding an ephemeral port: {e}");
                return ExitCode::from(2);
            }
        };
        let local = listener.local_addr().expect("bound listener has an address");
        let server = {
            let core = std::sync::Arc::clone(&core);
            std::thread::spawn(move || serve_tcp(core, listener))
        };
        cfg.addr = local.to_string();
        eprintln!("loadgen: self-serving on {local} (cache cap {cache_max_bytes} bytes)");
        let result = run_loadgen(&cfg);
        let ccfg = ClientConfig { addr: cfg.addr.clone(), ..Default::default() };
        let file_bytes = serve_stats(&ccfg).ok().and_then(|counters| {
            counters.into_iter().find(|(k, _)| k == "cache_file_bytes").map(|(_, v)| v)
        });
        if let Err(e) = serve_shutdown(&ccfg) {
            eprintln!("error: shutting the self-served daemon down: {e}");
            return ExitCode::from(1);
        }
        match server.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                eprintln!("error: self-served daemon: {e}");
                return ExitCode::from(1);
            }
            Err(_) => {
                eprintln!("error: self-served daemon panicked");
                return ExitCode::from(1);
            }
        }
        let _ = std::fs::remove_file(&tmp);
        let _ = std::fs::remove_file(epre_harness::rewrite_staging_path(&tmp));
        match result {
            Ok(r) => (r, Some((file_bytes, cache_max_bytes))),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(1);
            }
        }
    };

    print!("{}", report.render_text());
    let mut failed = false;
    if let Some((file_bytes, cap)) = capped_file_bytes {
        match file_bytes {
            Some(bytes) if bytes <= cap => {
                println!("cache cap held: {bytes} <= {cap} bytes");
            }
            Some(bytes) => {
                eprintln!("error: cache journal grew past its cap: {bytes} > {cap} bytes");
                failed = true;
            }
            None => {
                eprintln!("error: could not read cache_file_bytes from the daemon's stats");
                failed = true;
            }
        }
    }
    if record {
        let existing = std::fs::read_to_string(&out_path).ok();
        let json = epre_bench::merge_named_runs("serve", existing.as_deref(), &report.json_entry());
        match std::fs::write(&out_path, &json) {
            Ok(()) => println!(
                "wrote {out_path} ({} run(s) on record)",
                epre_bench::next_run_number(&json)
            ),
            Err(e) => {
                eprintln!("error: writing `{out_path}`: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if report.wrongs() > 0 || report.hangs() > 0 {
        eprintln!(
            "error: {} wrong answer(s), {} hang(s) — the daemon failed under load",
            report.wrongs(),
            report.hangs()
        );
        failed = true;
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => cmd_lint(&args[1..]),
        Some("rules") => cmd_rules(),
        Some("opt") => cmd_opt(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("reduce") => cmd_reduce(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("metrics") => cmd_metrics(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
