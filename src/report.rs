//! The `epre report` collection side: run the 50-routine suite at the
//! paper's four levels and fill a [`Table1`].
//!
//! The rendering lives in `epre-telemetry` (dependency-free and
//! unit-testable); this module owns the expensive part — compiling every
//! routine, optimizing it at each level, and interpreting the driver to
//! get the dynamic operation counts the paper's Table 1 reports.

use epre::{measure_module, OptLevel};
use epre_frontend::NamingMode;
use epre_telemetry::{Table1, Table1Row};

/// How many routines `--quick` keeps (the front of the alphabetical
/// suite order, like the quick mode of the throughput benchmark).
pub const QUICK_ROUTINES: usize = 8;

/// Measure the suite at every paper level and assemble the Table 1 data.
/// `quick` restricts the run to the first [`QUICK_ROUTINES`] routines
/// (CI-friendly); the full run covers all 50.
///
/// # Panics
/// Panics if a bundled routine fails to compile or execute, or if two
/// levels disagree on a routine's checksum — all of which mean a pass
/// miscompiled and the report must not silently print numbers from it.
pub fn collect_table1(quick: bool) -> Table1 {
    let mut routines = epre_suite::all_routines();
    if quick {
        routines.truncate(QUICK_ROUTINES);
    }
    let levels: Vec<String> =
        OptLevel::PAPER_LEVELS.iter().map(|l| l.label().to_string()).collect();
    let mut rows = Vec::with_capacity(routines.len());
    for r in &routines {
        let module = r
            .compile(NamingMode::Disciplined)
            .unwrap_or_else(|e| panic!("{}: bundled routine failed to compile: {e}", r.name));
        let measurements = measure_module(&module, r.entry, &[])
            .unwrap_or_else(|e| panic!("{}: driver failed to execute: {e}", r.name));
        rows.push(Table1Row {
            name: r.name.to_string(),
            counts: measurements.iter().map(|m| m.counts.total).collect(),
        });
    }
    Table1 { levels, rows }
}

/// One-line summary of the most recent loadgen run in a
/// `BENCH_SERVE.json` history, rendered next to Table 1 by
/// `epre report` so the serving story sits beside the paper's numbers.
///
/// This string-scans instead of parsing: the history carries float
/// fields (`rps`, `p99_ms`) that the workspace's integer-only JSON
/// codec rejects by design, and the report needs exactly four values
/// per class. Returns `None` when the history has no loadgen entry or
/// the entry is missing the scanned fields.
pub fn latest_loadgen_summary(history: &str) -> Option<String> {
    let tag = "\"loadgen\":true";
    let pos = history.rfind(tag)?;
    let entry = &history[pos..];
    let run = history[..pos].rfind("\"run\":").and_then(|rp| {
        let digits: String =
            history[rp + "\"run\":".len()..].chars().take_while(char::is_ascii_digit).collect();
        digits.parse::<u64>().ok()
    });
    let rps = scan_number(entry, "rps")?;
    let classes = &entry[entry.find("\"classes\":{")?..];
    let mut parts = Vec::new();
    let mut rest = classes;
    // Each per-class object opens `"<name>":{"ops":`; the first
    // `p99_ms` after that anchor belongs to the same class.
    while let Some(p) = rest.find("\":{\"ops\":") {
        let before = &rest[..p];
        let name = &before[before.rfind('"').map_or(0, |i| i + 1)..];
        if let Some(p99) = scan_number(&rest[p..], "p99_ms") {
            parts.push(format!("{name} p99 {p99} ms"));
        }
        rest = &rest[p + "\":{\"ops\":".len()..];
    }
    if parts.is_empty() {
        return None;
    }
    let run_label = run.map_or_else(String::new, |r| format!(" run {r}"));
    Some(format!("serve loadgen{run_label}: {rps} rps — {}", parts.join(", ")))
}

/// The digits-and-dot span right after `"key":`, or `None` when the key
/// is absent or its value does not start numeric.
fn scan_number<'a>(s: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let rest = &s[s.find(&needle)? + needle.len()..];
    let end = rest.find(|c: char| !c.is_ascii_digit() && c != '.').unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_paper_columns_and_improves() {
        let t = collect_table1(true);
        assert_eq!(
            t.levels,
            ["baseline", "partial", "reassociation", "distribution"]
        );
        assert_eq!(t.rows.len(), QUICK_ROUTINES);
        let totals = t.totals();
        assert!(totals[1] < totals[0], "PRE must beat baseline overall: {totals:?}");
        assert!(t.rows.iter().all(|r| r.counts.len() == 4));
        // The renderings work end to end on real data.
        assert!(t.render_text().lines().count() == QUICK_ROUTINES + 2);
        assert!(t.to_json().starts_with("{\"bench\":\"table1\""));
    }

    #[test]
    fn loadgen_summary_scans_the_latest_run() {
        let history = concat!(
            "{\"bench\":\"serve\",\"runs\":[",
            "{\"run\":0,\"loadgen\":true,\"clients\":2,\"duration_ms\":100,",
            "\"total_ops\":5,\"rps\":50.000,\"reconnects\":0,\"wrong\":0,",
            "\"hangs\":0,\"failures\":0,\"classes\":{",
            "\"cold\":{\"ops\":3,\"rps\":30.0,\"p50_ms\":1.0,\"p95_ms\":2.0,\"p99_ms\":2.500}}},",
            "{\"run\":1,\"loadgen\":true,\"clients\":4,\"duration_ms\":200,",
            "\"total_ops\":40,\"rps\":200.125,\"reconnects\":1,\"wrong\":0,",
            "\"hangs\":0,\"failures\":2,\"classes\":{",
            "\"cold\":{\"ops\":20,\"rps\":100.0,\"p50_ms\":1.0,\"p95_ms\":2.0,\"p99_ms\":3.250},",
            "\"warm\":{\"ops\":20,\"rps\":100.0,\"p50_ms\":0.2,\"p95_ms\":0.4,\"p99_ms\":0.875}}}",
            "]}\n",
        );
        let line = latest_loadgen_summary(history).unwrap();
        assert_eq!(
            line,
            "serve loadgen run 1: 200.125 rps — cold p99 3.250 ms, warm p99 0.875 ms"
        );
        // No loadgen entry → no line, not a bogus one.
        assert_eq!(latest_loadgen_summary("{\"bench\":\"serve\",\"runs\":[]}"), None);
        assert_eq!(latest_loadgen_summary(""), None);
    }
}
