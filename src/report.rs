//! The `epre report` collection side: run the 50-routine suite at the
//! paper's four levels and fill a [`Table1`].
//!
//! The rendering lives in `epre-telemetry` (dependency-free and
//! unit-testable); this module owns the expensive part — compiling every
//! routine, optimizing it at each level, and interpreting the driver to
//! get the dynamic operation counts the paper's Table 1 reports.

use epre::{measure_module, OptLevel};
use epre_frontend::NamingMode;
use epre_telemetry::{Table1, Table1Row};

/// How many routines `--quick` keeps (the front of the alphabetical
/// suite order, like the quick mode of the throughput benchmark).
pub const QUICK_ROUTINES: usize = 8;

/// Measure the suite at every paper level and assemble the Table 1 data.
/// `quick` restricts the run to the first [`QUICK_ROUTINES`] routines
/// (CI-friendly); the full run covers all 50.
///
/// # Panics
/// Panics if a bundled routine fails to compile or execute, or if two
/// levels disagree on a routine's checksum — all of which mean a pass
/// miscompiled and the report must not silently print numbers from it.
pub fn collect_table1(quick: bool) -> Table1 {
    let mut routines = epre_suite::all_routines();
    if quick {
        routines.truncate(QUICK_ROUTINES);
    }
    let levels: Vec<String> =
        OptLevel::PAPER_LEVELS.iter().map(|l| l.label().to_string()).collect();
    let mut rows = Vec::with_capacity(routines.len());
    for r in &routines {
        let module = r
            .compile(NamingMode::Disciplined)
            .unwrap_or_else(|e| panic!("{}: bundled routine failed to compile: {e}", r.name));
        let measurements = measure_module(&module, r.entry, &[])
            .unwrap_or_else(|e| panic!("{}: driver failed to execute: {e}", r.name));
        rows.push(Table1Row {
            name: r.name.to_string(),
            counts: measurements.iter().map(|m| m.counts.total).collect(),
        });
    }
    Table1 { levels, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_has_paper_columns_and_improves() {
        let t = collect_table1(true);
        assert_eq!(
            t.levels,
            ["baseline", "partial", "reassociation", "distribution"]
        );
        assert_eq!(t.rows.len(), QUICK_ROUTINES);
        let totals = t.totals();
        assert!(totals[1] < totals[0], "PRE must beat baseline overall: {totals:?}");
        assert!(t.rows.iter().all(|r| r.counts.len() == 4));
        // The renderings work end to end on real data.
        assert!(t.render_text().lines().count() == QUICK_ROUTINES + 2);
        assert!(t.to_json().starts_with("{\"bench\":\"table1\""));
    }
}
