#!/bin/sh
# Smoke-run the optimizer-throughput benchmark (one repetition, one thread
# count) and fail if it cannot complete. The full run — three repetitions,
# jobs in {2,4,8} — is the same command without `--quick`; both rewrite
# BENCH_OPT.json at the workspace root.
set -eu
cd "$(dirname "$0")/.."
# shellcheck disable=SC2086  # CARGO_FLAGS is intentionally word-split
cargo bench -p epre-bench --bench throughput ${CARGO_FLAGS:-} -- --quick
