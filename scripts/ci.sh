#!/bin/sh
# The tier-1 gate in one command: build, test, lint with warnings hard,
# then a one-repetition benchmark smoke to prove the measurement path
# still runs. Anything here failing means the tree is not mergeable.
#
# Extra cargo flags (e.g. --offline on an air-gapped box) can be passed
# through CARGO_FLAGS: `CARGO_FLAGS=--offline scripts/ci.sh`.
set -eu
cd "$(dirname "$0")/.."

CARGO_FLAGS="${CARGO_FLAGS:-}"

echo "==> cargo build --release"
# shellcheck disable=SC2086  # CARGO_FLAGS is intentionally word-split
cargo build --release $CARGO_FLAGS

echo "==> cargo test -q"
cargo test -q $CARGO_FLAGS

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace $CARGO_FLAGS -- -D warnings

echo "==> bench smoke"
CARGO_FLAGS="$CARGO_FLAGS" scripts/bench_smoke.sh

echo "==> ci: all green"
