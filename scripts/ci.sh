#!/bin/sh
# The tier-1 gate in one command: build, test, lint with warnings hard,
# then a one-repetition benchmark smoke to prove the measurement path
# still runs. Anything here failing means the tree is not mergeable.
#
# Extra cargo flags (e.g. --offline on an air-gapped box) can be passed
# through CARGO_FLAGS: `CARGO_FLAGS=--offline scripts/ci.sh`.
set -eu
cd "$(dirname "$0")/.."

CARGO_FLAGS="${CARGO_FLAGS:-}"

echo "==> cargo build --release"
# shellcheck disable=SC2086  # CARGO_FLAGS is intentionally word-split
cargo build --release $CARGO_FLAGS

echo "==> cargo test -q"
cargo test -q $CARGO_FLAGS

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace $CARGO_FLAGS -- -D warnings

echo "==> bench smoke"
CARGO_FLAGS="$CARGO_FLAGS" scripts/bench_smoke.sh

echo "==> BENCH_OPT schema check (cpus, coalesce_share, monotonic runs)"
# Every appended run must record the host's cpu count (so parallel
# speedups are interpretable) and the coalesce share of pass time (so the
# hot-spot trajectory is visible per PR); the bench itself asserts the
# appended run keeps the monotonic `run` history, and `epre report` below
# refuses to read the file otherwise — a second, independent enforcement.
grep -q '"cpus":' BENCH_OPT.json || { echo "BENCH_OPT.json missing cpus field" >&2; exit 1; }
grep -q '"coalesce_share":' BENCH_OPT.json || { echo "BENCH_OPT.json missing coalesce_share field" >&2; exit 1; }

echo "==> report smoke (epre report --quick)"
tmpdir="$(mktemp -d)"
serve_pid=""
trap '[ -n "$serve_pid" ] && kill -9 "$serve_pid" 2>/dev/null; rm -rf "$tmpdir"' EXIT
target/release/epre report --quick --out "$tmpdir/BENCH_TABLE1.json" > /dev/null
grep -q '^{"bench":"table1","levels":\["baseline","partial","reassociation","distribution"\]' \
    "$tmpdir/BENCH_TABLE1.json"

echo "==> trace schema sanity"
# Export a JSONL trace for a tiny module and require every line to carry
# the telemetry schema: a leading dense seq plus pass and function tags.
cat > "$tmpdir/trace_smoke.iloc" << 'ILOC'
module data 0
function smoke(r0:i) -> i
block b0:
  r1 <- loadi 2:i
  r2 <- add.i r0, r1
  r3 <- add.i r0, r1
  r4 <- mul.i r2, r3
  ret r4
end
ILOC
target/release/epre opt "$tmpdir/trace_smoke.iloc" \
    --trace "$tmpdir/trace.jsonl" --trace-format jsonl > /dev/null
lines="$(wc -l < "$tmpdir/trace.jsonl")"
schema_ok="$(grep -c '^{"seq":[0-9]*,.*"function":.*"pass":' "$tmpdir/trace.jsonl")"
[ "$lines" -gt 0 ] && [ "$schema_ok" -eq "$lines" ] || {
    echo "trace schema check failed: $schema_ok of $lines line(s) well-formed" >&2
    exit 1
}

echo "==> serve smoke (daemon, warm cache, kill -9, recovery)"
# Start the daemon on an ephemeral port, scrape the bound address, and
# submit the same module twice: the second answer must come entirely from
# the cache and be byte-identical to the first.
start_serve() {
    : > "$tmpdir/serve.log"
    target/release/epre serve --port 0 --cache "$tmpdir/serve.cache" \
        --telemetry "$tmpdir/serve.tel" > "$tmpdir/serve.log" 2>/dev/null &
    serve_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$tmpdir/serve.log")"
        [ -n "$addr" ] && return 0
        sleep 0.1
    done
    echo "serve daemon did not come up" >&2
    exit 1
}
start_serve
target/release/epre submit "$tmpdir/trace_smoke.iloc" --addr "$addr" \
    > "$tmpdir/serve1.iloc" 2>/dev/null
target/release/epre submit "$tmpdir/trace_smoke.iloc" --addr "$addr" \
    > "$tmpdir/serve2.iloc" 2>/dev/null
cmp -s "$tmpdir/serve1.iloc" "$tmpdir/serve2.iloc" || {
    echo "cached resubmit diverged from the cold answer" >&2
    exit 1
}
# Capture stats before grepping: `grep -q` closing the pipe early would
# make the client's stdout writes fail mid-listing.
stats="$(target/release/epre submit --stats --addr "$addr")"
printf '%s\n' "$stats" | grep -q '^cache_hits 1$' || {
    echo "warm resubmit did not hit the cache" >&2
    exit 1
}
# Crash the daemon outright; a restart over the same cache must serve the
# same module from the recovered entries, byte-identically.
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
start_serve
target/release/epre submit "$tmpdir/trace_smoke.iloc" --addr "$addr" \
    > "$tmpdir/serve3.iloc" 2>/dev/null
cmp -s "$tmpdir/serve1.iloc" "$tmpdir/serve3.iloc" || {
    echo "post-crash answer diverged" >&2
    exit 1
}
stats="$(target/release/epre submit --stats --addr "$addr")"
printf '%s\n' "$stats" | grep -q '^cache_recovered 1$' || {
    echo "restart did not recover the journaled cache entry" >&2
    exit 1
}
target/release/epre submit --shutdown --addr "$addr" > /dev/null
wait "$serve_pid" || { echo "daemon did not exit cleanly on shutdown" >&2; exit 1; }
serve_pid=""

echo "==> metrics smoke (live metrics schema, SIGQUIT flight recorder)"
# A daemon with the full observability surface on: one submit, then the
# protocol metrics scrape must carry the required series with the fixed
# histogram schema, and a SIGQUIT must checkpoint the flight recorder as
# valid JSONL — without disturbing service.
: > "$tmpdir/metrics.log"
target/release/epre serve --port 0 --slow-ms 0 \
    --flight-recorder "$tmpdir/flight.jsonl" > "$tmpdir/metrics.log" 2>/dev/null &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
    addr="$(sed -n 's/^listening on //p' "$tmpdir/metrics.log")"
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "metrics daemon did not come up" >&2; exit 1; }
target/release/epre submit "$tmpdir/trace_smoke.iloc" --addr "$addr" > /dev/null 2>/dev/null
metrics="$(target/release/epre metrics --addr "$addr")"
for series in \
    'epre_requests_total 1' \
    '# TYPE epre_request_latency_us histogram' \
    'epre_request_latency_us_bucket{class="cold",le="+Inf"} 1' \
    'epre_request_latency_us_count{class="warm"} 0' \
    'epre_pass_runs_total{pass=' \
    'epre_queue_depth' \
    'epre_workers_saturated_total 0' \
    'epre_slow_requests_total 1'; do
    printf '%s\n' "$metrics" | grep -qF "$series" || {
        echo "metrics render missing: $series" >&2
        exit 1
    }
done
kill -QUIT "$serve_pid"
for _ in $(seq 1 100); do
    [ -s "$tmpdir/flight.jsonl" ] && break
    sleep 0.1
done
[ -s "$tmpdir/flight.jsonl" ] || { echo "SIGQUIT flight-recorder dump missing" >&2; exit 1; }
head -1 "$tmpdir/flight.jsonl" | grep -q '^{"flight_recorder":true,' || {
    echo "flight-recorder dump missing its header line" >&2
    exit 1
}
bad="$(grep -cv '^{.*}$' "$tmpdir/flight.jsonl" || true)"
[ "$bad" -eq 0 ] || { echo "flight-recorder dump has $bad non-JSONL line(s)" >&2; exit 1; }
grep -q '"kind":"request"' "$tmpdir/flight.jsonl" || {
    echo "flight-recorder dump recorded no requests" >&2
    exit 1
}
# --slow-ms 0 makes every request slow: the slow log must hold the
# submit with its full span breakdown.
grep -q '"spans":{"admission":' "$tmpdir/flight.jsonl.slow" || {
    echo "slow-request log missing the span breakdown" >&2
    exit 1
}
# The checkpoint did not disturb service: the daemon still answers and
# drains cleanly.
target/release/epre submit --ping --addr "$addr" > /dev/null
target/release/epre submit --shutdown --addr "$addr" > /dev/null
wait "$serve_pid" || { echo "daemon did not exit cleanly after SIGQUIT" >&2; exit 1; }
serve_pid=""

echo "==> serve bench smoke"
# shellcheck disable=SC2086
cargo bench -p epre-bench --bench serve $CARGO_FLAGS -- --quick
grep -q '^{"bench":"serve","runs":\[' BENCH_SERVE.json || {
    echo "BENCH_SERVE.json schema check failed" >&2
    exit 1
}

echo "==> loadgen smoke (sustained mixed load, zero wrong answers)"
# ~10s of cold/warm/poison/oversized traffic against a self-served
# daemon with a tight cache cap. The binary itself exits nonzero on any
# wrong answer, hang, or cap breach; the greps then pin the recorded
# schema: a loadgen run with per-class percentiles must have landed in
# BENCH_SERVE.json.
target/release/epre loadgen --clients 4 --duration-ms 8000 \
    --cache-max-bytes 65536 --seed 2026 --metrics-snapshot > "$tmpdir/loadgen.txt"
grep -q '"loadgen":true' BENCH_SERVE.json || {
    echo "BENCH_SERVE.json missing the loadgen run" >&2
    exit 1
}
grep -q '"p50_ms":' BENCH_SERVE.json && grep -q '"p95_ms":' BENCH_SERVE.json \
    && grep -q '"p99_ms":' BENCH_SERVE.json || {
    echo "BENCH_SERVE.json loadgen run missing per-class percentiles" >&2
    exit 1
}
# --metrics-snapshot rides along: the recorded run carries the daemon's
# own view of the load (scraped live metrics, distilled).
grep -q '"server":{"requests":' BENCH_SERVE.json || {
    echo "BENCH_SERVE.json loadgen run missing the server metrics snapshot" >&2
    exit 1
}

echo "==> report refuses a non-monotonic BENCH_SERVE.json"
# A corrupted run history must be an error, not a silently absorbed
# trend: `epre report` in a directory whose BENCH_SERVE.json runs go
# backwards has to exit nonzero before measuring anything.
mkdir -p "$tmpdir/refuse"
printf '{"bench":"serve","runs":[{"run":1},{"run":0}]}\n' > "$tmpdir/refuse/BENCH_SERVE.json"
if (cd "$tmpdir/refuse" && "$OLDPWD/target/release/epre" report --quick \
        --out t.json > /dev/null 2>&1); then
    echo "report accepted a non-monotonic BENCH_SERVE.json" >&2
    exit 1
fi

echo "==> ci: all green"
