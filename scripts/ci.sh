#!/bin/sh
# The tier-1 gate in one command: build, test, lint with warnings hard,
# then a one-repetition benchmark smoke to prove the measurement path
# still runs. Anything here failing means the tree is not mergeable.
#
# Extra cargo flags (e.g. --offline on an air-gapped box) can be passed
# through CARGO_FLAGS: `CARGO_FLAGS=--offline scripts/ci.sh`.
set -eu
cd "$(dirname "$0")/.."

CARGO_FLAGS="${CARGO_FLAGS:-}"

echo "==> cargo build --release"
# shellcheck disable=SC2086  # CARGO_FLAGS is intentionally word-split
cargo build --release $CARGO_FLAGS

echo "==> cargo test -q"
cargo test -q $CARGO_FLAGS

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace $CARGO_FLAGS -- -D warnings

echo "==> bench smoke"
CARGO_FLAGS="$CARGO_FLAGS" scripts/bench_smoke.sh

echo "==> report smoke (epre report --quick)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
target/release/epre report --quick --out "$tmpdir/BENCH_TABLE1.json" > /dev/null
grep -q '^{"bench":"table1","levels":\["baseline","partial","reassociation","distribution"\]' \
    "$tmpdir/BENCH_TABLE1.json"

echo "==> trace schema sanity"
# Export a JSONL trace for a tiny module and require every line to carry
# the telemetry schema: a leading dense seq plus pass and function tags.
cat > "$tmpdir/trace_smoke.iloc" << 'ILOC'
module data 0
function smoke(r0:i) -> i
block b0:
  r1 <- loadi 2:i
  r2 <- add.i r0, r1
  r3 <- add.i r0, r1
  r4 <- mul.i r2, r3
  ret r4
end
ILOC
target/release/epre opt "$tmpdir/trace_smoke.iloc" \
    --trace "$tmpdir/trace.jsonl" --trace-format jsonl > /dev/null
lines="$(wc -l < "$tmpdir/trace.jsonl")"
schema_ok="$(grep -c '^{"seq":[0-9]*,.*"function":.*"pass":' "$tmpdir/trace.jsonl")"
[ "$lines" -gt 0 ] && [ "$schema_ok" -eq "$lines" ] || {
    echo "trace schema check failed: $schema_ok of $lines line(s) well-formed" >&2
    exit 1
}

echo "==> ci: all green"
