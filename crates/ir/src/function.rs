//! Basic blocks, terminators, functions and modules.

use crate::inst::Inst;
use crate::types::{BlockId, Reg, Ty};

/// The control-flow-transfer instruction closing a basic block.
///
/// Terminators count toward the dynamic operation count: the paper reports
/// "dynamic operation count, **including branches**".
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional jump.
    Jump {
        /// Target block.
        target: BlockId,
    },
    /// Conditional branch: transfers to `then_to` when `cond` is non-zero,
    /// else to `else_to`.
    Branch {
        /// Condition register (Int 0/1).
        cond: Reg,
        /// Target when true.
        then_to: BlockId,
        /// Target when false.
        else_to: BlockId,
    },
    /// Return from the function, optionally with a value.
    Return {
        /// The returned register, if the function returns a value.
        value: Option<Reg>,
    },
}

impl Terminator {
    /// The CFG successors named by this terminator, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump { target } => vec![*target],
            Terminator::Branch { then_to, else_to, .. } => vec![*then_to, *else_to],
            Terminator::Return { .. } => vec![],
        }
    }

    /// The registers read by this terminator.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Terminator::Branch { cond, .. } => vec![*cond],
            Terminator::Return { value: Some(v) } => vec![*v],
            _ => vec![],
        }
    }

    /// Apply `f` to every used register in place.
    pub fn map_uses(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Terminator::Branch { cond, .. } => *cond = f(*cond),
            Terminator::Return { value: Some(v) } => *v = f(*v),
            _ => {}
        }
    }

    /// Redirect every successor edge equal to `from` to `to`.
    pub fn retarget(&mut self, from: BlockId, to: BlockId) {
        match self {
            Terminator::Jump { target } => {
                if *target == from {
                    *target = to;
                }
            }
            Terminator::Branch { then_to, else_to, .. } => {
                if *then_to == from {
                    *then_to = to;
                }
                if *else_to == from {
                    *else_to = to;
                }
            }
            Terminator::Return { .. } => {}
        }
    }
}

/// A basic block: a label, straight-line instructions, one terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// The instructions, in execution order. φ-nodes, when present, must
    /// form a prefix of this vector.
    pub insts: Vec<Inst>,
    /// The closing control transfer.
    pub term: Terminator,
}

impl Block {
    /// A new empty block ending in `term`.
    pub fn new(term: Terminator) -> Self {
        Block { insts: Vec::new(), term }
    }

    /// Iterator over the φ-nodes at the head of the block.
    pub fn phis(&self) -> impl Iterator<Item = &Inst> {
        self.insts.iter().take_while(|i| matches!(i, Inst::Phi { .. }))
    }

    /// Number of φ-nodes at the head of the block.
    pub fn phi_count(&self) -> usize {
        self.insts.iter().take_while(|i| matches!(i, Inst::Phi { .. })).count()
    }
}

/// A function: parameters, typed virtual registers, and a block vector whose
/// index 0 is the entry block.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Function name (unique within a [`Module`]).
    pub name: String,
    /// Parameter registers, defined on entry, in call order.
    pub params: Vec<Reg>,
    /// Return type, or `None` for subroutines.
    pub ret_ty: Option<Ty>,
    /// The basic blocks; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
    /// Type of every register, indexed by [`Reg::index`].
    pub reg_ty: Vec<Ty>,
}

impl Function {
    /// Create an empty function with no blocks (use [`crate::FunctionBuilder`]
    /// for convenient construction).
    pub fn new(name: impl Into<String>, ret_ty: Option<Ty>) -> Self {
        Function {
            name: name.into(),
            params: Vec::new(),
            ret_ty,
            blocks: Vec::new(),
            reg_ty: Vec::new(),
        }
    }

    /// Allocate a fresh virtual register of type `ty`.
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        let r = Reg(self.reg_ty.len() as u32);
        self.reg_ty.push(ty);
        r
    }

    /// Number of virtual registers allocated so far.
    pub fn reg_count(&self) -> usize {
        self.reg_ty.len()
    }

    /// The type of register `r`.
    ///
    /// # Panics
    /// Panics if `r` was not allocated by this function.
    pub fn ty_of(&self, r: Reg) -> Ty {
        self.reg_ty[r.index()]
    }

    /// Append a new block and return its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(block);
        id
    }

    /// Shared access to a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterator over `(BlockId, &Block)` pairs in index order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i as u32), b))
    }

    /// All block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Static operation count: instructions plus terminators, the metric of
    /// the paper's Table 2 (code expansion from forward propagation).
    pub fn static_op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len() + 1).sum()
    }

    /// Total number of (non-terminator) instructions.
    pub fn inst_count(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Run the structural verifier; see [`crate::verify`].
    pub fn verify(&self) -> Result<(), crate::VerifyError> {
        crate::verify::verify_function(self)
    }
}

/// A compilation unit: functions plus the size of the statically-allocated
/// data segment (arrays), in words.
///
/// Mini-FORTRAN arrays are laid out by the front end at fixed addresses, so
/// the interpreter only needs `data_words` to size its memory.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// The functions of the unit. The entry point for execution is chosen by
    /// the caller (the interpreter takes a function name).
    pub functions: Vec<Function>,
    /// Words of statically allocated array storage.
    pub data_words: usize,
}

impl Module {
    /// An empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Total static operation count over all functions.
    pub fn static_op_count(&self) -> usize {
        self.functions.iter().map(Function::static_op_count).sum()
    }

    /// Verify every function in the module.
    pub fn verify(&self) -> Result<(), crate::VerifyError> {
        for f in &self.functions {
            f.verify()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, Inst};
    use crate::types::Const;

    fn sample_function() -> Function {
        let mut f = Function::new("t", Some(Ty::Int));
        let a = f.new_reg(Ty::Int);
        f.params.push(a);
        let one = f.new_reg(Ty::Int);
        let sum = f.new_reg(Ty::Int);
        let mut b = Block::new(Terminator::Return { value: Some(sum) });
        b.insts.push(Inst::LoadI { dst: one, value: Const::Int(1) });
        b.insts.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: sum, lhs: a, rhs: one });
        f.add_block(b);
        f
    }

    #[test]
    fn function_accounting() {
        let f = sample_function();
        assert_eq!(f.reg_count(), 3);
        assert_eq!(f.inst_count(), 2);
        assert_eq!(f.static_op_count(), 3); // 2 insts + 1 terminator
        assert_eq!(f.ty_of(Reg(0)), Ty::Int);
    }

    #[test]
    fn terminator_successors() {
        assert_eq!(Terminator::Jump { target: BlockId(3) }.successors(), vec![BlockId(3)]);
        let b = Terminator::Branch { cond: Reg(0), then_to: BlockId(1), else_to: BlockId(2) };
        assert_eq!(b.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(b.uses(), vec![Reg(0)]);
        assert_eq!(Terminator::Return { value: None }.successors(), vec![]);
    }

    #[test]
    fn terminator_retarget() {
        let mut t = Terminator::Branch { cond: Reg(0), then_to: BlockId(1), else_to: BlockId(1) };
        t.retarget(BlockId(1), BlockId(5));
        assert_eq!(t.successors(), vec![BlockId(5), BlockId(5)]);
    }

    #[test]
    fn phi_prefix_counting() {
        let mut b = Block::new(Terminator::Return { value: None });
        b.insts.push(Inst::Phi { dst: Reg(0), args: vec![] });
        b.insts.push(Inst::Phi { dst: Reg(1), args: vec![] });
        b.insts.push(Inst::Copy { dst: Reg(2), src: Reg(0) });
        assert_eq!(b.phi_count(), 2);
        assert_eq!(b.phis().count(), 2);
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new();
        m.functions.push(sample_function());
        assert!(m.function("t").is_some());
        assert!(m.function("missing").is_none());
        assert_eq!(m.static_op_count(), 3);
        m.function_mut("t").unwrap().name = "u".into();
        assert!(m.function("u").is_some());
    }
}
