//! Three-address instructions: [`Inst`], [`BinOp`], [`UnOp`].

use crate::types::{BlockId, Const, Reg, Ty};

/// A binary ILOC operator.
///
/// Comparison operators produce an `Int` 0/1 regardless of the operand type
/// carried by the instruction. The *associative* operators — `Add`, `Mul`,
/// `Min`, `Max`, `And`, `Or`, `Xor` — are the ones global reassociation may
/// reorder (paper §2.1: "the choice of expression ordering occurs with
/// associative operations such as add, multiply, and, or, min, and max").
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction. Rewritten as `x + (-y)` by reassociation (Frailey).
    Sub,
    /// Multiplication.
    Mul,
    /// Division. Deliberately **not** rewritten as `x * 1/y` (paper §3.1,
    /// precision).
    Div,
    /// Remainder (integer only in practice).
    Rem,
    /// Minimum — associative and commutative.
    Min,
    /// Maximum — associative and commutative.
    Max,
    /// Bitwise/logical and.
    And,
    /// Bitwise/logical or.
    Or,
    /// Bitwise/logical xor.
    Xor,
    /// Left shift. Not associative — see paper §5.2 on why multiplies must
    /// not be turned into shifts before reassociation.
    Shl,
    /// Arithmetic right shift.
    Shr,
    /// Compare equal (result Int 0/1).
    CmpEq,
    /// Compare not-equal.
    CmpNe,
    /// Compare less-than.
    CmpLt,
    /// Compare less-or-equal.
    CmpLe,
    /// Compare greater-than.
    CmpGt,
    /// Compare greater-or-equal.
    CmpGe,
}

impl BinOp {
    /// Is the operator associative (and commutative), i.e. a candidate for
    /// global reassociation?
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// Is the operator commutative? (Associativity implies commutativity for
    /// every operator in this IR; `CmpEq`/`CmpNe` are commutative too.)
    pub fn is_commutative(self) -> bool {
        self.is_associative() || matches!(self, BinOp::CmpEq | BinOp::CmpNe)
    }

    /// Is this a comparison operator (producing an `Int` 0/1)?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::CmpEq | BinOp::CmpNe | BinOp::CmpLt | BinOp::CmpLe | BinOp::CmpGt | BinOp::CmpGe
        )
    }

    /// The type of the result, given the operand type carried by the
    /// instruction.
    pub fn result_ty(self, operand_ty: Ty) -> Ty {
        if self.is_comparison() {
            Ty::Int
        } else {
            operand_ty
        }
    }

    /// The textual mnemonic (matches the parser).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::CmpEq => "cmpeq",
            BinOp::CmpNe => "cmpne",
            BinOp::CmpLt => "cmplt",
            BinOp::CmpLe => "cmple",
            BinOp::CmpGt => "cmpgt",
            BinOp::CmpGe => "cmpge",
        }
    }

    /// All binary operators, for exhaustive testing.
    pub const ALL: [BinOp; 18] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::Min,
        BinOp::Max,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::CmpEq,
        BinOp::CmpNe,
        BinOp::CmpLt,
        BinOp::CmpLe,
        BinOp::CmpGt,
        BinOp::CmpGe,
    ];
}

/// A unary ILOC operator.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum UnOp {
    /// Arithmetic negation. Introduced by reassociation when it rewrites
    /// `x - y` as `x + (-y)`; the peephole pass reconstructs subtractions.
    Neg,
    /// Bitwise/logical not.
    Not,
    /// Integer → float conversion (FORTRAN `FLOAT`).
    I2F,
    /// Float → integer conversion, truncating (FORTRAN `INT`).
    F2I,
}

impl UnOp {
    /// The type of the result, given the operand type carried by the
    /// instruction.
    pub fn result_ty(self, operand_ty: Ty) -> Ty {
        match self {
            UnOp::Neg | UnOp::Not => operand_ty,
            UnOp::I2F => Ty::Float,
            UnOp::F2I => Ty::Int,
        }
    }

    /// The textual mnemonic (matches the parser).
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::I2F => "i2f",
            UnOp::F2I => "f2i",
        }
    }

    /// All unary operators, for exhaustive testing.
    pub const ALL: [UnOp; 4] = [UnOp::Neg, UnOp::Not, UnOp::I2F, UnOp::F2I];
}

/// A single three-address instruction.
///
/// Every instruction except `Store` defines at most one register. The `ty`
/// fields record the *operand* type; result types derive from it (see
/// [`BinOp::result_ty`]).
#[derive(Clone, PartialEq, Debug)]
pub enum Inst {
    /// `dst <- op.ty lhs, rhs`
    Bin {
        /// The operator.
        op: BinOp,
        /// Operand type.
        ty: Ty,
        /// Target register.
        dst: Reg,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst <- op.ty src`
    Un {
        /// The operator.
        op: UnOp,
        /// Operand type.
        ty: Ty,
        /// Target register.
        dst: Reg,
        /// Operand.
        src: Reg,
    },
    /// `dst <- loadi value` — materialize a constant.
    LoadI {
        /// Target register.
        dst: Reg,
        /// The constant.
        value: Const,
    },
    /// `dst <- copy src` — a register-to-register copy. Copies are the
    /// defining instruction of *variable names* in the paper's terminology.
    Copy {
        /// Target register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst <- load.ty [addr]` — read one word of memory.
    Load {
        /// Type of the loaded value.
        ty: Ty,
        /// Target register.
        dst: Reg,
        /// Address register (Int).
        addr: Reg,
    },
    /// `store.ty [addr] <- value` — write one word of memory.
    Store {
        /// Type of the stored value.
        ty: Ty,
        /// Address register (Int).
        addr: Reg,
        /// Value register.
        value: Reg,
    },
    /// `dst <- call f(args...)` or `call f(args...)` — invoke a function or
    /// intrinsic. Calls are opaque to all value-based optimizations.
    Call {
        /// Target register and its type, if the callee returns a value.
        dst: Option<(Reg, Ty)>,
        /// Callee name (user function or intrinsic such as `sqrt`).
        callee: String,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// `dst <- phi [b1: r1, b2: r2, ...]` — SSA φ-node. Only present while a
    /// function is in SSA form; the interpreter rejects it.
    Phi {
        /// Target register.
        dst: Reg,
        /// One `(predecessor, value)` pair per CFG predecessor.
        args: Vec<(BlockId, Reg)>,
    },
}

impl Inst {
    /// The register defined by this instruction, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::LoadI { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Phi { dst, .. } => Some(*dst),
            Inst::Call { dst, .. } => dst.map(|(r, _)| r),
            Inst::Store { .. } => None,
        }
    }

    /// Replace the defined register, if any.
    pub fn set_dst(&mut self, new: Reg) {
        match self {
            Inst::Bin { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::LoadI { dst, .. }
            | Inst::Copy { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Phi { dst, .. } => *dst = new,
            Inst::Call { dst, .. } => {
                if let Some((r, _)) = dst {
                    *r = new;
                }
            }
            Inst::Store { .. } => {}
        }
    }

    /// The registers used (read) by this instruction, in operand order.
    pub fn uses(&self) -> Vec<Reg> {
        match self {
            Inst::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            Inst::Un { src, .. } => vec![*src],
            Inst::LoadI { .. } => vec![],
            Inst::Copy { src, .. } => vec![*src],
            Inst::Load { addr, .. } => vec![*addr],
            Inst::Store { addr, value, .. } => vec![*addr, *value],
            Inst::Call { args, .. } => args.clone(),
            Inst::Phi { args, .. } => args.iter().map(|&(_, r)| r).collect(),
        }
    }

    /// Apply `f` to every used (read) register in place.
    pub fn map_uses(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Inst::Bin { lhs, rhs, .. } => {
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Inst::Un { src, .. } => *src = f(*src),
            Inst::LoadI { .. } => {}
            Inst::Copy { src, .. } => *src = f(*src),
            Inst::Load { addr, .. } => *addr = f(*addr),
            Inst::Store { addr, value, .. } => {
                *addr = f(*addr);
                *value = f(*value);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            Inst::Phi { args, .. } => {
                for (_, r) in args {
                    *r = f(*r);
                }
            }
        }
    }

    /// Is this a *pure expression* — a computation with no side effects whose
    /// value depends only on its register operands (and constants)?
    ///
    /// Pure expressions are the candidates for value numbering, forward
    /// propagation and PRE. Loads are excluded (memory may change), calls are
    /// excluded (opaque), copies and φs are *variable names*, not
    /// expressions.
    pub fn is_expression(&self) -> bool {
        matches!(self, Inst::Bin { .. } | Inst::Un { .. } | Inst::LoadI { .. })
    }

    /// Does the instruction have side effects that forbid deleting it even
    /// when its result is unused?
    pub fn has_side_effects(&self) -> bool {
        matches!(self, Inst::Store { .. } | Inst::Call { .. })
    }

    /// The operand type carried by the instruction, if meaningful.
    pub fn ty(&self) -> Option<Ty> {
        match self {
            Inst::Bin { ty, .. } | Inst::Un { ty, .. } | Inst::Load { ty, .. } | Inst::Store { ty, .. } => {
                Some(*ty)
            }
            Inst::LoadI { value, .. } => Some(value.ty()),
            Inst::Call { dst, .. } => dst.map(|(_, t)| t),
            Inst::Copy { .. } | Inst::Phi { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn associativity_classification() {
        assert!(BinOp::Add.is_associative());
        assert!(BinOp::Mul.is_associative());
        assert!(BinOp::Min.is_associative());
        assert!(BinOp::Max.is_associative());
        assert!(BinOp::And.is_associative());
        assert!(BinOp::Or.is_associative());
        assert!(BinOp::Xor.is_associative());
        assert!(!BinOp::Sub.is_associative());
        assert!(!BinOp::Div.is_associative());
        assert!(!BinOp::Shl.is_associative());
        assert!(!BinOp::CmpLt.is_associative());
    }

    #[test]
    fn commutativity_includes_eq_ne() {
        assert!(BinOp::CmpEq.is_commutative());
        assert!(BinOp::CmpNe.is_commutative());
        assert!(!BinOp::CmpLt.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
    }

    #[test]
    fn comparison_results_are_int() {
        for op in BinOp::ALL {
            if op.is_comparison() {
                assert_eq!(op.result_ty(Ty::Float), Ty::Int);
            } else {
                assert_eq!(op.result_ty(Ty::Float), Ty::Float);
                assert_eq!(op.result_ty(Ty::Int), Ty::Int);
            }
        }
    }

    #[test]
    fn unop_result_types() {
        assert_eq!(UnOp::Neg.result_ty(Ty::Float), Ty::Float);
        assert_eq!(UnOp::Not.result_ty(Ty::Int), Ty::Int);
        assert_eq!(UnOp::I2F.result_ty(Ty::Int), Ty::Float);
        assert_eq!(UnOp::F2I.result_ty(Ty::Float), Ty::Int);
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in BinOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
        for op in UnOp::ALL {
            assert!(seen.insert(op.mnemonic()));
        }
    }

    #[test]
    fn inst_dst_and_uses() {
        let i = Inst::Bin {
            op: BinOp::Add,
            ty: Ty::Int,
            dst: Reg(2),
            lhs: Reg(0),
            rhs: Reg(1),
        };
        assert_eq!(i.dst(), Some(Reg(2)));
        assert_eq!(i.uses(), vec![Reg(0), Reg(1)]);
        assert!(i.is_expression());
        assert!(!i.has_side_effects());

        let s = Inst::Store {
            ty: Ty::Float,
            addr: Reg(3),
            value: Reg(4),
        };
        assert_eq!(s.dst(), None);
        assert_eq!(s.uses(), vec![Reg(3), Reg(4)]);
        assert!(!s.is_expression());
        assert!(s.has_side_effects());

        let c = Inst::Call {
            dst: Some((Reg(5), Ty::Float)),
            callee: "sqrt".into(),
            args: vec![Reg(4)],
        };
        assert_eq!(c.dst(), Some(Reg(5)));
        assert!(c.has_side_effects());
        assert!(!c.is_expression());
    }

    #[test]
    fn map_uses_rewrites_operands() {
        let mut i = Inst::Phi {
            dst: Reg(9),
            args: vec![(BlockId(0), Reg(1)), (BlockId(1), Reg(2))],
        };
        i.map_uses(|r| Reg(r.0 + 10));
        assert_eq!(i.uses(), vec![Reg(11), Reg(12)]);
        assert_eq!(i.dst(), Some(Reg(9)));
    }

    #[test]
    fn set_dst_replaces_target() {
        let mut i = Inst::Copy { dst: Reg(1), src: Reg(0) };
        i.set_dst(Reg(7));
        assert_eq!(i.dst(), Some(Reg(7)));
        let mut s = Inst::Store { ty: Ty::Int, addr: Reg(0), value: Reg(1) };
        s.set_dst(Reg(9)); // no-op
        assert_eq!(s.dst(), None);
    }

    #[test]
    fn ty_of_insts() {
        assert_eq!(
            Inst::LoadI { dst: Reg(0), value: Const::Float(1.0) }.ty(),
            Some(Ty::Float)
        );
        assert_eq!(Inst::Copy { dst: Reg(0), src: Reg(1) }.ty(), None);
    }
}
