//! A convenience builder for constructing [`Function`]s in tests, examples
//! and the front end.

use crate::function::{Block, Function, Terminator};
use crate::inst::{BinOp, Inst, UnOp};
use crate::types::{BlockId, Const, Reg, Ty};

/// Incrementally builds a [`Function`], one block at a time.
///
/// The builder maintains a *current block*; instruction-emitting methods
/// append to it, and terminator methods ([`jump`](Self::jump),
/// [`branch`](Self::branch), [`ret`](Self::ret)) close it. Blocks must be
/// created up front with [`new_block`](Self::new_block) (or implicitly: the
/// entry block exists from the start) and selected with
/// [`switch_to`](Self::switch_to), so forward branches are easy to emit.
///
/// ```
/// use epre_ir::{FunctionBuilder, Ty, BinOp, Const};
///
/// // function clamp0(x) { if x < 0 return 0 else return x }
/// let mut b = FunctionBuilder::new("clamp0", Some(Ty::Int));
/// let x = b.param(Ty::Int);
/// let zero = b.loadi(Const::Int(0));
/// let neg = b.bin(BinOp::CmpLt, Ty::Int, x, zero);
/// let then_b = b.new_block();
/// let else_b = b.new_block();
/// b.branch(neg, then_b, else_b);
/// b.switch_to(then_b);
/// b.ret(Some(zero));
/// b.switch_to(else_b);
/// b.ret(Some(x));
/// let f = b.finish();
/// assert!(f.verify().is_ok());
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    /// Blocks that have been closed with a real terminator.
    closed: Vec<bool>,
}

impl FunctionBuilder {
    /// Start building a function. The entry block is created and selected.
    pub fn new(name: impl Into<String>, ret_ty: Option<Ty>) -> Self {
        let mut func = Function::new(name, ret_ty);
        // Placeholder terminator; overwritten when the block is closed.
        func.add_block(Block::new(Terminator::Return { value: None }));
        FunctionBuilder { func, current: BlockId::ENTRY, closed: vec![false] }
    }

    /// Declare the next parameter, allocating its register.
    pub fn param(&mut self, ty: Ty) -> Reg {
        let r = self.func.new_reg(ty);
        self.func.params.push(r);
        r
    }

    /// Allocate a fresh register without emitting anything.
    pub fn new_reg(&mut self, ty: Ty) -> Reg {
        self.func.new_reg(ty)
    }

    /// Create a new (empty, unselected) block and return its id.
    pub fn new_block(&mut self) -> BlockId {
        self.closed.push(false);
        self.func.add_block(Block::new(Terminator::Return { value: None }))
    }

    /// Select the block that subsequent instructions are appended to.
    ///
    /// # Panics
    /// Panics if `b` has already been closed by a terminator.
    pub fn switch_to(&mut self, b: BlockId) {
        assert!(!self.closed[b.index()], "block {b} already terminated");
        self.current = b;
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// The type of a register allocated by this builder.
    ///
    /// # Panics
    /// Panics if `r` was not allocated by this builder.
    pub fn ty_of(&self, r: Reg) -> Ty {
        self.func.ty_of(r)
    }

    /// Append an arbitrary instruction to the current block.
    pub fn push(&mut self, inst: Inst) {
        assert!(!self.closed[self.current.index()], "emitting into a closed block");
        self.func.block_mut(self.current).insts.push(inst);
    }

    /// Emit `dst <- op.ty lhs, rhs` into a fresh destination register.
    pub fn bin(&mut self, op: BinOp, ty: Ty, lhs: Reg, rhs: Reg) -> Reg {
        let dst = self.func.new_reg(op.result_ty(ty));
        self.push(Inst::Bin { op, ty, dst, lhs, rhs });
        dst
    }

    /// Emit `dst <- op.ty src` into a fresh destination register.
    pub fn un(&mut self, op: UnOp, ty: Ty, src: Reg) -> Reg {
        let dst = self.func.new_reg(op.result_ty(ty));
        self.push(Inst::Un { op, ty, dst, src });
        dst
    }

    /// Emit `dst <- loadi value` into a fresh register.
    pub fn loadi(&mut self, value: Const) -> Reg {
        let dst = self.func.new_reg(value.ty());
        self.push(Inst::LoadI { dst, value });
        dst
    }

    /// Emit `dst <- copy src` into a fresh register of the same type.
    pub fn copy(&mut self, src: Reg) -> Reg {
        let dst = self.func.new_reg(self.func.ty_of(src));
        self.push(Inst::Copy { dst, src });
        dst
    }

    /// Emit `copy` into an *existing* destination register (used for
    /// variable assignment in the front end).
    pub fn copy_to(&mut self, dst: Reg, src: Reg) {
        self.push(Inst::Copy { dst, src });
    }

    /// Emit `dst <- load.ty [addr]` into a fresh register.
    pub fn load(&mut self, ty: Ty, addr: Reg) -> Reg {
        let dst = self.func.new_reg(ty);
        self.push(Inst::Load { ty, dst, addr });
        dst
    }

    /// Emit `store.ty [addr] <- value`.
    pub fn store(&mut self, ty: Ty, addr: Reg, value: Reg) {
        self.push(Inst::Store { ty, addr, value });
    }

    /// Emit a call returning a value of type `ty` into a fresh register.
    pub fn call(&mut self, callee: impl Into<String>, args: Vec<Reg>, ty: Ty) -> Reg {
        let dst = self.func.new_reg(ty);
        self.push(Inst::Call { dst: Some((dst, ty)), callee: callee.into(), args });
        dst
    }

    /// Emit a call with no result (a subroutine call).
    pub fn call_void(&mut self, callee: impl Into<String>, args: Vec<Reg>) {
        self.push(Inst::Call { dst: None, callee: callee.into(), args });
    }

    /// Close the current block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        self.terminate(Terminator::Jump { target });
    }

    /// Close the current block with a conditional branch.
    pub fn branch(&mut self, cond: Reg, then_to: BlockId, else_to: BlockId) {
        self.terminate(Terminator::Branch { cond, then_to, else_to });
    }

    /// Close the current block with a return.
    pub fn ret(&mut self, value: Option<Reg>) {
        self.terminate(Terminator::Return { value });
    }

    fn terminate(&mut self, term: Terminator) {
        assert!(!self.closed[self.current.index()], "block {} already terminated", self.current);
        self.func.block_mut(self.current).term = term;
        self.closed[self.current.index()] = true;
    }

    /// Finish building and return the function.
    ///
    /// # Panics
    /// Panics if any created block was never closed with a terminator.
    pub fn finish(self) -> Function {
        for (i, closed) in self.closed.iter().enumerate() {
            assert!(closed, "block b{i} was never terminated");
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_code() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let c = b.loadi(Const::Int(2));
        let y = b.bin(BinOp::Mul, Ty::Int, x, c);
        b.ret(Some(y));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.inst_count(), 2);
        assert_eq!(f.params, vec![Reg(0)]);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn builds_diamond() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let z = b.loadi(Const::Int(0));
        let c = b.bin(BinOp::CmpLt, Ty::Int, x, z);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(c, t, e);
        let out = b.new_reg(Ty::Int);
        b.switch_to(t);
        b.copy_to(out, z);
        b.jump(j);
        b.switch_to(e);
        b.copy_to(out, x);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(out));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert!(f.verify().is_ok());
    }

    #[test]
    #[should_panic(expected = "never terminated")]
    fn unterminated_block_panics() {
        let mut b = FunctionBuilder::new("f", None);
        let _ = b.new_block();
        b.ret(None);
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut b = FunctionBuilder::new("f", None);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    fn calls_and_memory() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Float));
        let base = b.param(Ty::Int);
        let v = b.load(Ty::Float, base);
        let s = b.call("sqrt", vec![v], Ty::Float);
        b.store(Ty::Float, base, s);
        b.call_void("trace", vec![base]);
        b.ret(Some(s));
        let f = b.finish();
        assert_eq!(f.inst_count(), 4);
        assert!(f.verify().is_ok());
    }
}
