//! Core value and identifier types: [`Reg`], [`BlockId`], [`Ty`], [`Const`].

use std::fmt;

/// A virtual register.
///
/// ILOC has an unbounded supply of virtual registers; register allocation is
/// outside the scope of the paper (only the *coalescing* phase of a
/// Chaitin-style allocator is used, to remove copies). Registers are dense
/// small integers so passes can index side tables by `Reg`.
///
/// ```
/// use epre_ir::Reg;
/// let r = Reg(7);
/// assert_eq!(r.index(), 7);
/// assert_eq!(format!("{r}"), "r7");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl Reg {
    /// The register's dense index, for use with side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Identifier of a basic block within a [`crate::Function`].
///
/// Blocks are stored densely; `BlockId(0)` is always the entry block.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The entry block of every function.
    pub const ENTRY: BlockId = BlockId(0);

    /// The block's dense index, for use with side tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// The type of a register: ILOC is lightly typed, enough to separate integer
/// arithmetic (addresses, subscripts, loop counters) from floating point.
///
/// Booleans (comparison results, branch conditions) are represented as
/// `Int` 0/1, as in the paper's three-address examples.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Ty {
    /// 64-bit signed integer (also used for addresses and booleans).
    Int,
    /// 64-bit IEEE floating point (FORTRAN `REAL`, widened).
    Float,
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Int => write!(f, "i"),
            Ty::Float => write!(f, "f"),
        }
    }
}

/// A compile-time constant, the operand of a `loadi`.
///
/// `Const` implements `Eq`/`Hash` via the float's bit pattern so constants
/// can key hash tables (value numbering, the disciplined-naming front end).
/// Two `NaN`s with identical bits compare equal; `0.0` and `-0.0` differ.
#[derive(Copy, Clone, Debug)]
pub enum Const {
    /// An integer constant.
    Int(i64),
    /// A floating-point constant.
    Float(f64),
}

impl Const {
    /// The type this constant has when materialized into a register.
    pub fn ty(self) -> Ty {
        match self {
            Const::Int(_) => Ty::Int,
            Const::Float(_) => Ty::Float,
        }
    }

    /// The integer payload, if this is an [`Const::Int`].
    pub fn as_int(self) -> Option<i64> {
        match self {
            Const::Int(v) => Some(v),
            Const::Float(_) => None,
        }
    }

    /// The float payload, if this is a [`Const::Float`].
    pub fn as_float(self) -> Option<f64> {
        match self {
            Const::Float(v) => Some(v),
            Const::Int(_) => None,
        }
    }

    /// True if the constant is numerically zero (of either type).
    pub fn is_zero(self) -> bool {
        match self {
            Const::Int(v) => v == 0,
            Const::Float(v) => v == 0.0,
        }
    }

    /// True if the constant is numerically one (of either type).
    pub fn is_one(self) -> bool {
        match self {
            Const::Int(v) => v == 1,
            Const::Float(v) => v == 1.0,
        }
    }
}

impl PartialEq for Const {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Const::Int(a), Const::Int(b)) => a == b,
            (Const::Float(a), Const::Float(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for Const {}

impl std::hash::Hash for Const {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Const::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Const::Float(v) => {
                1u8.hash(state);
                v.to_bits().hash(state);
            }
        }
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}:i"),
            Const::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}:f")
                } else {
                    write!(f, "{v}:f")
                }
            }
        }
    }
}

impl From<i64> for Const {
    fn from(v: i64) -> Self {
        Const::Int(v)
    }
}

impl From<f64> for Const {
    fn from(v: f64) -> Self {
        Const::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(format!("{}", Reg(3)), "r3");
        assert_eq!(Reg(3).index(), 3);
        assert_eq!(format!("{:?}", Reg(3)), "r3");
    }

    #[test]
    fn block_display() {
        assert_eq!(format!("{}", BlockId(2)), "b2");
        assert_eq!(BlockId::ENTRY, BlockId(0));
    }

    #[test]
    fn const_equality_is_bitwise_for_floats() {
        assert_eq!(Const::Float(1.5), Const::Float(1.5));
        assert_ne!(Const::Float(0.0), Const::Float(-0.0));
        assert_ne!(Const::Int(1), Const::Float(1.0));
        let nan = f64::NAN;
        assert_eq!(Const::Float(nan), Const::Float(nan));
    }

    #[test]
    fn const_hashes_consistently() {
        let mut set = HashSet::new();
        set.insert(Const::Int(4));
        set.insert(Const::Float(4.0));
        set.insert(Const::Float(4.0));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn const_predicates() {
        assert!(Const::Int(0).is_zero());
        assert!(Const::Float(0.0).is_zero());
        assert!(Const::Int(1).is_one());
        assert!(Const::Float(1.0).is_one());
        assert!(!Const::Int(2).is_one());
        assert_eq!(Const::Int(7).as_int(), Some(7));
        assert_eq!(Const::Int(7).as_float(), None);
        assert_eq!(Const::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Const::Int(1).ty(), Ty::Int);
        assert_eq!(Const::Float(1.0).ty(), Ty::Float);
    }

    #[test]
    fn const_display() {
        assert_eq!(format!("{}", Const::Int(-3)), "-3:i");
        assert_eq!(format!("{}", Const::Float(2.0)), "2.0:f");
        assert_eq!(format!("{}", Const::Float(2.25)), "2.25:f");
    }

    #[test]
    fn const_from_impls() {
        assert_eq!(Const::from(3i64), Const::Int(3));
        assert_eq!(Const::from(3.0f64), Const::Float(3.0));
    }
}
