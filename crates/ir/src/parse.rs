//! Parser for the textual ILOC format produced by [`crate::print`].
//!
//! The grammar is line-oriented; see the module docs of [`crate::print`] for
//! an example. Parsing reconstructs the exact register and block numbering
//! of the printed function, so `parse(print(f)) == f`.

use std::collections::HashMap;
use std::fmt;

use crate::function::{Block, Function, Module, Terminator};
use crate::inst::{BinOp, Inst, UnOp};
use crate::types::{BlockId, Const, Reg, Ty};

/// An error produced while parsing textual ILOC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, message: message.into() })
}

/// Parse a module: a `module data N` header followed by functions.
///
/// # Errors
/// Returns a [`ParseError`] naming the first malformed line.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut lines = number_lines(text);
    let mut module = Module::new();
    let (n, first) = next_line(&mut lines).ok_or(ParseError {
        line: 0,
        message: "empty input".into(),
    })?;
    let rest = first
        .strip_prefix("module data ")
        .ok_or(ParseError { line: n, message: "expected `module data N`".into() })?;
    module.data_words =
        rest.trim().parse().map_err(|_| ParseError { line: n, message: "bad data size".into() })?;
    while let Some((n, line)) = peek_line(&mut lines) {
        if line.starts_with("function ") {
            module.functions.push(parse_function_lines(&mut lines)?);
        } else {
            return err(n, format!("unexpected line: {line}"));
        }
    }
    Ok(module)
}

/// Parse a single function (no module header).
///
/// # Errors
/// Returns a [`ParseError`] naming the first malformed line.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    let mut lines = number_lines(text);
    let f = parse_function_lines(&mut lines)?;
    if let Some((n, line)) = peek_line(&mut lines) {
        return err(n, format!("trailing input: {line}"));
    }
    Ok(f)
}

type Lines<'a> = std::iter::Peekable<std::vec::IntoIter<(usize, &'a str)>>;

fn number_lines(text: &str) -> Lines<'_> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
        .collect::<Vec<_>>()
        .into_iter()
        .peekable()
}

fn next_line<'a>(lines: &mut Lines<'a>) -> Option<(usize, &'a str)> {
    lines.next()
}

fn peek_line<'a>(lines: &mut Lines<'a>) -> Option<(usize, &'a str)> {
    lines.peek().copied()
}

fn parse_function_lines(lines: &mut Lines<'_>) -> Result<Function, ParseError> {
    let (hn, header) =
        next_line(lines).ok_or(ParseError { line: 0, message: "expected function header".into() })?;
    let header = header
        .strip_prefix("function ")
        .ok_or(ParseError { line: hn, message: "expected `function`".into() })?;
    let open = header.find('(').ok_or(ParseError { line: hn, message: "missing `(`".into() })?;
    let close = header.rfind(')').ok_or(ParseError { line: hn, message: "missing `)`".into() })?;
    let name = header[..open].trim().to_string();
    let params_text = &header[open + 1..close];
    let ret_ty = match header[close + 1..].trim() {
        "" => None,
        s => Some(parse_ty(s.strip_prefix("->").unwrap_or(s).trim(), hn)?),
    };

    let mut func = Function::new(name, ret_ty);
    // Track the types of registers we must allocate (dense numbering).
    let mut reg_tys: HashMap<u32, Ty> = HashMap::new();
    let mut max_reg: i64 = -1;

    let mut params = Vec::new();
    for p in params_text.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let (r, ty) = parse_typed_reg(p, hn)?;
        params.push(r);
        reg_tys.insert(r.0, ty);
        max_reg = max_reg.max(r.0 as i64);
    }
    func.params = params;

    // Collect blocks.
    let mut blocks: Vec<(usize, Vec<Inst>, Option<Terminator>)> = Vec::new();
    loop {
        let (n, line) =
            next_line(lines).ok_or(ParseError { line: 0, message: "unexpected EOF".into() })?;
        if line == "end" {
            break;
        }
        if let Some(rest) = line.strip_prefix("block ") {
            let label = rest.trim_end_matches(':');
            let id = parse_block_id(label, n)?;
            if id.index() != blocks.len() {
                return err(n, format!("blocks must be dense and ordered; got {id}"));
            }
            blocks.push((n, Vec::new(), None));
        } else if blocks.is_empty() {
            return err(n, "instruction before first block");
        } else {
            let cur = blocks.last_mut().unwrap();
            if cur.2.is_some() {
                return err(n, "instruction after terminator");
            }
            match parse_terminator(line, n)? {
                Some(t) => cur.2 = Some(t),
                None => {
                    let inst = parse_inst(line, n, &mut reg_tys, &mut max_reg)?;
                    cur.1.push(inst);
                }
            }
        }
    }

    // Allocate registers densely (types default to Int for never-typed regs).
    for i in 0..=max_reg {
        let ty = reg_tys.get(&(i as u32)).copied().unwrap_or(Ty::Int);
        func.new_reg(ty);
    }
    for (n, insts, term) in blocks {
        let term = term.ok_or(ParseError { line: n, message: "block lacks terminator".into() })?;
        let mut b = Block::new(term);
        b.insts = insts;
        func.add_block(b);
    }
    Ok(func)
}

fn parse_ty(s: &str, line: usize) -> Result<Ty, ParseError> {
    match s {
        "i" => Ok(Ty::Int),
        "f" => Ok(Ty::Float),
        _ => err(line, format!("bad type `{s}`")),
    }
}

fn parse_reg(s: &str, line: usize) -> Result<Reg, ParseError> {
    let digits = s.strip_prefix('r').ok_or(ParseError {
        line,
        message: format!("bad register `{s}`"),
    })?;
    digits
        .parse()
        .map(Reg)
        .map_err(|_| ParseError { line, message: format!("bad register `{s}`") })
}

fn parse_block_id(s: &str, line: usize) -> Result<BlockId, ParseError> {
    let digits =
        s.strip_prefix('b').ok_or(ParseError { line, message: format!("bad block `{s}`") })?;
    digits
        .parse()
        .map(BlockId)
        .map_err(|_| ParseError { line, message: format!("bad block `{s}`") })
}

fn parse_typed_reg(s: &str, line: usize) -> Result<(Reg, Ty), ParseError> {
    let (r, t) = s.split_once(':').ok_or(ParseError {
        line,
        message: format!("expected `rN:ty`, got `{s}`"),
    })?;
    Ok((parse_reg(r.trim(), line)?, parse_ty(t.trim(), line)?))
}

fn parse_const(s: &str, line: usize) -> Result<Const, ParseError> {
    let (v, t) = s.rsplit_once(':').ok_or(ParseError {
        line,
        message: format!("expected `value:ty`, got `{s}`"),
    })?;
    match t.trim() {
        "i" => v
            .trim()
            .parse()
            .map(Const::Int)
            .map_err(|_| ParseError { line, message: format!("bad int `{v}`") }),
        "f" => v
            .trim()
            .parse()
            .map(Const::Float)
            .map_err(|_| ParseError { line, message: format!("bad float `{v}`") }),
        _ => err(line, format!("bad const type `{t}`")),
    }
}

fn parse_terminator(line: &str, n: usize) -> Result<Option<Terminator>, ParseError> {
    if let Some(rest) = line.strip_prefix("jump ") {
        return Ok(Some(Terminator::Jump { target: parse_block_id(rest.trim(), n)? }));
    }
    if let Some(rest) = line.strip_prefix("cbr ") {
        let (cond, targets) = rest
            .split_once("->")
            .ok_or(ParseError { line: n, message: "cbr missing `->`".into() })?;
        let (t, e) = targets
            .split_once(',')
            .ok_or(ParseError { line: n, message: "cbr missing `,`".into() })?;
        return Ok(Some(Terminator::Branch {
            cond: parse_reg(cond.trim(), n)?,
            then_to: parse_block_id(t.trim(), n)?,
            else_to: parse_block_id(e.trim(), n)?,
        }));
    }
    if line == "ret" {
        return Ok(Some(Terminator::Return { value: None }));
    }
    if let Some(rest) = line.strip_prefix("ret ") {
        return Ok(Some(Terminator::Return { value: Some(parse_reg(rest.trim(), n)?) }));
    }
    Ok(None)
}

/// Record an operand-type observation for `r`.
fn note_ty(reg_tys: &mut HashMap<u32, Ty>, max_reg: &mut i64, r: Reg, ty: Option<Ty>) {
    *max_reg = (*max_reg).max(r.0 as i64);
    if let Some(ty) = ty {
        reg_tys.entry(r.0).or_insert(ty);
    }
}

fn parse_inst(
    line: &str,
    n: usize,
    reg_tys: &mut HashMap<u32, Ty>,
    max_reg: &mut i64,
) -> Result<Inst, ParseError> {
    // Store / void call have no `<-` with a register on the left.
    if let Some(rest) = line.strip_prefix("store.") {
        let (ty_s, rest) =
            rest.split_once(' ').ok_or(ParseError { line: n, message: "bad store".into() })?;
        let ty = parse_ty(ty_s, n)?;
        let (addr_s, val_s) = rest
            .split_once("<-")
            .ok_or(ParseError { line: n, message: "store missing `<-`".into() })?;
        let addr = parse_reg(addr_s.trim().trim_start_matches('[').trim_end_matches(']'), n)?;
        let value = parse_reg(val_s.trim(), n)?;
        note_ty(reg_tys, max_reg, addr, Some(Ty::Int));
        note_ty(reg_tys, max_reg, value, Some(ty));
        return Ok(Inst::Store { ty, addr, value });
    }
    if let Some(rest) = line.strip_prefix("call ") {
        let (callee, args) = parse_call_tail(rest, n)?;
        for &a in &args {
            note_ty(reg_tys, max_reg, a, None);
        }
        return Ok(Inst::Call { dst: None, callee, args });
    }

    let (dst_s, rhs) = line
        .split_once("<-")
        .ok_or(ParseError { line: n, message: format!("unrecognized instruction `{line}`") })?;
    let dst = parse_reg(dst_s.trim(), n)?;
    let rhs = rhs.trim();

    if let Some(rest) = rhs.strip_prefix("loadi ") {
        let value = parse_const(rest.trim(), n)?;
        note_ty(reg_tys, max_reg, dst, Some(value.ty()));
        return Ok(Inst::LoadI { dst, value });
    }
    if let Some(rest) = rhs.strip_prefix("copy ") {
        let src = parse_reg(rest.trim(), n)?;
        note_ty(reg_tys, max_reg, src, None);
        // dst type mirrors src when known; recorded later if src typed.
        note_ty(reg_tys, max_reg, dst, reg_tys.get(&src.0).copied());
        return Ok(Inst::Copy { dst, src });
    }
    if let Some(rest) = rhs.strip_prefix("load.") {
        let (ty_s, addr_s) =
            rest.split_once(' ').ok_or(ParseError { line: n, message: "bad load".into() })?;
        let ty = parse_ty(ty_s, n)?;
        let addr = parse_reg(addr_s.trim().trim_start_matches('[').trim_end_matches(']'), n)?;
        note_ty(reg_tys, max_reg, addr, Some(Ty::Int));
        note_ty(reg_tys, max_reg, dst, Some(ty));
        return Ok(Inst::Load { ty, dst, addr });
    }
    if let Some(rest) = rhs.strip_prefix("call ") {
        let (body, ty_s) = rest
            .rsplit_once(':')
            .ok_or(ParseError { line: n, message: "typed call missing `:ty`".into() })?;
        let ty = parse_ty(ty_s.trim(), n)?;
        let (callee, args) = parse_call_tail(body, n)?;
        for &a in &args {
            note_ty(reg_tys, max_reg, a, None);
        }
        note_ty(reg_tys, max_reg, dst, Some(ty));
        return Ok(Inst::Call { dst: Some((dst, ty)), callee, args });
    }
    if let Some(rest) = rhs.strip_prefix("phi ") {
        let inner = rest.trim().trim_start_matches('[').trim_end_matches(']');
        let mut args = Vec::new();
        for pair in inner.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (b, r) = pair
                .split_once(':')
                .ok_or(ParseError { line: n, message: "phi arg missing `:`".into() })?;
            let r = parse_reg(r.trim(), n)?;
            note_ty(reg_tys, max_reg, r, None);
            args.push((parse_block_id(b.trim(), n)?, r));
        }
        note_ty(reg_tys, max_reg, dst, None);
        return Ok(Inst::Phi { dst, args });
    }

    // Binary / unary: `mnemonic.ty operands`.
    let (mn, rest) = rhs
        .split_once(' ')
        .ok_or(ParseError { line: n, message: format!("unrecognized rhs `{rhs}`") })?;
    let (mn, ty_s) = mn
        .split_once('.')
        .ok_or(ParseError { line: n, message: format!("missing type suffix on `{mn}`") })?;
    let ty = parse_ty(ty_s, n)?;
    let operands: Vec<&str> = rest.split(',').map(str::trim).collect();
    for op in BinOp::ALL {
        if op.mnemonic() == mn {
            if operands.len() != 2 {
                return err(n, "binary op needs two operands");
            }
            let lhs = parse_reg(operands[0], n)?;
            let rhs_r = parse_reg(operands[1], n)?;
            note_ty(reg_tys, max_reg, lhs, Some(ty));
            note_ty(reg_tys, max_reg, rhs_r, Some(ty));
            note_ty(reg_tys, max_reg, dst, Some(op.result_ty(ty)));
            return Ok(Inst::Bin { op, ty, dst, lhs, rhs: rhs_r });
        }
    }
    for op in UnOp::ALL {
        if op.mnemonic() == mn {
            if operands.len() != 1 {
                return err(n, "unary op needs one operand");
            }
            let src = parse_reg(operands[0], n)?;
            note_ty(reg_tys, max_reg, src, Some(ty));
            note_ty(reg_tys, max_reg, dst, Some(op.result_ty(ty)));
            return Ok(Inst::Un { op, ty, dst, src });
        }
    }
    err(n, format!("unknown mnemonic `{mn}`"))
}

fn parse_call_tail(s: &str, n: usize) -> Result<(String, Vec<Reg>), ParseError> {
    let open = s.find('(').ok_or(ParseError { line: n, message: "call missing `(`".into() })?;
    let close = s.rfind(')').ok_or(ParseError { line: n, message: "call missing `)`".into() })?;
    let callee = s[..open].trim().to_string();
    let mut args = Vec::new();
    for a in s[open + 1..close].split(',').map(str::trim).filter(|a| !a.is_empty()) {
        args.push(parse_reg(a, n)?);
    }
    Ok((callee, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    #[test]
    fn round_trip_simple() {
        let mut b = FunctionBuilder::new("foo", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Float);
        let c = b.loadi(Const::Int(3));
        let s = b.bin(BinOp::Add, Ty::Int, x, c);
        let fy = b.un(UnOp::F2I, Ty::Float, y);
        let t = b.bin(BinOp::Mul, Ty::Int, s, fy);
        b.ret(Some(t));
        let f = b.finish();
        let text = format!("{f}");
        let g = parse_function(&text).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn round_trip_control_flow_and_memory() {
        let mut b = FunctionBuilder::new("cf", None);
        let p = b.param(Ty::Int);
        let v = b.load(Ty::Float, p);
        let s = b.call("sqrt", vec![v], Ty::Float);
        b.store(Ty::Float, p, s);
        let c = b.loadi(Const::Int(1));
        let t = b.new_block();
        let e = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.call_void("trace", vec![p]);
        b.jump(e);
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let g = parse_function(&format!("{f}")).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn round_trip_phi() {
        let text = "function p(r0:i) -> i\n\
                    block b0:\n  cbr r0 -> b1, b2\n\
                    block b1:\n  r1 <- loadi 1:i\n  jump b3\n\
                    block b2:\n  r2 <- loadi 2:i\n  jump b3\n\
                    block b3:\n  r3 <- phi [b1: r1, b2: r2]\n  ret r3\n\
                    end";
        let f = parse_function(text).unwrap();
        assert_eq!(f.blocks.len(), 4);
        let g = parse_function(&format!("{f}")).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn round_trip_module() {
        let text = "module data 64\n\
                    function a() -> i\nblock b0:\n  r0 <- loadi 7:i\n  ret r0\nend\n\
                    function b()\nblock b0:\n  ret\nend";
        let m = parse_module(text).unwrap();
        assert_eq!(m.data_words, 64);
        assert_eq!(m.functions.len(), 2);
        let m2 = parse_module(&format!("{m}")).unwrap();
        assert_eq!(m, m2);
    }

    #[test]
    fn float_constants_round_trip() {
        let text = "function c() -> f\nblock b0:\n  r0 <- loadi 2.5:f\n  ret r0\nend";
        let f = parse_function(text).unwrap();
        let g = parse_function(&format!("{f}")).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "function f()\nblock b0:\n  r0 <- bogus.i r1, r2\n  ret\nend";
        let e = parse_function(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
        assert!(format!("{e}").contains("line 3"));
    }

    #[test]
    fn rejects_missing_terminator() {
        let text = "function f()\nblock b0:\n  r0 <- loadi 1:i\nend";
        assert!(parse_function(text).is_err());
    }

    #[test]
    fn rejects_sparse_blocks() {
        let text = "function f()\nblock b1:\n  ret\nend";
        assert!(parse_function(text).is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# header comment\nfunction f()\n\nblock b0:\n  # inner\n  ret\nend";
        assert!(parse_function(text).is_ok());
    }
}
