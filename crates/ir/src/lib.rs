//! # epre-ir — an ILOC-style three-address intermediate representation
//!
//! This crate implements the intermediate language that the whole
//! reproduction of Briggs & Cooper's *Effective Partial Redundancy
//! Elimination* (PLDI 1994) is built on. The paper's experimental compiler
//! uses **ILOC**, a low-level, register-based, three-address code: most
//! operations name two source registers and a target register, control flow
//! is explicit (`jump` / `cbr`), and memory is accessed only through `load`
//! and `store`.
//!
//! The representation here follows that design:
//!
//! * a [`Module`] is a set of [`Function`]s plus a statically-sized data
//!   segment (mini-FORTRAN arrays are allocated at link time, much like
//!   FORTRAN `COMMON` storage),
//! * a [`Function`] is a vector of basic [`Block`]s; block 0 is the entry,
//! * a [`Block`] is a straight-line vector of [`Inst`]s closed by a single
//!   [`Terminator`],
//! * every value lives in a virtual register [`Reg`] with a fixed type
//!   ([`Ty::Int`] or [`Ty::Float`]).
//!
//! The paper distinguishes **variable names** (targets of copies — they
//! correspond to source-level assignments and φ-nodes) from **expression
//! names** (targets of any other computation). That distinction is not a
//! static property of this IR; the passes that need it (PRE, global value
//! numbering, reassociation) establish and exploit it. See
//! [`Inst::is_expression`] for the classification used throughout.
//!
//! A faithful textual format is provided (modules [`mod@print`] and
//! [`parse`]) so that each optimization pass can be treated as a filter
//! over ILOC text, mirroring the paper's Unix-filter pass structure, and
//! so tests can round-trip IR.
//!
//! ```
//! use epre_ir::{FunctionBuilder, Ty, BinOp, Const};
//!
//! // function add3(a, b, c) { return a + b + c; }
//! let mut b = FunctionBuilder::new("add3", Some(Ty::Int));
//! let a = b.param(Ty::Int);
//! let bb = b.param(Ty::Int);
//! let c = b.param(Ty::Int);
//! let t1 = b.bin(BinOp::Add, Ty::Int, a, bb);
//! let t2 = b.bin(BinOp::Add, Ty::Int, t1, c);
//! b.ret(Some(t2));
//! let f = b.finish();
//! assert_eq!(f.blocks.len(), 1);
//! assert!(f.verify().is_ok());
//! # let _ = Const::Int(0);
//! ```

pub mod builder;
pub mod function;
pub mod inst;
pub mod parse;
pub mod print;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use function::{Block, Function, Module, Terminator};
pub use inst::{BinOp, Inst, UnOp};
pub use parse::{parse_function, parse_module, ParseError};
pub use types::{BlockId, Const, Reg, Ty};
pub use verify::{verify_function, verify_function_all, VerifyError, VerifyErrorKind};
