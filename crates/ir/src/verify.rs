//! Structural verification of functions.
//!
//! The verifier checks invariants that every pass must preserve:
//!
//! * every block terminator targets an existing block,
//! * every register named anywhere was allocated (`reg_ty` covers it),
//! * operand and result types are consistent with each instruction's
//!   declared type,
//! * φ-nodes appear only as a prefix of their block,
//! * φ-node incoming blocks are actual CFG predecessors (checked only when
//!   the function contains φs, i.e. is in SSA form),
//! * a branch condition has `Int` type.
//!
//! It does **not** check SSA single-assignment (that is `epre-ssa`'s
//! verifier) because most of the pipeline operates on non-SSA ILOC.
//!
//! Two entry points share one walk: [`verify_function_all`] accumulates
//! **every** violation (the lint engine's preferred form), while
//! [`verify_function`] keeps the historical fail-fast `Result` contract by
//! returning the first accumulated error.

use std::collections::HashSet;
use std::fmt;

use crate::function::{Function, Terminator};
use crate::inst::Inst;
use crate::types::{BlockId, Reg, Ty};

/// Classification of a structural invariant violation, so downstream
/// tooling (the lint engine) can map each error onto a stable rule code
/// without parsing the message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyErrorKind {
    /// The function has no basic blocks at all.
    NoBlocks,
    /// A terminator or φ names a block id outside the function.
    DanglingTarget,
    /// A register appears that was never allocated in `reg_ty`.
    UnallocatedRegister,
    /// Operand or result type disagrees with the instruction's declared type.
    TypeMismatch,
    /// A φ-node appears after a non-φ instruction in its block.
    PhiNotPrefix,
    /// A φ-node input names a block that is not a CFG predecessor.
    PhiNonPredecessor,
    /// A `cbr` condition register is not of `Int` type.
    BranchCondNotInt,
    /// A `ret` disagrees with the function signature (wrong type, or a
    /// value returned from a subroutine).
    ReturnMismatch,
}

/// A structural invariant violation found by [`verify_function`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub function: String,
    /// Block where the violation was found.
    pub block: BlockId,
    /// Which invariant was broken.
    pub kind: VerifyErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}: {}", self.function, self.block, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Check the structural invariants of `f`. See the module docs for the list.
///
/// # Errors
/// Returns the first violation found ([`verify_function_all`] collects all
/// of them).
pub fn verify_function(f: &Function) -> Result<(), VerifyError> {
    match verify_function_all(f).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Check the structural invariants of `f`, accumulating **every** violation
/// instead of stopping at the first. An empty vector means the function is
/// structurally sound.
///
/// Checks that would be meaningless (or would panic) once an earlier
/// violation is known are skipped: type checks are suppressed for
/// instructions naming unallocated registers, and nothing beyond the
/// "no blocks" error is reported for an empty function.
pub fn verify_function_all(f: &Function) -> Vec<VerifyError> {
    let mut errs: Vec<VerifyError> = Vec::new();
    let fail = |errs: &mut Vec<VerifyError>,
                    block: BlockId,
                    kind: VerifyErrorKind,
                    message: String| {
        errs.push(VerifyError { function: f.name.clone(), block, kind, message });
    };
    let reg_ok = |r: Reg| r.index() < f.reg_ty.len();

    if f.blocks.is_empty() {
        fail(&mut errs, BlockId::ENTRY, VerifyErrorKind::NoBlocks, "function has no blocks".into());
        return errs;
    }
    for &p in &f.params {
        if !reg_ok(p) {
            fail(
                &mut errs,
                BlockId::ENTRY,
                VerifyErrorKind::UnallocatedRegister,
                format!("parameter {p} not allocated"),
            );
        }
    }

    // Compute predecessors for φ checking; dangling targets are reported
    // and skipped so the remaining checks still run.
    let mut preds: Vec<HashSet<BlockId>> = vec![HashSet::new(); f.blocks.len()];
    for (id, b) in f.iter_blocks() {
        for s in b.term.successors() {
            if s.index() >= f.blocks.len() {
                fail(
                    &mut errs,
                    id,
                    VerifyErrorKind::DanglingTarget,
                    format!("terminator targets missing block {s}"),
                );
            } else {
                preds[s.index()].insert(id);
            }
        }
    }

    for (id, b) in f.iter_blocks() {
        let mut seen_non_phi = false;
        for inst in &b.insts {
            // Registers of this instruction all allocated? Type checks
            // would panic on out-of-range registers, so they are gated.
            let mut inst_regs_ok = true;
            match inst {
                Inst::Phi { dst, args } => {
                    if seen_non_phi {
                        fail(
                            &mut errs,
                            id,
                            VerifyErrorKind::PhiNotPrefix,
                            format!("φ for {dst} after non-φ instruction"),
                        );
                    }
                    for &(pb, r) in args {
                        if pb.index() >= f.blocks.len() {
                            fail(
                                &mut errs,
                                id,
                                VerifyErrorKind::DanglingTarget,
                                format!("φ names missing block {pb}"),
                            );
                        } else if !preds[id.index()].contains(&pb) {
                            fail(
                                &mut errs,
                                id,
                                VerifyErrorKind::PhiNonPredecessor,
                                format!("φ input block {pb} is not a predecessor"),
                            );
                        }
                        if !reg_ok(r) {
                            inst_regs_ok = false;
                            fail(
                                &mut errs,
                                id,
                                VerifyErrorKind::UnallocatedRegister,
                                format!("φ uses unallocated register {r}"),
                            );
                        }
                    }
                    if !reg_ok(*dst) {
                        inst_regs_ok = false;
                        fail(
                            &mut errs,
                            id,
                            VerifyErrorKind::UnallocatedRegister,
                            format!("φ defines unallocated register {dst}"),
                        );
                    }
                }
                _ => {
                    seen_non_phi = true;
                    for u in inst.uses() {
                        if !reg_ok(u) {
                            inst_regs_ok = false;
                            fail(
                                &mut errs,
                                id,
                                VerifyErrorKind::UnallocatedRegister,
                                format!("use of unallocated register {u} in `{inst}`"),
                            );
                        }
                    }
                    if let Some(d) = inst.dst() {
                        if !reg_ok(d) {
                            inst_regs_ok = false;
                            fail(
                                &mut errs,
                                id,
                                VerifyErrorKind::UnallocatedRegister,
                                format!("def of unallocated register {d} in `{inst}`"),
                            );
                        }
                    }
                }
            }
            if inst_regs_ok {
                if let Some(msg) = type_check(f, inst) {
                    fail(&mut errs, id, VerifyErrorKind::TypeMismatch, msg);
                }
            }
        }
        match &b.term {
            Terminator::Branch { cond, .. } => {
                if !reg_ok(*cond) {
                    fail(
                        &mut errs,
                        id,
                        VerifyErrorKind::UnallocatedRegister,
                        format!("branch condition {cond} not allocated"),
                    );
                } else if f.ty_of(*cond) != Ty::Int {
                    fail(
                        &mut errs,
                        id,
                        VerifyErrorKind::BranchCondNotInt,
                        format!("branch condition {cond} must be Int"),
                    );
                }
            }
            Terminator::Return { value: Some(v) } => {
                if !reg_ok(*v) {
                    fail(
                        &mut errs,
                        id,
                        VerifyErrorKind::UnallocatedRegister,
                        format!("return of unallocated register {v}"),
                    );
                } else {
                    match f.ret_ty {
                        None => fail(
                            &mut errs,
                            id,
                            VerifyErrorKind::ReturnMismatch,
                            "value returned from subroutine".into(),
                        ),
                        Some(rt) => {
                            if f.ty_of(*v) != rt {
                                fail(
                                    &mut errs,
                                    id,
                                    VerifyErrorKind::ReturnMismatch,
                                    format!("return type mismatch on {v}"),
                                );
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    errs
}

/// Whether the reported kinds make further CFG- or type-based analysis of
/// the function unsafe (block ids may be out of range, registers may have
/// no entry in `reg_ty`). The lint engine consults this before building a
/// CFG or running dataflow over a function with structural errors.
pub fn is_fatal(kind: VerifyErrorKind) -> bool {
    matches!(
        kind,
        VerifyErrorKind::NoBlocks
            | VerifyErrorKind::DanglingTarget
            | VerifyErrorKind::UnallocatedRegister
    )
}

/// Type-check one instruction against the function's register types.
fn type_check(f: &Function, inst: &Inst) -> Option<String> {
    let bad = |r: Reg, want: Ty| {
        Some(format!("`{inst}`: register {r} has type {}, expected {want}", f.ty_of(r)))
    };
    match inst {
        Inst::Bin { op, ty, dst, lhs, rhs } => {
            if f.ty_of(*lhs) != *ty {
                return bad(*lhs, *ty);
            }
            if f.ty_of(*rhs) != *ty {
                return bad(*rhs, *ty);
            }
            let want = op.result_ty(*ty);
            if f.ty_of(*dst) != want {
                return bad(*dst, want);
            }
            None
        }
        Inst::Un { op, ty, dst, src } => {
            if f.ty_of(*src) != *ty {
                return bad(*src, *ty);
            }
            let want = op.result_ty(*ty);
            if f.ty_of(*dst) != want {
                return bad(*dst, want);
            }
            None
        }
        Inst::LoadI { dst, value } => {
            if f.ty_of(*dst) != value.ty() {
                return bad(*dst, value.ty());
            }
            None
        }
        Inst::Copy { dst, src } => {
            if f.ty_of(*dst) != f.ty_of(*src) {
                return bad(*dst, f.ty_of(*src));
            }
            None
        }
        Inst::Load { ty, dst, addr } => {
            if f.ty_of(*addr) != Ty::Int {
                return bad(*addr, Ty::Int);
            }
            if f.ty_of(*dst) != *ty {
                return bad(*dst, *ty);
            }
            None
        }
        Inst::Store { ty, addr, value } => {
            if f.ty_of(*addr) != Ty::Int {
                return bad(*addr, Ty::Int);
            }
            if f.ty_of(*value) != *ty {
                return bad(*value, *ty);
            }
            None
        }
        Inst::Call { dst, .. } => {
            if let Some((r, ty)) = dst {
                if f.ty_of(*r) != *ty {
                    return bad(*r, *ty);
                }
            }
            None
        }
        Inst::Phi { dst, args } => {
            let want = f.ty_of(*dst);
            for &(_, r) in args {
                if f.ty_of(r) != want {
                    return bad(r, want);
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Block;
    use crate::inst::BinOp;
    use crate::types::Const;

    #[test]
    fn accepts_well_formed() {
        let mut b = FunctionBuilder::new("ok", Some(Ty::Float));
        let x = b.param(Ty::Float);
        let y = b.bin(BinOp::Add, Ty::Float, x, x);
        b.ret(Some(y));
        assert!(b.finish().verify().is_ok());
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut f = Function::new("bad", None);
        let a = f.new_reg(Ty::Int);
        let b = f.new_reg(Ty::Float);
        let d = f.new_reg(Ty::Int);
        let mut blk = Block::new(Terminator::Return { value: None });
        blk.insts.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: d, lhs: a, rhs: b });
        f.add_block(blk);
        let e = f.verify().unwrap_err();
        assert!(e.message.contains("expected i"));
        assert_eq!(e.kind, VerifyErrorKind::TypeMismatch);
    }

    #[test]
    fn rejects_float_branch_condition() {
        let mut f = Function::new("bad", None);
        let c = f.new_reg(Ty::Float);
        f.add_block(Block::new(Terminator::Branch {
            cond: c,
            then_to: BlockId(1),
            else_to: BlockId(1),
        }));
        f.add_block(Block::new(Terminator::Return { value: None }));
        assert!(f.verify().is_err());
    }

    #[test]
    fn rejects_dangling_block_target() {
        let mut f = Function::new("bad", None);
        f.add_block(Block::new(Terminator::Jump { target: BlockId(9) }));
        let e = f.verify().unwrap_err();
        assert!(e.message.contains("missing block"));
        assert_eq!(e.kind, VerifyErrorKind::DanglingTarget);
    }

    #[test]
    fn rejects_unallocated_register() {
        let mut f = Function::new("bad", None);
        let mut blk = Block::new(Terminator::Return { value: None });
        blk.insts.push(Inst::Copy { dst: Reg(5), src: Reg(6) });
        f.add_block(blk);
        assert!(f.verify().is_err());
    }

    #[test]
    fn rejects_phi_after_non_phi() {
        let mut f = Function::new("bad", None);
        let a = f.new_reg(Ty::Int);
        let b = f.new_reg(Ty::Int);
        let mut blk = Block::new(Terminator::Return { value: None });
        blk.insts.push(Inst::LoadI { dst: a, value: Const::Int(0) });
        blk.insts.push(Inst::Phi { dst: b, args: vec![] });
        f.add_block(blk);
        let e = f.verify().unwrap_err();
        assert!(e.message.contains("after non-φ"));
        assert_eq!(e.kind, VerifyErrorKind::PhiNotPrefix);
    }

    #[test]
    fn rejects_phi_from_non_predecessor() {
        let mut f = Function::new("bad", None);
        let a = f.new_reg(Ty::Int);
        let b = f.new_reg(Ty::Int);
        let mut b0 = Block::new(Terminator::Jump { target: BlockId(1) });
        b0.insts.push(Inst::LoadI { dst: a, value: Const::Int(0) });
        f.add_block(b0);
        let mut b1 = Block::new(Terminator::Return { value: None });
        // b1's only predecessor is b0; claiming b1 is wrong.
        b1.insts.push(Inst::Phi { dst: b, args: vec![(BlockId(1), a)] });
        f.add_block(b1);
        let e = f.verify().unwrap_err();
        assert!(e.message.contains("not a predecessor"));
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut f = Function::new("bad", Some(Ty::Float));
        let a = f.new_reg(Ty::Int);
        let mut blk = Block::new(Terminator::Return { value: Some(a) });
        blk.insts.push(Inst::LoadI { dst: a, value: Const::Int(0) });
        f.add_block(blk);
        assert!(f.verify().is_err());
    }

    #[test]
    fn rejects_value_return_from_subroutine() {
        let mut f = Function::new("bad", None);
        let a = f.new_reg(Ty::Int);
        let mut blk = Block::new(Terminator::Return { value: Some(a) });
        blk.insts.push(Inst::LoadI { dst: a, value: Const::Int(0) });
        f.add_block(blk);
        let e = f.verify().unwrap_err();
        assert!(e.message.contains("subroutine"));
    }

    #[test]
    fn collects_multiple_violations() {
        // Dangling target in b0 AND a type mismatch in b1: fail-fast
        // reports one, collect-all reports both.
        let mut f = Function::new("multi", None);
        let a = f.new_reg(Ty::Int);
        let b = f.new_reg(Ty::Float);
        let d = f.new_reg(Ty::Int);
        f.add_block(Block::new(Terminator::Jump { target: BlockId(9) }));
        let mut b1 = Block::new(Terminator::Return { value: None });
        b1.insts.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: d, lhs: a, rhs: b });
        f.add_block(b1);
        let all = verify_function_all(&f);
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].kind, VerifyErrorKind::DanglingTarget);
        assert_eq!(all[1].kind, VerifyErrorKind::TypeMismatch);
        // The wrapper still reports exactly the first of them.
        assert_eq!(f.verify().unwrap_err(), all[0]);
    }

    #[test]
    fn unallocated_register_suppresses_type_check() {
        // `r5 <- copy r6` with neither allocated must report the register
        // errors without panicking inside the type checker.
        let mut f = Function::new("bad", None);
        let mut blk = Block::new(Terminator::Return { value: None });
        blk.insts.push(Inst::Copy { dst: Reg(5), src: Reg(6) });
        f.add_block(blk);
        let all = verify_function_all(&f);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|e| e.kind == VerifyErrorKind::UnallocatedRegister));
    }
}
