//! Textual ILOC output.
//!
//! The format round-trips through [`crate::parse`]; each optimization pass
//! can therefore be run as a filter over text, matching the paper's
//! Unix-filter pass structure. Example:
//!
//! ```text
//! function foo(r0:i, r1:i) -> i
//! block b0:
//!   r2 <- loadi 0:i
//!   r3 <- add.i r0, r1
//!   cbr r3 -> b1, b2
//! block b1:
//!   ret r3
//! block b2:
//!   ret r2
//! end
//! ```

use std::fmt;

use crate::function::{Function, Module, Terminator};
use crate::inst::Inst;
use crate::types::BlockId;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Bin { op, ty, dst, lhs, rhs } => {
                write!(f, "{dst} <- {}.{ty} {lhs}, {rhs}", op.mnemonic())
            }
            Inst::Un { op, ty, dst, src } => write!(f, "{dst} <- {}.{ty} {src}", op.mnemonic()),
            Inst::LoadI { dst, value } => write!(f, "{dst} <- loadi {value}"),
            Inst::Copy { dst, src } => write!(f, "{dst} <- copy {src}"),
            Inst::Load { ty, dst, addr } => write!(f, "{dst} <- load.{ty} [{addr}]"),
            Inst::Store { ty, addr, value } => write!(f, "store.{ty} [{addr}] <- {value}"),
            Inst::Call { dst, callee, args } => {
                if let Some((r, ty)) = dst {
                    write!(f, "{r} <- call {callee}(")?;
                    write_list(f, args)?;
                    write!(f, "):{ty}")
                } else {
                    write!(f, "call {callee}(")?;
                    write_list(f, args)?;
                    write!(f, ")")
                }
            }
            Inst::Phi { dst, args } => {
                write!(f, "{dst} <- phi [")?;
                for (i, (b, r)) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}: {r}")?;
                }
                write!(f, "]")
            }
        }
    }
}

fn write_list<T: fmt::Display>(f: &mut fmt::Formatter<'_>, items: &[T]) -> fmt::Result {
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{item}")?;
    }
    Ok(())
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jump { target } => write!(f, "jump {target}"),
            Terminator::Branch { cond, then_to, else_to } => {
                write!(f, "cbr {cond} -> {then_to}, {else_to}")
            }
            Terminator::Return { value: Some(v) } => write!(f, "ret {v}"),
            Terminator::Return { value: None } => write!(f, "ret"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "function {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}:{}", self.ty_of(*p))?;
        }
        write!(f, ")")?;
        if let Some(ty) = self.ret_ty {
            write!(f, " -> {ty}")?;
        }
        writeln!(f)?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "block {}:", BlockId(i as u32))?;
            for inst in &b.insts {
                writeln!(f, "  {inst}")?;
            }
            writeln!(f, "  {}", b.term)?;
        }
        write!(f, "end")
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module data {}", self.data_words)?;
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "{func}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::FunctionBuilder;
    use crate::inst::{BinOp, Inst, UnOp};
    use crate::types::{BlockId, Const, Reg, Ty};

    #[test]
    fn inst_display_forms() {
        let cases: Vec<(Inst, &str)> = vec![
            (
                Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) },
                "r2 <- add.i r0, r1",
            ),
            (
                Inst::Un { op: UnOp::Neg, ty: Ty::Float, dst: Reg(1), src: Reg(0) },
                "r1 <- neg.f r0",
            ),
            (Inst::LoadI { dst: Reg(0), value: Const::Int(42) }, "r0 <- loadi 42:i"),
            (Inst::Copy { dst: Reg(1), src: Reg(0) }, "r1 <- copy r0"),
            (Inst::Load { ty: Ty::Float, dst: Reg(1), addr: Reg(0) }, "r1 <- load.f [r0]"),
            (Inst::Store { ty: Ty::Int, addr: Reg(0), value: Reg(1) }, "store.i [r0] <- r1"),
            (
                Inst::Call { dst: Some((Reg(2), Ty::Float)), callee: "sqrt".into(), args: vec![Reg(1)] },
                "r2 <- call sqrt(r1):f",
            ),
            (Inst::Call { dst: None, callee: "trace".into(), args: vec![] }, "call trace()"),
            (
                Inst::Phi { dst: Reg(3), args: vec![(BlockId(0), Reg(1)), (BlockId(2), Reg(2))] },
                "r3 <- phi [b0: r1, b2: r2]",
            ),
        ];
        for (inst, expect) in cases {
            assert_eq!(format!("{inst}"), expect);
        }
    }

    #[test]
    fn function_display_shape() {
        let mut b = FunctionBuilder::new("foo", Some(Ty::Int));
        let x = b.param(Ty::Int);
        b.ret(Some(x));
        let f = b.finish();
        let text = format!("{f}");
        assert!(text.starts_with("function foo(r0:i) -> i\n"));
        assert!(text.contains("block b0:"));
        assert!(text.contains("  ret r0"));
        assert!(text.ends_with("end"));
    }
}
