//! Quick ablation check: the effect of adding hash-based local value
//! numbering (the §4.1 "missing pass") on the routines that regress under
//! the distribution level.
use epre::OptLevel;
use epre_bench::dynamic_count;
use epre_suite::all_routines;
fn main() {
    println!("{:8} {:>8} {:>8} {:>9}", "routine", "partial", "dist", "dist+lvn");
    for name in ["fpppp", "coeray", "si", "x21y21", "orgpar", "tomcatv", "deseco"] {
        let r = all_routines().into_iter().find(|r| r.name == name).unwrap();
        let part = dynamic_count(&r, OptLevel::Partial);
        let dist = dynamic_count(&r, OptLevel::Distribution);
        let lvn = dynamic_count(&r, OptLevel::DistributionLvn);
        println!("{name:8} {part:>8} {dist:>8} {lvn:>9}");
    }
}
