//! Criterion micro-benchmarks: compile-time throughput of each pass on
//! representative suite routines. The paper does not report compile
//! times, but §7 claims the reassociation algorithm's "simplicity should
//! make it easy to add to an existing compiler" — these benches document
//! that the passes are cheap.
//!
//! Usage: `cargo bench -p epre-bench --bench pass_timing`

use criterion::{criterion_group, criterion_main, Criterion};
use epre_frontend::NamingMode;
use epre_ir::Module;
use epre_passes::passes::{Clean, Coalesce, ConstProp, Dce, Gvn, Peephole, Pre, Reassociate};
use epre_passes::Pass;
use epre_suite::all_routines;
use std::hint::black_box;

fn module_for(name: &str) -> Module {
    all_routines()
        .into_iter()
        .find(|r| r.name == name)
        .unwrap()
        .compile(NamingMode::Disciplined)
        .unwrap()
}

fn bench_pass(c: &mut Criterion, label: &str, pass: &dyn Pass, module: &Module) {
    c.bench_function(label, |b| {
        b.iter(|| {
            let mut m = module.clone();
            for f in &mut m.functions {
                pass.run(f);
            }
            black_box(m.static_op_count())
        })
    });
}

fn passes_on_tomcatv(c: &mut Criterion) {
    let m = module_for("tomcatv");
    bench_pass(c, "tomcatv/reassociate", &Reassociate { distribute: true }, &m);
    bench_pass(c, "tomcatv/gvn", &Gvn, &m);
    bench_pass(c, "tomcatv/pre", &Pre, &m);
    bench_pass(c, "tomcatv/constprop", &ConstProp, &m);
    bench_pass(c, "tomcatv/peephole", &Peephole, &m);
    bench_pass(c, "tomcatv/dce", &Dce, &m);
    bench_pass(c, "tomcatv/coalesce", &Coalesce, &m);
    bench_pass(c, "tomcatv/clean", &Clean, &m);
}

fn full_pipeline(c: &mut Criterion) {
    for name in ["fmin", "sgemm", "deseco", "fpppp"] {
        let m = module_for(name);
        c.bench_function(&format!("{name}/distribution-pipeline"), |b| {
            b.iter(|| {
                let opt = epre::Optimizer::new(epre::OptLevel::Distribution);
                black_box(opt.optimize(&m).static_op_count())
            })
        });
    }
}

criterion_group!(benches, passes_on_tomcatv, full_pipeline);
criterion_main!(benches);
