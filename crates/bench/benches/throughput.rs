//! Optimizer **throughput**: wall-clock time to run every optimization
//! level over the whole 50-routine suite, serially and with the parallel
//! `--jobs` driver, plus the per-pass breakdown and analysis-cache hit
//! rates from the timed pipeline.
//!
//! Unlike `table1`/`table2` (which measure the *optimized code*), this
//! benchmark measures the *optimizer itself* — the subject of the
//! pass-manager work: cached analyses, allocation-free dataflow, and the
//! `std::thread::scope` module driver. Results are printed as a table and
//! written to `BENCH_OPT.json` at the workspace root.
//!
//! Usage: `cargo bench -p epre-bench --bench throughput [-- --quick]`
//!
//! `--quick` runs one repetition instead of three and a single thread
//! count; it is the CI smoke configuration (`scripts/bench_smoke.sh`).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use epre::{OptLevel, Optimizer};
use epre_frontend::NamingMode;
use epre_ir::{Inst, Module};
use epre_suite::all_routines;

/// All 50 routines fused into one module so the per-function parallel
/// driver has real work to distribute. Function names (and intra-routine
/// call targets) are prefixed with the routine name to keep them unique;
/// intrinsics and cross-module names are left alone. The combined module
/// is optimized, never executed, so the routines' unrelated data segments
/// do not conflict.
fn combined_module() -> Module {
    let mut out = Module::new();
    for r in all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap_or_else(|e| panic!("{}: {e}", r.name));
        let local: HashSet<String> = m.functions.iter().map(|f| f.name.clone()).collect();
        out.data_words = out.data_words.max(m.data_words);
        for mut f in m.functions {
            f.name = format!("{}__{}", r.name, f.name);
            for block in &mut f.blocks {
                for inst in &mut block.insts {
                    if let Inst::Call { callee, .. } = inst {
                        if local.contains(callee.as_str()) {
                            *callee = format!("{}__{}", r.name, callee);
                        }
                    }
                }
            }
            out.functions.push(f);
        }
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Best-of-`reps` wall time for one closure.
fn best_of<F: FnMut()>(reps: usize, mut body: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        body();
        best = best.min(t0.elapsed());
    }
    best
}

const ALL_LEVELS: [OptLevel; 5] = [
    OptLevel::Baseline,
    OptLevel::Partial,
    OptLevel::Reassociation,
    OptLevel::Distribution,
    OptLevel::DistributionLvn,
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let jobs_list: &[usize] = if quick { &[4] } else { &[2, 4, 8] };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let module = combined_module();
    println!(
        "throughput: {} function(s) from 50 routines, {} cpu(s), best of {} rep(s)",
        module.functions.len(),
        cpus,
        reps
    );
    println!();
    println!(
        "{:18} {:>10} {}",
        "level",
        "serial",
        jobs_list.iter().map(|j| format!("{:>8}", format!("jobs={j}"))).collect::<String>()
    );

    let mut level_jsons = Vec::new();
    for level in ALL_LEVELS {
        let opt = Optimizer::new(level);
        // Reference output + serial wall time.
        let serial_out = opt.optimize(&module);
        let serial = best_of(reps, || {
            std::hint::black_box(opt.optimize(std::hint::black_box(&module)));
        });

        let mut cells = String::new();
        let mut jobs_json = Vec::new();
        for &jobs in jobs_list {
            let parallel_out = opt.optimize_jobs(&module, jobs);
            assert_eq!(
                format!("{serial_out}"),
                format!("{parallel_out}"),
                "{}: --jobs {jobs} must be byte-identical to serial",
                level.label()
            );
            let t = best_of(reps, || {
                std::hint::black_box(opt.optimize_jobs(std::hint::black_box(&module), jobs));
            });
            let speedup = serial.as_secs_f64() / t.as_secs_f64();
            cells.push_str(&format!("{:>8}", format!("{speedup:.2}x")));
            jobs_json.push(format!(
                "{{\"jobs\":{jobs},\"ms\":{:.3},\"speedup\":{speedup:.3}}}",
                ms(t)
            ));
        }
        println!("{:18} {:>8.1}ms {cells}", level.label(), ms(serial));

        // Per-pass breakdown + cache hit rates, once per level (the timed
        // pipeline is the serial one; see `epre::timings`). The coalesce
        // share of total pass time is recorded per run — including in
        // `--quick` CI smokes — so the hot-spot trajectory stays visible
        // PR over PR.
        let (_, report) = opt.optimize_timed(&module);
        let pass_ms: f64 = report.passes.iter().map(|p| ms(p.duration)).sum();
        let coalesce_ms: f64 =
            report.passes.iter().filter(|p| p.pass == "coalesce").map(|p| ms(p.duration)).sum();
        let coalesce_share = if pass_ms > 0.0 { coalesce_ms / pass_ms } else { 0.0 };
        println!("{:18} coalesce {:.1}% of pass time", "", coalesce_share * 100.0);
        level_jsons.push(format!(
            "{{\"level\":\"{}\",\"serial_ms\":{:.3},\"coalesce_share\":{:.3},\"jobs\":[{}],\"timings\":{}}}",
            level.label(),
            ms(serial),
            coalesce_share,
            jobs_json.join(","),
            report.to_json()
        ));
    }

    let entry = format!(
        "{{\"quick\":{quick},\"cpus\":{cpus},\"functions\":{},\"reps\":{reps},\"levels\":[{}]}}",
        module.functions.len(),
        level_jsons.join(",")
    );
    // Append to the run history instead of overwriting past results; the
    // `run` numbers increase monotonically across invocations.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_OPT.json");
    let existing = std::fs::read_to_string(path).ok();
    let json = epre_bench::merge_bench_runs(existing.as_deref(), &entry);
    assert!(
        epre_bench::runs_monotonic(&json),
        "appending this run must keep the monotonic `run` history `epre report` enforces"
    );
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote {path} ({} run(s) on record)", epre_bench::next_run_number(&json)),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
