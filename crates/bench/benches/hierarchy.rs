//! Regenerates the §5.3 hierarchy experimentally: on every suite routine,
//! with the name space canonicalized the way §5.3 assumes (reassociation
//! + GVN first),
//!
//! 1. dominator-scoped CSE (Alpern–Wegman–Zadeck's suggestion) removes a
//!    subset of the redundancies,
//! 2. available-expressions CSE removes all full redundancies,
//! 3. PRE removes full and partial redundancies,
//!
//! so dynamic counts must satisfy `dominator ≥ avail ≥ pre` everywhere.
//! An extra column adds local value numbering on top of PRE (the pass the
//! paper lists as missing).
//!
//! Usage: `cargo bench -p epre-bench --bench hierarchy`

use epre_frontend::NamingMode;
use epre_interp::Interpreter;
use epre_ir::Function;
use epre_passes::passes::{Clean, Coalesce, ConstProp, Dce, Gvn, Lvn, Peephole, Pre, Reassociate};
use epre_passes::{cse, Pass};
use epre_suite::all_routines;

#[derive(Copy, Clone)]
enum Variant {
    DomCse,
    AvailCse,
    Pre,
    /// PRE without the local-value-numbering leveler: shows the §4.1
    /// "missing pass" effect rather than the hierarchy.
    PreNoLvn,
}

fn optimize(f: &mut Function, v: Variant) {
    Reassociate { distribute: true }.run(f);
    Gvn.run(f);
    // Local value numbering runs in every variant so the comparison
    // isolates the *global* capabilities: the §5.3 hierarchy is about
    // which global redundancies each approach can see, while within-block
    // duplicates (which forward propagation creates en masse) would
    // otherwise swamp the signal.
    match v {
        Variant::DomCse => {
            cse::run_dominator(f);
            Lvn.run(f);
        }
        Variant::AvailCse => {
            cse::run_available(f);
            Lvn.run(f);
        }
        Variant::Pre => {
            Pre.run(f);
            Lvn.run(f);
        }
        Variant::PreNoLvn => {
            Pre.run(f);
        }
    }
    ConstProp.run(f);
    Peephole.run(f);
    Dce.run(f);
    Coalesce.run(f);
    Clean.run(f);
}

fn count(routine: &epre_suite::Routine, v: Variant) -> u64 {
    let mut m = routine.compile(NamingMode::Disciplined).unwrap();
    for f in &mut m.functions {
        optimize(f, v);
    }
    let mut i = Interpreter::new(&m);
    i.run(routine.entry, &[]).unwrap_or_else(|e| panic!("{}: {e}", routine.name));
    i.counts().total
}

fn main() {
    println!("§5.3 hierarchy: dominator CSE ⊇ AVAIL CSE ⊇ PRE (dynamic counts)");
    println!();
    println!(
        "{:8} {:>10} {:>10} {:>10} {:>12}",
        "routine", "dom-cse", "avail-cse", "pre", "pre(no lvn)"
    );
    let mut violations = 0;
    let (mut td, mut ta, mut tp, mut tl) = (0u64, 0u64, 0u64, 0u64);
    for r in all_routines() {
        let d = count(&r, Variant::DomCse);
        let a = count(&r, Variant::AvailCse);
        let p = count(&r, Variant::Pre);
        let l = count(&r, Variant::PreNoLvn);
        td += d;
        ta += a;
        tp += p;
        tl += l;
        let mark = if d >= a && a >= p { "" } else { "  <-- hierarchy violated" };
        if !mark.is_empty() {
            violations += 1;
        }
        println!("{:8} {:>10} {:>10} {:>10} {:>12}{mark}", r.name, d, a, p, l);
    }
    println!();
    println!("{:8} {:>10} {:>10} {:>10} {:>12}", "TOTAL", td, ta, tp, tl);
    println!();
    if violations == 0 {
        println!("hierarchy holds on all routines: dominator ≥ avail ≥ pre");
    } else {
        println!("hierarchy violated on {violations} routines");
        std::process::exit(1);
    }
}
