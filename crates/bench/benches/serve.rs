//! Daemon **serving throughput**: wall-clock time for an in-process
//! [`ServerCore`] to answer an optimization request for the whole
//! 50-routine suite cold (empty result cache, every function optimized
//! through the governed pipeline) versus warm (unchanged-module
//! resubmit, every function replayed from the content-addressed cache).
//!
//! Both paths run the full admission/oracle machinery — the warm path
//! still re-parses every cached body and differentially verifies the
//! assembled module — so the speedup measures exactly what the cache is
//! allowed to skip: the optimization pipeline itself. Results are
//! printed and appended to `BENCH_SERVE.json` at the workspace root.
//!
//! Usage: `cargo bench -p epre-bench --bench serve [-- --quick]`
//!
//! `--quick` runs one repetition instead of three; it is the CI smoke
//! configuration (`scripts/ci.sh`).

use std::collections::HashSet;
use std::time::{Duration, Instant};

use epre_frontend::NamingMode;
use epre_ir::{Inst, Module};
use epre_serve::{OptimizeRequest, Request, Response, ResultCache, ServeConfig, ServerCore};
use epre_suite::all_routines;

/// All 50 routines fused into one module so the daemon has real work to
/// serve; same fusion as the throughput bench (names prefixed to stay
/// unique, module optimized but never executed).
fn combined_module() -> Module {
    let mut out = Module::new();
    for r in all_routines() {
        let m = r.compile(NamingMode::Disciplined).unwrap_or_else(|e| panic!("{}: {e}", r.name));
        let local: HashSet<String> = m.functions.iter().map(|f| f.name.clone()).collect();
        out.data_words = out.data_words.max(m.data_words);
        for mut f in m.functions {
            f.name = format!("{}__{}", r.name, f.name);
            for block in &mut f.blocks {
                for inst in &mut block.insts {
                    if let Inst::Call { callee, .. } = inst {
                        if local.contains(callee.as_str()) {
                            *callee = format!("{}__{}", r.name, callee);
                        }
                    }
                }
            }
            out.functions.push(f);
        }
    }
    out
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Submit one request to an in-process core and return the terminal
/// accounting: (status, module_text, reused, fresh).
fn submit_once(core: &ServerCore, req: &OptimizeRequest) -> (String, String, u64, u64) {
    let mut done = None;
    core.handle(&Request::Optimize(req.clone()), &mut |resp| {
        if let Response::Done(frame) = resp {
            done = Some(frame);
        }
        Ok(())
    })
    .expect("in-process emit cannot fail");
    let d = done.expect("request must end with a terminal frame");
    (d.status, d.module_text, d.reused, d.fresh)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    let module = combined_module();
    let functions = module.functions.len();
    let req = OptimizeRequest {
        client: "bench".into(),
        level: "distribution+lvn".into(),
        policy: "best-effort".into(),
        deadline_ms: None,
        idempotency: String::new(),
        request: String::new(),
        module_text: format!("{module}"),
    };
    println!(
        "serve: {functions} function(s) from 50 routines, {cpus} cpu(s), best of {reps} rep(s)"
    );

    // Cold: a fresh in-memory cache per repetition, so every function
    // goes through the governed pipeline every time.
    let mut cold = Duration::MAX;
    let mut cold_text = String::new();
    for _ in 0..reps {
        let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
        let t0 = Instant::now();
        let (status, text, reused, fresh) = submit_once(&core, &req);
        let t = t0.elapsed();
        assert_eq!(status, "clean", "cold submit must be clean");
        assert_eq!((reused, fresh), (0, functions as u64), "cold submit optimizes everything");
        cold = cold.min(t);
        cold_text = text;
    }

    // Warm: one core primed once, then timed unchanged-module resubmits
    // that replay every function from the cache (oracle still runs).
    let core = ServerCore::new(ServeConfig::default(), ResultCache::in_memory());
    submit_once(&core, &req);
    let mut warm = Duration::MAX;
    let mut warm_text = String::new();
    for _ in 0..reps {
        let t0 = Instant::now();
        let (status, text, reused, fresh) = submit_once(&core, &req);
        let t = t0.elapsed();
        assert_eq!(status, "clean", "warm submit must be clean");
        assert_eq!((reused, fresh), (functions as u64, 0), "warm submit replays everything");
        warm = warm.min(t);
        warm_text = text;
    }
    assert_eq!(cold_text, warm_text, "cache replay must be byte-identical to recomputation");

    let speedup = cold.as_secs_f64() / warm.as_secs_f64();
    println!("  cold  {:>9.1}ms  ({:.0} fn/s)", ms(cold), functions as f64 / cold.as_secs_f64());
    println!("  warm  {:>9.1}ms  ({:.0} fn/s)", ms(warm), functions as f64 / warm.as_secs_f64());
    println!("  warm/cold speedup {speedup:.2}x (target >= 5x)");

    let entry = format!(
        "{{\"quick\":{quick},\"cpus\":{cpus},\"functions\":{functions},\"reps\":{reps},\
         \"cold_ms\":{:.3},\"warm_ms\":{:.3},\"speedup\":{speedup:.3}}}",
        ms(cold),
        ms(warm)
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_SERVE.json");
    let existing = std::fs::read_to_string(path).ok();
    let json = epre_bench::merge_named_runs("serve", existing.as_deref(), &entry);
    match std::fs::write(path, &json) {
        Ok(()) => {
            println!("\nwrote {path} ({} run(s) on record)", epre_bench::next_run_number(&json));
        }
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
    assert!(speedup >= 5.0, "unchanged-module resubmit must be >= 5x cold, got {speedup:.2}x");
}
