//! Regenerates **Table 1** of the paper: dynamic operation counts for the
//! 50-routine suite at the four optimization levels, with the paper's
//! improvement columns. Absolute numbers differ from the paper (different
//! sources, different workload sizes); the *shape* — large `partial`
//! gains, further mixed-but-positive `new` gains, occasional small
//! degradations — is the reproduction target.
//!
//! Usage: `cargo bench -p epre-bench --bench table1`

use epre::OptLevel;
use epre_bench::{dynamic_count, improvement};
use epre_suite::all_routines;

fn main() {
    println!("Table 1: Experimental Results (dynamic ILOC operation counts)");
    println!();
    println!(
        "{:8} {:>10} {:>10} {:>6} {:>10} {:>6} {:>12} {:>6} {:>6} {:>6}",
        "routine",
        "baseline",
        "partial",
        "",
        "reassoc",
        "",
        "distribution",
        "",
        "new",
        "total"
    );
    let mut rows: Vec<(String, u64, u64, u64, u64)> = Vec::new();
    for r in all_routines() {
        let base = dynamic_count(&r, OptLevel::Baseline);
        let part = dynamic_count(&r, OptLevel::Partial);
        let reas = dynamic_count(&r, OptLevel::Reassociation);
        let dist = dynamic_count(&r, OptLevel::Distribution);
        rows.push((r.name.to_string(), base, part, reas, dist));
    }
    // The paper sorts by the `new` column, descending.
    rows.sort_by(|a, b| {
        let na = (a.2 as f64 - a.4 as f64) / a.2 as f64;
        let nb = (b.2 as f64 - b.4 as f64) / b.2 as f64;
        nb.partial_cmp(&na).unwrap()
    });
    let (mut tb, mut tp, mut tr, mut td) = (0u64, 0u64, 0u64, 0u64);
    for (name, base, part, reas, dist) in &rows {
        tb += base;
        tp += part;
        tr += reas;
        td += dist;
        println!(
            "{:8} {:>10} {:>10} {:>6} {:>10} {:>6} {:>12} {:>6} {:>6} {:>6}",
            name,
            base,
            part,
            improvement(*base, *part),
            reas,
            improvement(*part, *reas),
            dist,
            improvement(*reas, *dist),
            improvement(*part, *dist),
            improvement(*base, *dist),
        );
    }
    println!();
    println!(
        "{:8} {:>10} {:>10} {:>6} {:>10} {:>6} {:>12} {:>6} {:>6} {:>6}",
        "TOTAL",
        tb,
        tp,
        improvement(tb, tp),
        tr,
        improvement(tp, tr),
        td,
        improvement(tr, td),
        improvement(tp, td),
        improvement(tb, td),
    );
    println!();
    println!(
        "paper shape check: partial ≫ baseline ({}), new > 0 in aggregate ({})",
        improvement(tb, tp),
        improvement(tp, td)
    );
}
