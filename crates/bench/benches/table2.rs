//! Regenerates **Table 2** of the paper: static code expansion caused by
//! forward propagation, per routine and in total. The paper's totals give
//! an average expansion factor of 1.269; the same moderate-growth story
//! (most routines between 1.0× and 2.5×) should reproduce here.
//!
//! Usage: `cargo bench -p epre-bench --bench table2`

use epre_frontend::NamingMode;
use epre_passes::reassoc::{reassociate, ReassocOptions};
use epre_suite::all_routines;

fn main() {
    println!("Table 2: Code Expansion from Forward Propagation (static ILOC ops)");
    println!();
    println!("{:8} {:>8} {:>8} {:>10}", "routine", "before", "after", "expansion");
    let mut before_total = 0usize;
    let mut after_total = 0usize;
    for r in all_routines() {
        let mut module = r.compile(NamingMode::Disciplined).unwrap();
        let mut before = 0usize;
        let mut after = 0usize;
        for f in &mut module.functions {
            let stats = reassociate(f, ReassocOptions { distribute: true });
            before += stats.ops_before;
            after += stats.ops_after;
        }
        before_total += before;
        after_total += after;
        println!(
            "{:8} {:>8} {:>8} {:>10.3}",
            r.name,
            before,
            after,
            after as f64 / before.max(1) as f64
        );
    }
    println!();
    println!(
        "{:8} {:>8} {:>8} {:>10.3}",
        "totals",
        before_total,
        after_total,
        after_total as f64 / before_total.max(1) as f64
    );
    println!();
    println!("paper totals for comparison: 107475 -> 136377, factor 1.269");
}
