//! # epre-bench — harnesses regenerating the paper's tables and figures
//!
//! Run with `cargo bench -p epre-bench`:
//!
//! * `--bench table1` — Table 1: dynamic ILOC operation counts for all 50
//!   routines at `baseline` / `partial` / `reassociation` / `distribution`,
//!   with the paper's improvement percentages (`new`, `total`),
//! * `--bench table2` — Table 2: static code expansion from forward
//!   propagation (before / after / factor, with totals),
//! * `--bench hierarchy` — the §5.3 redundancy-elimination hierarchy
//!   (dominator CSE ⊂ available-expressions CSE ⊂ PRE), an ablation the
//!   paper discusses qualitatively,
//! * `--bench pass_timing` — Criterion micro-benchmarks of pass
//!   throughput on suite routines.
//!
//! Helper functions live here so the benches stay thin and testable.

use epre::{Optimizer, OptLevel};
use epre_frontend::NamingMode;
use epre_interp::Interpreter;
use epre_suite::Routine;

/// Dynamic operation count of `routine` at `level`.
///
/// # Panics
/// Panics if the routine fails to compile or execute — benchmark inputs
/// are fixed and must work.
pub fn dynamic_count(routine: &Routine, level: OptLevel) -> u64 {
    let module = routine.compile(NamingMode::Disciplined).unwrap();
    let optimized = Optimizer::new(level).optimize(&module);
    let mut interp = Interpreter::new(&optimized);
    interp.run(routine.entry, &[]).unwrap_or_else(|e| panic!("{}: {e}", routine.name));
    interp.counts().total
}

/// The paper's percentage-improvement convention: `(old - new) / old`,
/// rendered like Table 1 (empty for no change, `0%`/`-0%` for tiny ones).
pub fn improvement(old: u64, new: u64) -> String {
    if old == new {
        return String::new();
    }
    let pct = 100.0 * (old as f64 - new as f64) / old as f64;
    if pct.abs() < 0.5 {
        return if pct >= 0.0 { "0%".into() } else { "-0%".into() };
    }
    format!("{:.0}%", pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_formatting_matches_table1_conventions() {
        assert_eq!(improvement(100, 100), "");
        assert_eq!(improvement(1000, 999), "0%");
        assert_eq!(improvement(1000, 1001), "-0%");
        assert_eq!(improvement(100, 80), "20%");
        assert_eq!(improvement(100, 112), "-12%");
    }

    #[test]
    fn dynamic_count_runs_a_routine() {
        let r = epre_suite::all_routines().into_iter().find(|r| r.name == "saxpy").unwrap();
        let base = dynamic_count(&r, OptLevel::Baseline);
        let part = dynamic_count(&r, OptLevel::Partial);
        assert!(base > 0 && part > 0);
        assert!(part <= base);
    }
}
