//! # epre-bench — harnesses regenerating the paper's tables and figures
//!
//! Run with `cargo bench -p epre-bench`:
//!
//! * `--bench table1` — Table 1: dynamic ILOC operation counts for all 50
//!   routines at `baseline` / `partial` / `reassociation` / `distribution`,
//!   with the paper's improvement percentages (`new`, `total`),
//! * `--bench table2` — Table 2: static code expansion from forward
//!   propagation (before / after / factor, with totals),
//! * `--bench hierarchy` — the §5.3 redundancy-elimination hierarchy
//!   (dominator CSE ⊂ available-expressions CSE ⊂ PRE), an ablation the
//!   paper discusses qualitatively,
//! * `--bench pass_timing` — Criterion micro-benchmarks of pass
//!   throughput on suite routines.
//!
//! Helper functions live here so the benches stay thin and testable.

use epre::{Optimizer, OptLevel};
use epre_frontend::NamingMode;
use epre_interp::Interpreter;
use epre_suite::Routine;

/// Dynamic operation count of `routine` at `level`.
///
/// # Panics
/// Panics if the routine fails to compile or execute — benchmark inputs
/// are fixed and must work.
pub fn dynamic_count(routine: &Routine, level: OptLevel) -> u64 {
    let module = routine.compile(NamingMode::Disciplined).unwrap();
    let optimized = Optimizer::new(level).optimize(&module);
    let mut interp = Interpreter::new(&optimized);
    interp.run(routine.entry, &[]).unwrap_or_else(|e| panic!("{}: {e}", routine.name));
    interp.counts().total
}

/// The paper's percentage-improvement convention: `(old - new) / old`,
/// rendered like Table 1 (empty for no change, `0%`/`-0%` for tiny ones).
/// The single implementation lives in `epre-telemetry` (it also renders
/// the `epre report` table); this re-export keeps the bench API stable.
pub use epre_telemetry::improvement;

/// One past the largest `"run":N` tag anywhere in a throughput history
/// file, or 0 when none is present (missing, empty, or legacy file).
pub fn next_run_number(history: &str) -> u64 {
    let mut max: Option<u64> = None;
    let mut rest = history;
    while let Some(pos) = rest.find("\"run\":") {
        rest = &rest[pos + "\"run\":".len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if let Ok(n) = digits.parse::<u64>() {
            max = Some(max.map_or(n, |m| m.max(n)));
        }
    }
    max.map_or(0, |m| m + 1)
}

/// Merge a fresh run into a named bench-history file instead of
/// overwriting it.
///
/// `entry` is the new run's JSON object *without* a `run` field (it is
/// assigned here, one past the largest already recorded). `existing` is
/// the current file contents, if any. The result is the history format
/// `{"bench":"<name>","runs":[...]}` with runs in recording order; a
/// legacy single-run file (the old flat format, which this function
/// recognizes by the absence of a `runs` array) is preserved as run 0.
///
/// # Panics
/// Panics if `entry` is not a brace-delimited JSON object.
pub fn merge_named_runs(bench: &str, existing: Option<&str>, entry: &str) -> String {
    let entry = entry.trim();
    assert!(
        entry.starts_with('{') && entry.ends_with('}'),
        "run entry must be a JSON object"
    );
    let prefix = format!("{{\"bench\":\"{bench}\",\"runs\":[");
    let mut runs: Vec<String> = Vec::new();
    if let Some(old) = existing {
        let old = old.trim();
        if let Some(list) =
            old.strip_prefix(prefix.as_str()).and_then(|rest| rest.strip_suffix("]}"))
        {
            if !list.is_empty() {
                runs.push(list.to_string());
            }
        } else if old.starts_with('{') && old.len() > 2 {
            // Legacy flat file from before run history: keep it as run 0.
            runs.push(format!("{{\"run\":0,{}", &old[1..]));
        }
    }
    let next = next_run_number(&runs.join(","));
    runs.push(format!("{{\"run\":{next},{}", &entry[1..]));
    format!("{prefix}{}]}}\n", runs.join(","))
}

/// [`merge_named_runs`] for the `BENCH_OPT.json` throughput history —
/// the original entry point, kept stable for the throughput bench.
pub fn merge_bench_runs(existing: Option<&str>, entry: &str) -> String {
    merge_named_runs("throughput", existing, entry)
}

/// Are the `"run":N` tags in a bench-history file strictly increasing in
/// file order? A clean history always is — [`merge_named_runs`] assigns
/// one past the maximum — so disorder or duplication is the signature of
/// a hand-edited or corrupted file, and `epre report` refuses to build
/// on it. Files without any `run` tag (empty, missing, legacy flat
/// format) are trivially monotonic.
pub fn runs_monotonic(history: &str) -> bool {
    let mut last: Option<u64> = None;
    let mut rest = history;
    while let Some(pos) = rest.find("\"run\":") {
        rest = &rest[pos + "\"run\":".len()..];
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        match digits.parse::<u64>() {
            Ok(n) => {
                if last.is_some_and(|l| n <= l) {
                    return false;
                }
                last = Some(n);
            }
            // A bare `"run":` with no digits is corruption, not history.
            Err(_) => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_formatting_matches_table1_conventions() {
        assert_eq!(improvement(100, 100), "");
        assert_eq!(improvement(1000, 999), "0%");
        assert_eq!(improvement(1000, 1001), "-0%");
        assert_eq!(improvement(100, 80), "20%");
        assert_eq!(improvement(100, 112), "-12%");
    }

    #[test]
    fn run_numbers_increase_monotonically() {
        assert_eq!(next_run_number(""), 0);
        assert_eq!(next_run_number("{\"bench\":\"throughput\",\"quick\":true}"), 0);
        assert_eq!(next_run_number("{\"runs\":[{\"run\":0,\"x\":1}]}"), 1);
        assert_eq!(next_run_number("{\"runs\":[{\"run\":0},{\"run\":7},{\"run\":3}]}"), 8);
    }

    #[test]
    fn merge_starts_appends_and_wraps_legacy() {
        // First run ever: history is created with run 0.
        let first = merge_bench_runs(None, "{\"quick\":true,\"cpus\":8}");
        assert_eq!(
            first,
            "{\"bench\":\"throughput\",\"runs\":[{\"run\":0,\"quick\":true,\"cpus\":8}]}\n"
        );
        // Second run appends as run 1 without disturbing run 0.
        let second = merge_bench_runs(Some(&first), "{\"quick\":false,\"cpus\":8}");
        assert_eq!(
            second,
            "{\"bench\":\"throughput\",\"runs\":[{\"run\":0,\"quick\":true,\"cpus\":8},{\"run\":1,\"quick\":false,\"cpus\":8}]}\n"
        );
        // A legacy flat file becomes run 0; the new entry becomes run 1.
        let legacy = "{\"bench\":\"throughput\",\"quick\":true,\"levels\":[]}\n";
        let merged = merge_bench_runs(Some(legacy), "{\"quick\":false}");
        assert_eq!(
            merged,
            "{\"bench\":\"throughput\",\"runs\":[{\"run\":0,\"bench\":\"throughput\",\"quick\":true,\"levels\":[]},{\"run\":1,\"quick\":false}]}\n"
        );
    }

    #[test]
    fn named_histories_do_not_cross_contaminate() {
        let serve = merge_named_runs("serve", None, "{\"cold_ms\":10}");
        assert_eq!(serve, "{\"bench\":\"serve\",\"runs\":[{\"run\":0,\"cold_ms\":10}]}\n");
        let serve2 = merge_named_runs("serve", Some(&serve), "{\"cold_ms\":12}");
        assert_eq!(
            serve2,
            "{\"bench\":\"serve\",\"runs\":[{\"run\":0,\"cold_ms\":10},{\"run\":1,\"cold_ms\":12}]}\n"
        );
        // A throughput history handed to the serve bench is treated as
        // legacy content, not silently re-tagged in place.
        let cross = merge_named_runs("serve", Some("{\"bench\":\"throughput\",\"runs\":[]}"), "{\"a\":1}");
        assert!(cross.starts_with("{\"bench\":\"serve\",\"runs\":["));
    }

    #[test]
    fn monotonicity_accepts_clean_histories_and_rejects_tampering() {
        assert!(runs_monotonic(""));
        assert!(runs_monotonic("{\"bench\":\"throughput\",\"quick\":true}"), "legacy flat file");
        let mut h = merge_bench_runs(None, "{\"a\":1}");
        h = merge_bench_runs(Some(&h), "{\"a\":2}");
        h = merge_bench_runs(Some(&h), "{\"a\":3}");
        assert!(runs_monotonic(&h), "every merged history is monotonic: {h}");
        assert!(!runs_monotonic("{\"runs\":[{\"run\":1},{\"run\":1}]}"), "duplicates");
        assert!(!runs_monotonic("{\"runs\":[{\"run\":2},{\"run\":0}]}"), "disorder");
        assert!(!runs_monotonic("{\"runs\":[{\"run\":}]}"), "digitless tag");
    }

    #[test]
    fn dynamic_count_runs_a_routine() {
        let r = epre_suite::all_routines().into_iter().find(|r| r.name == "saxpy").unwrap();
        let base = dynamic_count(&r, OptLevel::Baseline);
        let part = dynamic_count(&r, OptLevel::Partial);
        assert!(base > 0 && part > 0);
        assert!(part <= base);
    }
}
