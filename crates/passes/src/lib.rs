//! # epre-passes — the optimization passes of the Effective PRE pipeline
//!
//! Every transformation the paper uses or measures, each implemented as an
//! independent function-level pass (the paper structures its optimizer "as
//! a sequence of passes, where each pass is a Unix filter that consumes and
//! produces ILOC"; here each pass is a `&mut Function` filter):
//!
//! **The paper's contributions (§3):**
//!
//! * [`reassoc`] — global reassociation: ranks, forward propagation,
//!   associative-commutative sorting, optional distribution of multiply
//!   over add,
//! * [`gvn`] — partition-based global value numbering (Alpern, Wegman &
//!   Zadeck) followed by the global renaming that encodes value equivalence
//!   into the name space,
//! * [`pre`] — partial redundancy elimination in the Drechsler–Stadel
//!   edge-placement formulation.
//!
//! **The baseline optimizer (§4.1):**
//!
//! * [`sccp`] — sparse conditional constant propagation (Wegman–Zadeck),
//! * [`peephole`] — global peephole optimization (algebraic identities,
//!   constant folding, subtraction reconstruction, multiply-by-constant
//!   strength reduction — deliberately *after* reassociation, §5.2),
//! * [`dce`] — dead code elimination,
//! * [`coalesce`] — the coalescing phase of a Chaitin-style register
//!   allocator (removes copies),
//! * [`clean`] — empty-block elimination and CFG tidying.
//!
//! **Comparators and extensions (§5.3, §4.1 "missing passes"):**
//!
//! * [`cse`] — dominator-scoped CSE and AVAIL-based global CSE, the two
//!   weaker members of the redundancy-elimination hierarchy,
//! * [`lvn`] — hash-based local value numbering.
//!
//! All passes preserve the structural verifier and the interpreter-observable
//! semantics of the function; the property tests at the crate root check
//! both on randomly generated programs.
//!
//! ## Change reporting and analysis preservation
//!
//! [`Pass::run`] returns whether the pass changed the function, and
//! [`Pass::preserves`] declares which cached analyses survive a change —
//! together they drive the pipeline's [`AnalysisCache`] so a pass boundary
//! no longer implies recomputing the CFG, dominators, and expression
//! universe from scratch. Passes that rebuild the function wholesale (the
//! SSA round-trippers `gvn` and `reassoc`, and `sccp`) report `true`
//! conservatively; over-reporting a change is always sound (it merely
//! costs a recomputation), while under-reporting is a bug that the
//! pipeline's debug-build cache validation catches and blames by name.

pub mod clean;
pub mod coalesce;
pub mod cse;
pub mod dce;
pub mod gvn;
pub mod lvn;
pub mod peephole;
pub mod pre;
pub mod reassoc;
pub mod sccp;

use epre_analysis::{AnalysisCache, PreservedAnalyses};
use epre_ir::Function;

/// A function-level optimization pass.
///
/// Passes are stateless filters; any analyses they need are computed
/// internally, mirroring the paper's pass structure ("each pass performs a
/// single optimization, including all the required control-flow and
/// data-flow analyses") — or borrowed from the pipeline's
/// [`AnalysisCache`] via [`Pass::run_cached`].
pub trait Pass {
    /// Short, stable pass name (used in pipeline descriptions and logs).
    fn name(&self) -> &'static str;

    /// Transform `f` in place. Returns `true` if the function may have
    /// changed. Reporting `true` for an unchanged function is sound (it
    /// costs cached-analysis recomputation); reporting `false` for a
    /// changed function is a contract violation caught by the pipeline's
    /// debug-build cache validation.
    fn run(&self, f: &mut Function) -> bool;

    /// The analyses this pass keeps valid **when it reports a change**.
    /// (A pass reporting no change implicitly preserves everything.)
    /// The default is the safe minimum: nothing survives.
    fn preserves(&self) -> PreservedAnalyses {
        PreservedAnalyses::none()
    }

    /// Transform `f` with access to the pipeline's analysis cache.
    ///
    /// Implementations MUST leave `cache` consistent with the function they
    /// return: the default runs [`Pass::run`] and, on change, drops
    /// everything outside [`Pass::preserves`]. Overrides may use the cache
    /// during the transform and invalidate with finer grain.
    fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
        let changed = self.run(f);
        if changed {
            cache.retain(self.preserves());
        }
        changed
    }
}

/// The statistics-reporting pass objects used by the driver crate.
pub mod passes {
    use super::*;

    macro_rules! simple_pass {
        ($(#[$doc:meta])* $name:ident, $label:literal, $fun:path $(, preserves: $pres:expr)?) => {
            $(#[$doc])*
            #[derive(Debug, Clone, Copy, Default)]
            pub struct $name;
            impl Pass for $name {
                fn name(&self) -> &'static str {
                    $label
                }
                fn run(&self, f: &mut Function) -> bool {
                    $fun(f)
                }
                $(
                    fn preserves(&self) -> PreservedAnalyses {
                        $pres
                    }
                )?
            }
        };
    }

    simple_pass!(
        /// Sparse conditional constant propagation.
        ConstProp,
        "constprop",
        crate::sccp::run
    );
    /// Global peephole optimization. Instruction rewrites keep the CFG
    /// intact; only folding a conditional branch changes block shape, and
    /// `peephole::run_detailed` reports which happened, so `run_cached`
    /// invalidates with finer grain than the trait default.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Peephole;

    impl Pass for Peephole {
        fn name(&self) -> &'static str {
            "peephole"
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::peephole::run(f)
        }
        fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
            let outcome = crate::peephole::run_detailed(f);
            if outcome.changed() {
                if outcome.cfg_changed {
                    cache.invalidate_cfg();
                }
                cache.invalidate_universe();
            }
            outcome.changed()
        }
    }
    /// Dead code elimination. Deletes instructions only — never blocks
    /// or edges — so the control-flow family survives. `run_cached` hands
    /// the pipeline's cache straight to the pass: a CFG computed by an
    /// earlier pass feeds every liveness round, and DCE's own invalidation
    /// (universe only, per deleting round) keeps it consistent.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Dce;

    impl Pass for Dce {
        fn name(&self) -> &'static str {
            "dce"
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::dce::run(f)
        }
        fn preserves(&self) -> PreservedAnalyses {
            PreservedAnalyses::none().with_cfg()
        }
        fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
            crate::dce::run_with_cache(f, cache)
        }
    }

    /// Chaitin-style copy coalescing. Renames registers and drops copies
    /// within blocks; block structure is untouched, so `run_cached` shares
    /// the pipeline cache's CFG with its liveness rounds and invalidates
    /// only the expression universe on change.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Coalesce;

    impl Pass for Coalesce {
        fn name(&self) -> &'static str {
            "coalesce"
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::coalesce::run(f)
        }
        fn preserves(&self) -> PreservedAnalyses {
            PreservedAnalyses::none().with_cfg()
        }
        fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
            crate::coalesce::run_with_cache(f, cache)
        }
    }

    /// Empty-block elimination / CFG tidying. `run_cached` shares the
    /// pipeline cache across the fixed point; the quiescing final round
    /// leaves a valid CFG behind for whatever runs next.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Clean;

    impl Pass for Clean {
        fn name(&self) -> &'static str {
            "clean"
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::clean::run(f)
        }
        fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
            crate::clean::run_with_cache(f, cache)
        }
    }
    simple_pass!(
        /// Partial redundancy elimination (Drechsler–Stadel).
        Pre,
        "pre",
        crate::pre::run
    );
    simple_pass!(
        /// Partition-based global value numbering + renaming.
        Gvn,
        "gvn",
        crate::gvn::run
    );
    simple_pass!(
        /// Hash-based local value numbering. Rewrites and deletes
        /// instructions within blocks; the CFG is untouched.
        Lvn,
        "lvn",
        crate::lvn::run,
        preserves: PreservedAnalyses::none().with_cfg()
    );

    /// Global reassociation (rank + forward propagation + sorting), with or
    /// without distribution of multiplication over addition.
    #[derive(Debug, Clone, Copy)]
    pub struct Reassociate {
        /// Distribute low-ranked multipliers over higher-ranked sums
        /// (the paper's `distribution` level).
        pub distribute: bool,
    }

    impl Pass for Reassociate {
        fn name(&self) -> &'static str {
            if self.distribute {
                "reassociate+distribute"
            } else {
                "reassociate"
            }
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::reassoc::reassociate(
                f,
                crate::reassoc::ReassocOptions { distribute: self.distribute },
            );
            // The SSA round trip renames registers even when nothing
            // propagates; report a change conservatively.
            true
        }
    }
}
