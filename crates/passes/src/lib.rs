//! # epre-passes — the optimization passes of the Effective PRE pipeline
//!
//! Every transformation the paper uses or measures, each implemented as an
//! independent function-level pass (the paper structures its optimizer "as
//! a sequence of passes, where each pass is a Unix filter that consumes and
//! produces ILOC"; here each pass is a `&mut Function` filter):
//!
//! **The paper's contributions (§3):**
//!
//! * [`reassoc`] — global reassociation: ranks, forward propagation,
//!   associative-commutative sorting, optional distribution of multiply
//!   over add,
//! * [`gvn`] — partition-based global value numbering (Alpern, Wegman &
//!   Zadeck) followed by the global renaming that encodes value equivalence
//!   into the name space,
//! * [`pre`] — partial redundancy elimination in the Drechsler–Stadel
//!   edge-placement formulation.
//!
//! **The baseline optimizer (§4.1):**
//!
//! * [`sccp`] — sparse conditional constant propagation (Wegman–Zadeck),
//! * [`peephole`] — global peephole optimization (algebraic identities,
//!   constant folding, subtraction reconstruction, multiply-by-constant
//!   strength reduction — deliberately *after* reassociation, §5.2),
//! * [`dce`] — dead code elimination,
//! * [`coalesce`] — the coalescing phase of a Chaitin-style register
//!   allocator (removes copies),
//! * [`clean`] — empty-block elimination and CFG tidying.
//!
//! **Comparators and extensions (§5.3, §4.1 "missing passes"):**
//!
//! * [`cse`] — dominator-scoped CSE and AVAIL-based global CSE, the two
//!   weaker members of the redundancy-elimination hierarchy,
//! * [`lvn`] — hash-based local value numbering.
//!
//! All passes preserve the structural verifier and the interpreter-observable
//! semantics of the function; the property tests at the crate root check
//! both on randomly generated programs.
//!
//! ## Change reporting and analysis preservation
//!
//! [`Pass::run`] returns whether the pass changed the function, and
//! [`Pass::preserves`] declares which cached analyses survive a change —
//! together they drive the pipeline's [`AnalysisCache`] so a pass boundary
//! no longer implies recomputing the CFG, dominators, and expression
//! universe from scratch. Passes that rebuild the function wholesale (the
//! SSA round-trippers `gvn` and `reassoc`, and `sccp`) report `true`
//! conservatively; over-reporting a change is always sound (it merely
//! costs a recomputation), while under-reporting is a bug that the
//! pipeline's debug-build cache validation catches and blames by name.

pub mod budget;
pub mod clean;
pub mod coalesce;
pub mod cse;
pub mod dce;
pub mod gvn;
pub mod lvn;
pub mod peephole;
pub mod pre;
pub mod reassoc;
pub mod sccp;

pub use budget::{Budget, BudgetExceeded, BudgetKind, Meter};
pub use epre_telemetry::PassCounters;

use epre_analysis::{AnalysisCache, PreservedAnalyses};
use epre_ir::Function;

/// A function-level optimization pass.
///
/// Passes are stateless filters; any analyses they need are computed
/// internally, mirroring the paper's pass structure ("each pass performs a
/// single optimization, including all the required control-flow and
/// data-flow analyses") — or borrowed from the pipeline's
/// [`AnalysisCache`] via [`Pass::run_cached`].
pub trait Pass {
    /// Short, stable pass name (used in pipeline descriptions and logs).
    fn name(&self) -> &'static str;

    /// Transform `f` in place. Returns `true` if the function may have
    /// changed. Reporting `true` for an unchanged function is sound (it
    /// costs cached-analysis recomputation); reporting `false` for a
    /// changed function is a contract violation caught by the pipeline's
    /// debug-build cache validation.
    fn run(&self, f: &mut Function) -> bool;

    /// The analyses this pass keeps valid **when it reports a change**.
    /// (A pass reporting no change implicitly preserves everything.)
    /// The default is the safe minimum: nothing survives.
    fn preserves(&self) -> PreservedAnalyses {
        PreservedAnalyses::none()
    }

    /// Transform `f` with access to the pipeline's analysis cache.
    ///
    /// Implementations MUST leave `cache` consistent with the function they
    /// return: the default runs [`Pass::run`] and, on change, drops
    /// everything outside [`Pass::preserves`]. Overrides may use the cache
    /// during the transform and invalidate with finer grain.
    fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
        let changed = self.run(f);
        if changed {
            cache.retain(self.preserves());
        }
        changed
    }

    /// Transform `f` under a resource [`Budget`].
    ///
    /// Fixed-point passes override this to place a cooperative checkpoint
    /// ([`Meter::tick`]) inside every loop that could fail to converge, so
    /// an over-budget invocation stops *mid-flight* with a typed
    /// [`BudgetExceeded`] instead of spinning. The default covers passes
    /// without such loops: it runs [`Pass::run_cached`] to completion and
    /// then holds the result to the growth and deadline dimensions
    /// post-hoc via [`Meter::finish`].
    ///
    /// On `Err` the function may be left mid-transform; callers that need
    /// all-or-nothing semantics (the sandbox, the pipeline driver) run on
    /// a clone and roll back, exactly as they do for panics.
    ///
    /// # Errors
    /// [`BudgetExceeded`] naming the first exhausted dimension.
    fn run_budgeted(
        &self,
        f: &mut Function,
        cache: &mut AnalysisCache,
        budget: &Budget,
    ) -> Result<bool, BudgetExceeded> {
        if !budget.is_limited() {
            return Ok(self.run_cached(f, cache));
        }
        let meter = budget.start(f);
        let changed = self.run_cached(f, cache);
        meter.finish(f)?;
        Ok(changed)
    }

    /// [`Pass::run_budgeted`], additionally reporting the pass's own
    /// work counters into `counters` (the telemetry layer's per-span
    /// payload: expressions hoisted, partitions found, ops folded, …).
    ///
    /// The default ignores `counters` and simply delegates, so a pass
    /// without instrumentation still runs correctly under tracing — its
    /// spans just carry an empty counter set. Implementations MUST leave
    /// the function and cache in exactly the state [`Pass::run_budgeted`]
    /// would: tracing may never change the optimization result.
    ///
    /// # Errors
    /// [`BudgetExceeded`] exactly as [`Pass::run_budgeted`].
    fn run_instrumented(
        &self,
        f: &mut Function,
        cache: &mut AnalysisCache,
        budget: &Budget,
        counters: &mut PassCounters,
    ) -> Result<bool, BudgetExceeded> {
        let _ = counters;
        self.run_budgeted(f, cache, budget)
    }
}

/// The statistics-reporting pass objects used by the driver crate.
pub mod passes {
    use super::*;

    macro_rules! simple_pass {
        ($(#[$doc:meta])* $name:ident, $label:literal, $fun:path
         $(, preserves: $pres:expr)?
         $(, budgeted_uncached: $bud:path)?
         $(, instrumented_uncached: $ins:path)?) => {
            $(#[$doc])*
            #[derive(Debug, Clone, Copy, Default)]
            pub struct $name;
            impl Pass for $name {
                fn name(&self) -> &'static str {
                    $label
                }
                fn run(&self, f: &mut Function) -> bool {
                    $fun(f)
                }
                $(
                    fn preserves(&self) -> PreservedAnalyses {
                        $pres
                    }
                )?
                $(
                    // `budgeted_uncached`: the module's budgeted entry point
                    // takes no cache (the pass rebuilds SSA internally), so
                    // the cache is retained here exactly as the trait's
                    // run_cached default would.
                    fn run_budgeted(
                        &self,
                        f: &mut Function,
                        cache: &mut AnalysisCache,
                        budget: &Budget,
                    ) -> Result<bool, BudgetExceeded> {
                        let changed = $bud(f, budget)?;
                        if changed {
                            cache.retain(self.preserves());
                        }
                        Ok(changed)
                    }
                )?
                $(
                    // `instrumented_uncached`: the module's counted entry
                    // point takes no cache either; retention mirrors
                    // `budgeted_uncached` so tracing never changes the
                    // cache state the untraced pipeline would have.
                    fn run_instrumented(
                        &self,
                        f: &mut Function,
                        cache: &mut AnalysisCache,
                        budget: &Budget,
                        counters: &mut PassCounters,
                    ) -> Result<bool, BudgetExceeded> {
                        let changed = $ins(f, budget, counters)?;
                        if changed {
                            cache.retain(self.preserves());
                        }
                        Ok(changed)
                    }
                )?
            }
        };
    }

    simple_pass!(
        /// Sparse conditional constant propagation.
        ConstProp,
        "constprop",
        crate::sccp::run,
        budgeted_uncached: crate::sccp::run_budgeted,
        instrumented_uncached: crate::sccp::run_counted
    );
    /// Global peephole optimization. Instruction rewrites keep the CFG
    /// intact; only folding a conditional branch changes block shape, and
    /// `peephole::run_detailed` reports which happened, so `run_cached`
    /// invalidates with finer grain than the trait default.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Peephole;

    impl Pass for Peephole {
        fn name(&self) -> &'static str {
            "peephole"
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::peephole::run(f)
        }
        fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
            let outcome = crate::peephole::run_detailed(f);
            if outcome.changed() {
                if outcome.cfg_changed {
                    cache.invalidate_cfg();
                }
                cache.invalidate_universe();
                cache.invalidate_liveness();
            }
            outcome.changed()
        }
        fn run_instrumented(
            &self,
            f: &mut Function,
            cache: &mut AnalysisCache,
            budget: &Budget,
            counters: &mut PassCounters,
        ) -> Result<bool, BudgetExceeded> {
            // Mirrors the trait's default run_budgeted (single sweep,
            // growth/deadline held post-hoc) with run_cached inlined so
            // the detailed outcome feeds the counters.
            let meter = budget.is_limited().then(|| budget.start(f));
            let outcome = crate::peephole::run_detailed(f);
            if outcome.changed() {
                if outcome.cfg_changed {
                    cache.invalidate_cfg();
                }
                cache.invalidate_universe();
                cache.invalidate_liveness();
            }
            if let Some(meter) = meter {
                meter.finish(f)?;
            }
            counters.add("rewrites", outcome.rewrites);
            counters.add("branches_folded", outcome.branches_folded);
            Ok(outcome.changed())
        }
    }
    /// Dead code elimination. Deletes instructions only — never blocks
    /// or edges — so the control-flow family survives. `run_cached` hands
    /// the pipeline's cache straight to the pass: a CFG computed by an
    /// earlier pass feeds every liveness round, DCE's own invalidation
    /// (universe + liveness, per deleting round) keeps it consistent, and
    /// the quiescing round's liveness survives for coalescing next door.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Dce;

    impl Pass for Dce {
        fn name(&self) -> &'static str {
            "dce"
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::dce::run(f)
        }
        fn preserves(&self) -> PreservedAnalyses {
            PreservedAnalyses::none().with_cfg()
        }
        fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
            crate::dce::run_with_cache(f, cache)
        }
        fn run_budgeted(
            &self,
            f: &mut Function,
            cache: &mut AnalysisCache,
            budget: &Budget,
        ) -> Result<bool, BudgetExceeded> {
            crate::dce::run_budgeted(f, cache, budget)
        }
        fn run_instrumented(
            &self,
            f: &mut Function,
            cache: &mut AnalysisCache,
            budget: &Budget,
            counters: &mut PassCounters,
        ) -> Result<bool, BudgetExceeded> {
            crate::dce::run_counted(f, cache, budget, counters)
        }
    }

    /// Chaitin-style copy coalescing. Renames registers and drops copies
    /// within blocks; block structure is untouched, so `run_cached` shares
    /// the pipeline cache's CFG with its liveness rounds and invalidates
    /// only the expression universe on change.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Coalesce;

    impl Pass for Coalesce {
        fn name(&self) -> &'static str {
            "coalesce"
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::coalesce::run(f)
        }
        fn preserves(&self) -> PreservedAnalyses {
            PreservedAnalyses::none().with_cfg()
        }
        fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
            crate::coalesce::run_with_cache(f, cache)
        }
        fn run_budgeted(
            &self,
            f: &mut Function,
            cache: &mut AnalysisCache,
            budget: &Budget,
        ) -> Result<bool, BudgetExceeded> {
            crate::coalesce::run_budgeted(f, cache, budget)
        }
        fn run_instrumented(
            &self,
            f: &mut Function,
            cache: &mut AnalysisCache,
            budget: &Budget,
            counters: &mut PassCounters,
        ) -> Result<bool, BudgetExceeded> {
            crate::coalesce::run_counted(f, cache, budget, counters)
        }
    }

    /// Empty-block elimination / CFG tidying. `run_cached` shares the
    /// pipeline cache across the fixed point; the quiescing final round
    /// leaves a valid CFG behind for whatever runs next.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Clean;

    impl Pass for Clean {
        fn name(&self) -> &'static str {
            "clean"
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::clean::run(f)
        }
        fn run_cached(&self, f: &mut Function, cache: &mut AnalysisCache) -> bool {
            crate::clean::run_with_cache(f, cache)
        }
        fn run_budgeted(
            &self,
            f: &mut Function,
            cache: &mut AnalysisCache,
            budget: &Budget,
        ) -> Result<bool, BudgetExceeded> {
            crate::clean::run_budgeted(f, cache, budget)
        }
        fn run_instrumented(
            &self,
            f: &mut Function,
            cache: &mut AnalysisCache,
            budget: &Budget,
            counters: &mut PassCounters,
        ) -> Result<bool, BudgetExceeded> {
            crate::clean::run_counted(f, cache, budget, counters)
        }
    }
    simple_pass!(
        /// Partial redundancy elimination (Drechsler–Stadel).
        Pre,
        "pre",
        crate::pre::run,
        budgeted_uncached: crate::pre::run_budgeted,
        instrumented_uncached: crate::pre::run_counted
    );
    simple_pass!(
        /// Partition-based global value numbering + renaming.
        Gvn,
        "gvn",
        crate::gvn::run,
        budgeted_uncached: crate::gvn::run_budgeted,
        instrumented_uncached: crate::gvn::run_counted
    );
    simple_pass!(
        /// Hash-based local value numbering. Rewrites and deletes
        /// instructions within blocks; the CFG is untouched.
        Lvn,
        "lvn",
        crate::lvn::run,
        preserves: PreservedAnalyses::none().with_cfg(),
        instrumented_uncached: crate::lvn::run_counted
    );

    /// Global reassociation (rank + forward propagation + sorting), with or
    /// without distribution of multiplication over addition.
    #[derive(Debug, Clone, Copy)]
    pub struct Reassociate {
        /// Distribute low-ranked multipliers over higher-ranked sums
        /// (the paper's `distribution` level).
        pub distribute: bool,
    }

    impl Pass for Reassociate {
        fn name(&self) -> &'static str {
            if self.distribute {
                "reassociate+distribute"
            } else {
                "reassociate"
            }
        }
        fn run(&self, f: &mut Function) -> bool {
            crate::reassoc::reassociate(
                f,
                crate::reassoc::ReassocOptions { distribute: self.distribute },
            );
            // The SSA round trip renames registers even when nothing
            // propagates; report a change conservatively.
            true
        }
        fn run_budgeted(
            &self,
            f: &mut Function,
            cache: &mut AnalysisCache,
            budget: &Budget,
        ) -> Result<bool, BudgetExceeded> {
            crate::reassoc::reassociate_budgeted(
                f,
                crate::reassoc::ReassocOptions { distribute: self.distribute },
                budget,
            )?;
            cache.retain(self.preserves());
            Ok(true)
        }
        fn run_instrumented(
            &self,
            f: &mut Function,
            cache: &mut AnalysisCache,
            budget: &Budget,
            counters: &mut PassCounters,
        ) -> Result<bool, BudgetExceeded> {
            crate::reassoc::reassociate_counted(
                f,
                crate::reassoc::ReassocOptions { distribute: self.distribute },
                budget,
                counters,
            )?;
            cache.retain(self.preserves());
            Ok(true)
        }
    }
}
