//! # epre-passes — the optimization passes of the Effective PRE pipeline
//!
//! Every transformation the paper uses or measures, each implemented as an
//! independent function-level pass (the paper structures its optimizer "as
//! a sequence of passes, where each pass is a Unix filter that consumes and
//! produces ILOC"; here each pass is a `&mut Function` filter):
//!
//! **The paper's contributions (§3):**
//!
//! * [`reassoc`] — global reassociation: ranks, forward propagation,
//!   associative-commutative sorting, optional distribution of multiply
//!   over add,
//! * [`gvn`] — partition-based global value numbering (Alpern, Wegman &
//!   Zadeck) followed by the global renaming that encodes value equivalence
//!   into the name space,
//! * [`pre`] — partial redundancy elimination in the Drechsler–Stadel
//!   edge-placement formulation.
//!
//! **The baseline optimizer (§4.1):**
//!
//! * [`sccp`] — sparse conditional constant propagation (Wegman–Zadeck),
//! * [`peephole`] — global peephole optimization (algebraic identities,
//!   constant folding, subtraction reconstruction, multiply-by-constant
//!   strength reduction — deliberately *after* reassociation, §5.2),
//! * [`dce`] — dead code elimination,
//! * [`coalesce`] — the coalescing phase of a Chaitin-style register
//!   allocator (removes copies),
//! * [`clean`] — empty-block elimination and CFG tidying.
//!
//! **Comparators and extensions (§5.3, §4.1 "missing passes"):**
//!
//! * [`cse`] — dominator-scoped CSE and AVAIL-based global CSE, the two
//!   weaker members of the redundancy-elimination hierarchy,
//! * [`lvn`] — hash-based local value numbering.
//!
//! All passes preserve the structural verifier and the interpreter-observable
//! semantics of the function; the property tests at the crate root check
//! both on randomly generated programs.

pub mod clean;
pub mod coalesce;
pub mod cse;
pub mod dce;
pub mod gvn;
pub mod lvn;
pub mod peephole;
pub mod pre;
pub mod reassoc;
pub mod sccp;

use epre_ir::Function;

/// A function-level optimization pass.
///
/// Passes are stateless filters; any analyses they need are computed
/// internally, mirroring the paper's pass structure ("each pass performs a
/// single optimization, including all the required control-flow and
/// data-flow analyses").
pub trait Pass {
    /// Short, stable pass name (used in pipeline descriptions and logs).
    fn name(&self) -> &'static str;
    /// Transform `f` in place.
    fn run(&self, f: &mut Function);
}

/// The statistics-reporting pass objects used by the driver crate.
pub mod passes {
    use super::*;

    macro_rules! simple_pass {
        ($(#[$doc:meta])* $name:ident, $label:literal, $fun:path) => {
            $(#[$doc])*
            #[derive(Debug, Clone, Copy, Default)]
            pub struct $name;
            impl Pass for $name {
                fn name(&self) -> &'static str {
                    $label
                }
                fn run(&self, f: &mut Function) {
                    $fun(f);
                }
            }
        };
    }

    simple_pass!(
        /// Sparse conditional constant propagation.
        ConstProp,
        "constprop",
        crate::sccp::run
    );
    simple_pass!(
        /// Global peephole optimization.
        Peephole,
        "peephole",
        crate::peephole::run
    );
    simple_pass!(
        /// Dead code elimination.
        Dce,
        "dce",
        crate::dce::run
    );
    simple_pass!(
        /// Chaitin-style copy coalescing.
        Coalesce,
        "coalesce",
        crate::coalesce::run
    );
    simple_pass!(
        /// Empty-block elimination / CFG tidying.
        Clean,
        "clean",
        crate::clean::run
    );
    simple_pass!(
        /// Partial redundancy elimination (Drechsler–Stadel).
        Pre,
        "pre",
        crate::pre::run
    );
    simple_pass!(
        /// Partition-based global value numbering + renaming.
        Gvn,
        "gvn",
        crate::gvn::run
    );
    simple_pass!(
        /// Hash-based local value numbering.
        Lvn,
        "lvn",
        crate::lvn::run
    );

    /// Global reassociation (rank + forward propagation + sorting), with or
    /// without distribution of multiplication over addition.
    #[derive(Debug, Clone, Copy)]
    pub struct Reassociate {
        /// Distribute low-ranked multipliers over higher-ranked sums
        /// (the paper's `distribution` level).
        pub distribute: bool,
    }

    impl Pass for Reassociate {
        fn name(&self) -> &'static str {
            if self.distribute {
                "reassociate+distribute"
            } else {
                "reassociate"
            }
        }
        fn run(&self, f: &mut Function) {
            crate::reassoc::reassociate(
                f,
                crate::reassoc::ReassocOptions { distribute: self.distribute },
            );
        }
    }
}
