//! Partial redundancy elimination (Morel–Renvoise, in the Drechsler–Stadel
//! edge-placement formulation the paper uses — §2, §4: "Our implementation
//! of PRE uses a variation described by Drechsler and Stadel. Their
//! formulation supports edge placement for enhanced optimization and
//! simplifies the data-flow equations … avoiding the bidirectional
//! equations typical of some other approaches").
//!
//! The pass works over the function's lexical [`ExprUniverse`]:
//!
//! ```text
//! ANTOUT(b) = ∩ ANTIN(succ)          ANTIN(b) = ANTLOC(b) ∪ (ANTOUT(b) ∩ TRANSP(b))
//! AVIN(b)   = ∩ AVOUT(pred)          AVOUT(b) = COMP(b)   ∪ (AVIN(b)  ∩ TRANSP(b))
//! EARLIEST(i,j) = ANTIN(j) ∩ ¬AVOUT(i) ∩ (¬TRANSP(i) ∪ ¬ANTOUT(i))   [i ≠ entry]
//! EARLIEST(entry,j) = ANTIN(j) ∩ ¬AVOUT(entry)
//! LATER(i,j)   = EARLIEST(i,j) ∪ (LATERIN(i) ∩ ¬ANTLOC(i))
//! LATERIN(j)   = ∩ LATER(i,j)        LATERIN(entry) = ∅
//! INSERT(i,j)  = LATER(i,j) ∩ ¬LATERIN(j)
//! DELETE(b)    = ANTLOC(b) ∩ ¬LATERIN(b)                              [b ≠ entry]
//! ```
//!
//! Insertions land on edges; all critical edges are split up front so each
//! insertion has a landing site. Deletion removes the upward-exposed
//! occurrences of the expression; because the §2.2 naming discipline gives
//! every lexical expression a single target register, a deleted occurrence
//! needs no replacement copy — the register already holds the value. PRE
//! therefore refuses to touch expressions whose occurrences target
//! different registers ([`ExprUniverse::is_disciplined`]); global value
//! numbering's renaming (the paper's §3.2) is what makes that rare.
//!
//! A key property, used by the paper's argument and our property tests:
//! **PRE never lengthens an execution path** — the dynamic operation count
//! of the transformed function never exceeds the original on any input.

use epre_analysis::{solve, BitSet, Direction, ExprId, ExprKey, ExprUniverse, LocalPredicates, Meet};
use epre_cfg::edit::split_critical_edges;
use epre_cfg::Cfg;
use epre_ir::{BlockId, Function, Inst};

use crate::budget::{Budget, BudgetExceeded, Meter};
use epre_telemetry::PassCounters;

/// What one [`run_budgeted_stats`] invocation did, in the paper's own
/// vocabulary: how many critical edges were split, how many expression
/// computations were hoisted onto edges, and how many upward-exposed
/// occurrences were deleted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PreStats {
    /// Outer application rounds that changed the function.
    pub rounds: u64,
    /// Critical edges split to create insertion landing sites.
    pub edges_split: u64,
    /// Expression computations inserted on edges (the paper's "hoisted").
    pub exprs_hoisted: u64,
    /// Upward-exposed occurrences deleted as redundant.
    pub occurrences_deleted: u64,
    /// Cooperative-checkpoint ticks consumed.
    pub ticks: u64,
}

impl PreStats {
    /// Did the invocation change the function at all?
    pub fn changed(&self) -> bool {
        self.edges_split + self.exprs_hoisted + self.occurrences_deleted > 0
    }
}

/// Run PRE to a fixed point. Returns true if any round changed the
/// function (including critical-edge splitting, which edits the CFG).
///
/// A single application exposes *second-order* opportunities: hoisting a
/// `loadi` out of a block un-kills the expressions that consumed the
/// constant, so they become hoistable on the next application (Morel &
/// Renvoise already observed that their transformation benefits from
/// repetition). Each round only deletes or moves computations, so the
/// iteration converges; a generous bound guards against pathological
/// inputs.
pub fn run(f: &mut Function) -> bool {
    match run_budgeted(f, &Budget::UNLIMITED) {
        Ok(any) => any,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`run`] under a resource [`Budget`]: cooperative checkpoints per outer
/// application round *and* per LATER/LATERIN sweep inside each round —
/// both loops are fixed points, and the growth dimension also polices
/// edge-split and insertion blowup between rounds.
///
/// # Errors
/// [`BudgetExceeded`] when a round or sweep starts over budget; completed
/// rounds stay applied (callers needing atomicity run a clone).
pub fn run_budgeted(f: &mut Function, budget: &Budget) -> Result<bool, BudgetExceeded> {
    run_budgeted_stats(f, budget).map(|s| s.changed())
}

/// [`run_budgeted`], additionally reporting what the invocation did as a
/// [`PreStats`].
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_budgeted_stats(f: &mut Function, budget: &Budget) -> Result<PreStats, BudgetExceeded> {
    let mut meter = budget.start(f);
    let mut stats = PreStats::default();
    for _ in 0..10 {
        meter.tick(f)?;
        if !run_once_metered(f, &mut meter, &mut stats)? {
            break;
        }
        stats.rounds += 1;
    }
    stats.ticks = meter.ticks();
    Ok(stats)
}

/// Instrumented entry point for the pipeline: [`run_budgeted_stats`] with
/// the stats folded into `counters`.
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_counted(
    f: &mut Function,
    budget: &Budget,
    counters: &mut PassCounters,
) -> Result<bool, BudgetExceeded> {
    let stats = run_budgeted_stats(f, budget)?;
    counters.add("rounds", stats.rounds);
    counters.add("edges_split", stats.edges_split);
    counters.add("exprs_hoisted", stats.exprs_hoisted);
    counters.add("occurrences_deleted", stats.occurrences_deleted);
    counters.add("ticks", stats.ticks);
    Ok(stats.changed())
}

/// One application of Drechsler–Stadel PRE; returns true if anything
/// changed (edges split, insertions, or deletions).
pub fn run_once(f: &mut Function) -> bool {
    let mut meter = Budget::UNLIMITED.start(f);
    match run_once_metered(f, &mut meter, &mut PreStats::default()) {
        Ok(changed) => changed,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`run_once`] charging its LATER/LATERIN sweeps to a caller-owned
/// [`Meter`], so the budget spans all rounds of an outer fixed point.
fn run_once_metered(
    f: &mut Function,
    meter: &mut Meter,
    stats: &mut PreStats,
) -> Result<bool, BudgetExceeded> {
    debug_assert!(f.blocks.iter().all(|b| b.phi_count() == 0), "PRE expects φ-free code");
    let splits = split_critical_edges(f);
    stats.edges_split += splits as u64;
    let cfg = Cfg::new(f);
    let universe = ExprUniverse::new(f);
    if universe.is_empty() {
        return Ok(splits > 0);
    }
    let cap = universe.len();
    let lp = LocalPredicates::new(f, &universe);

    // Only disciplined expressions participate (see module docs).
    let mut disciplined = BitSet::new(cap);
    for (e, _) in universe.iter() {
        if universe.is_disciplined(e) {
            disciplined.insert(e.index());
        }
    }
    let n = f.blocks.len();
    // Take the local predicates apart rather than cloning them: PRE owns
    // `lp` and ANTLOC/COMP are masked in place.
    let LocalPredicates { transp, mut antloc, mut comp } = lp;
    for b in 0..n {
        antloc[b].intersect_with(&disciplined);
        comp[b].intersect_with(&disciplined);
    }
    // kill = ¬TRANSP.
    let kill: Vec<BitSet> = transp
        .iter()
        .map(|t| {
            let mut k = BitSet::full(cap);
            k.difference_with(t);
            k
        })
        .collect();

    let avail = solve(&cfg, Direction::Forward, Meet::Intersection, &comp, &kill);
    let antic = solve(&cfg, Direction::Backward, Meet::Intersection, &antloc, &kill);

    // EARLIEST per edge. Rewritten from the textbook form into pure set
    // subtraction so the only allocation is the stored result:
    //   EARLIEST(i,j) = ANTIN(j) − AVOUT(i) − (TRANSP(i) ∩ ANTOUT(i))
    // (the last term is dropped for the entry block, whose AVOUT boundary
    // already handles it).
    let edges = cfg.edges();
    let mut scratch = BitSet::new(cap);
    let mut earliest: Vec<BitSet> = Vec::with_capacity(edges.len());
    for &(i, j) in &edges {
        let mut e = antic.ins[j.index()].clone();
        e.difference_with(&avail.outs[i.index()]);
        if i != BlockId::ENTRY {
            scratch.assign_from(&transp[i.index()]);
            scratch.intersect_with(&antic.outs[i.index()]);
            e.difference_with(&scratch);
        }
        earliest.push(e);
    }

    // Incoming-edge index so the LATERIN meet visits each edge once per
    // sweep instead of scanning the whole edge list per block.
    let mut in_edges: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, &(_, to)) in edges.iter().enumerate() {
        in_edges[to.index()].push(k);
    }

    // LATER / LATERIN to a fixed point. Both systems are recomputed into a
    // single scratch buffer and swapped in on change — no per-iteration
    // allocation.
    let mut laterin: Vec<BitSet> = (0..n)
        .map(|b| if b == 0 { BitSet::new(cap) } else { BitSet::full(cap) })
        .collect();
    let mut later: Vec<BitSet> = earliest.clone();
    loop {
        meter.tick(f)?;
        let mut changed = false;
        for (k, &(i, _)) in edges.iter().enumerate() {
            // LATER(i,j) = EARLIEST(i,j) ∪ (LATERIN(i) − ANTLOC(i))
            scratch.assign_from(&earliest[k]);
            scratch.union_with_minus(&laterin[i.index()], &antloc[i.index()]);
            if scratch != later[k] {
                std::mem::swap(&mut later[k], &mut scratch);
                changed = true;
            }
        }
        for j in 1..n {
            // LATERIN(j) = ∩ over incoming edges (∅ for unreachable blocks).
            match in_edges[j].split_first() {
                None => scratch.clear(),
                Some((&first, rest)) => {
                    scratch.assign_from(&later[first]);
                    for &k in rest {
                        scratch.intersect_with(&later[k]);
                    }
                }
            }
            if scratch != laterin[j] {
                std::mem::swap(&mut laterin[j], &mut scratch);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // INSERT / DELETE.
    let mut any_change = splits > 0;
    let mut insert: Vec<(BlockId, BlockId, Vec<ExprId>)> = Vec::new();
    for (k, &(i, j)) in edges.iter().enumerate() {
        scratch.assign_from(&later[k]);
        scratch.difference_with(&laterin[j.index()]);
        if !scratch.is_empty() {
            insert.push((i, j, scratch.iter().map(|x| ExprId(x as u32)).collect()));
        }
    }

    // Deletions first (they index the original instruction streams).
    for b in 1..n {
        let del = &mut scratch;
        del.assign_from(&antloc[b]);
        del.difference_with(&laterin[b]);
        if del.is_empty() {
            continue;
        }
        let block = &mut f.blocks[b];
        let mut killed = BitSet::new(cap);
        let mut keep: Vec<bool> = vec![true; block.insts.len()];
        for (idx, inst) in block.insts.iter().enumerate() {
            if let Some(e) = universe.id_of_inst(inst) {
                if del.contains(e.index()) && !killed.contains(e.index()) {
                    keep[idx] = false;
                    any_change = true;
                    stats.occurrences_deleted += 1;
                }
            }
            if let Some(d) = inst.dst() {
                for &e in universe.used_by(d) {
                    killed.insert(e.index());
                }
            }
        }
        let mut it = keep.iter();
        block.insts.retain(|_| *it.next().unwrap());
    }

    // Insertions.
    for (i, j, exprs) in insert {
        any_change = true;
        stats.exprs_hoisted += exprs.len() as u64;
        let insts = materialize(&universe, &exprs);
        if cfg.succs(i).len() == 1 {
            let block = &mut f.blocks[i.index()];
            block.insts.extend(insts);
        } else {
            debug_assert_eq!(cfg.preds(j).len(), 1, "critical edges were split");
            let block = &mut f.blocks[j.index()];
            for (k, inst) in insts.into_iter().enumerate() {
                block.insts.insert(k, inst);
            }
        }
    }

    debug_assert!(f.verify().is_ok(), "PRE broke the verifier: {f}");
    Ok(any_change)
}

/// Build the instructions for a set of expressions inserted on one edge,
/// in dependency order (an expression whose operand is another inserted
/// expression's name comes after it).
fn materialize(universe: &ExprUniverse, exprs: &[ExprId]) -> Vec<Inst> {
    let mut pending: Vec<ExprId> = exprs.to_vec();
    let mut out = Vec::with_capacity(pending.len());
    while !pending.is_empty() {
        let pick = pending
            .iter()
            .position(|&e| {
                let ops = universe.key(e).operands();
                !pending.iter().any(|&o| o != e && ops.contains(&universe.name(o)))
            })
            .unwrap_or(0); // cycle cannot arise from hash-table naming
        let e = pending.remove(pick);
        out.push(inst_of(universe, e));
    }
    out
}

fn inst_of(universe: &ExprUniverse, e: ExprId) -> Inst {
    let dst = universe.name(e);
    match *universe.key(e) {
        ExprKey::Bin { op, ty, lhs, rhs } => Inst::Bin { op, ty, dst, lhs, rhs },
        ExprKey::Un { op, ty, src } => Inst::Un { op, ty, dst, src },
        ExprKey::Const(value) => Inst::LoadI { dst, value },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Terminator, Ty};

    /// Count computations of `add x, y` in the whole function.
    fn count_adds(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .count()
    }

    /// The paper's §2 if-join example: x+y on one path and after the join.
    /// PRE must insert on the other path and delete the join's copy.
    #[test]
    fn if_join_partial_redundancy() {
        let mut b = FunctionBuilder::new("j", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let p = b.param(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(p, t, e);
        // then-arm computes x+y into the canonical name n.
        let n = b.new_reg(Ty::Int);
        b.switch_to(t);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        // join recomputes x+y into the same name.
        b.switch_to(j);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.ret(Some(n));
        let mut f = b.finish();
        assert_eq!(count_adds(&f), 2);
        run(&mut f);
        assert!(f.verify().is_ok());
        // Still two adds (one per path), but none at the join: the join's
        // occurrence was deleted and one was inserted on the else path.
        assert_eq!(count_adds(&f), 2);
        let join_adds = f
            .block(j)
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .count();
        assert_eq!(join_adds, 0, "{f}");
    }

    /// The §2 loop example: a loop-invariant x+y is hoisted out. The loop
    /// uses the paper's Figure 3 rotated shape (zero-trip guard at the
    /// top, test at the bottom) — PRE cannot and must not hoist out of a
    /// top-test `while` shape because that would lengthen the zero-trip
    /// path.
    #[test]
    fn hoists_loop_invariant() {
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let i = b.new_reg(Ty::Int);
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(i, z);
        let g = b.bin(BinOp::CmpGe, Ty::Int, i, x);
        b.branch(g, exit, body);
        b.switch_to(body);
        let n = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        let i2 = b.bin(BinOp::Add, Ty::Int, i, n);
        b.copy_to(i, i2);
        let c = b.bin(BinOp::CmpLt, Ty::Int, i, x);
        b.branch(c, body, exit);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        run(&mut f);
        assert!(f.verify().is_ok());
        // x+y no longer computed in the loop body.
        let body_has_xy = f
            .block(body)
            .insts
            .iter()
            .any(|inst| matches!(inst, Inst::Bin { op: BinOp::Add, lhs, rhs, .. } if *lhs == x && *rhs == y));
        assert!(!body_has_xy, "{f}");
        // It is computed exactly once, on the guarded preheader edge (a
        // split landing block between the entry and the body).
        let total_xy = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|inst| matches!(inst, Inst::Bin { op: BinOp::Add, lhs, rhs, .. } if *lhs == x && *rhs == y))
            .count();
        assert_eq!(total_xy, 1, "{f}");
        // And never on the exit path: run both trip counts.
        for xv in [0i64, 5] {
            let mut m = epre_ir::Module::new();
            m.functions.push(f.clone());
            let mut it = epre_interp::Interpreter::new(&m);
            let r = it
                .run("l", &[epre_interp::Value::Int(xv), epre_interp::Value::Int(1)])
                .unwrap();
            assert!(r.is_some());
        }
    }

    /// Fully redundant expression (computed in both arms and after the
    /// join): handled like global CSE — deleted at the join with no
    /// insertion.
    #[test]
    fn full_redundancy_needs_no_insertion() {
        let mut b = FunctionBuilder::new("c", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let p = b.param(Ty::Int);
        let n = b.new_reg(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(p, t, e);
        b.switch_to(t);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.jump(j);
        b.switch_to(e);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.jump(j);
        b.switch_to(j);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.ret(Some(n));
        let mut f = b.finish();
        assert_eq!(count_adds(&f), 3);
        run(&mut f);
        assert_eq!(count_adds(&f), 2, "{f}");
    }

    /// PRE must NOT hoist an expression past a redefinition of its operand.
    #[test]
    fn respects_kills() {
        // x = ...; n = x + y; x = 0; n2 = x + y — the second x+y (same
        // lexical names) is NOT redundant because x changed.
        let mut b = FunctionBuilder::new("k", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let n = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        let z = b.loadi(Const::Int(0));
        b.copy_to(x, z);
        let n2 = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n2, lhs: x, rhs: y });
        let s = b.bin(BinOp::Mul, Ty::Int, n, n2);
        b.ret(Some(s));
        let mut f = b.finish();
        let before = f.static_op_count();
        run(&mut f);
        assert_eq!(f.static_op_count(), before, "nothing to remove");
    }

    /// Undisciplined expressions (same computation, different targets) are
    /// left alone — the §2.2 example before GVN renaming.
    #[test]
    fn skips_undisciplined_names() {
        let mut b = FunctionBuilder::new("u", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let p = b.param(Ty::Int);
        let t = b.new_block();
        let j = b.new_block();
        b.branch(p, t, j);
        b.switch_to(t);
        let _n1 = b.bin(BinOp::Add, Ty::Int, x, y); // fresh name
        b.jump(j);
        b.switch_to(j);
        let n2 = b.bin(BinOp::Add, Ty::Int, x, y); // different fresh name
        b.ret(Some(n2));
        let mut f = b.finish();
        let before = count_adds(&f);
        run(&mut f);
        assert_eq!(count_adds(&f), before, "undisciplined: PRE must not touch");
    }

    /// PRE never lengthens any path: dynamic counts do not increase.
    #[test]
    fn never_lengthens_paths() {
        // The §2 if-join shape, measured with the interpreter on both
        // branch outcomes.
        let build = || {
            let mut b = FunctionBuilder::new("m", Some(Ty::Int));
            let x = b.param(Ty::Int);
            let y = b.param(Ty::Int);
            let p = b.param(Ty::Int);
            let n = b.new_reg(Ty::Int);
            let t = b.new_block();
            let e = b.new_block();
            let j = b.new_block();
            b.branch(p, t, e);
            b.switch_to(t);
            b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
            b.jump(j);
            b.switch_to(e);
            b.jump(j);
            b.switch_to(j);
            b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
            b.ret(Some(n));
            b.finish()
        };
        let mut opt = build();
        run(&mut opt);
        let orig = build();
        for p in [0i64, 1] {
            let mut m1 = epre_ir::Module::new();
            m1.functions.push(orig.clone());
            let mut m2 = epre_ir::Module::new();
            m2.functions.push(opt.clone());
            let args =
                [epre_interp::Value::Int(3), epre_interp::Value::Int(4), epre_interp::Value::Int(p)];
            let mut i1 = epre_interp::Interpreter::new(&m1);
            let mut i2 = epre_interp::Interpreter::new(&m2);
            let r1 = i1.run("m", &args).unwrap();
            let r2 = i2.run("m", &args).unwrap();
            assert_eq!(r1, r2);
            assert!(i2.counts().total <= i1.counts().total, "path lengthened for p={p}");
        }
    }

    /// Expression anticipated from the entry is placed once, not once per
    /// use (checks the LATER postponement chain and the entry special
    /// case in EARLIEST).
    #[test]
    fn entry_anticipated_expression_single_placement() {
        let mut b = FunctionBuilder::new("e", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let n = b.new_reg(Ty::Int);
        let b1 = b.new_block();
        let b2 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.jump(b2);
        b.switch_to(b2);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.ret(Some(n));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(count_adds(&f), 1, "{f}");
        // And it is placed no earlier than needed: lazy placement keeps it
        // in b1 (the first use), not hoisted to the entry block.
        assert_eq!(
            f.block(b1).insts.len() + f.blocks[0].insts.len(),
            1,
            "exactly one computation at or before first use: {f}"
        );
        let _ = Terminator::Return { value: None };
    }
}
