//! Copy coalescing — "the coalescing phase of a Chaitin-style global
//! register allocator" (§3.2, §4.1, reference \[6\]).
//!
//! The paper's pipeline creates many copies (assignments, φ-destruction,
//! the variable names targeted during reassociation); coalescing removes
//! every copy whose source and destination do not interfere, by merging
//! the two names. Figure 10 of the paper shows the effect on the running
//! example: all copies disappear.
//!
//! Interference is the classic definition-against-live rule, computed from
//! block liveness with a backwards scan; for a copy `d <- s`, `s` is
//! excluded from the interference of `d` (they may share a register if
//! nothing else conflicts).
//!
//! # Incremental interference representation
//!
//! The original formulation merged exactly one copy per round and then
//! recomputed liveness plus an all-pairs `HashSet<(Reg, Reg)>` graph from
//! scratch — quadratic rebuilds that dominated the whole pipeline. This
//! implementation builds the graph **once per batch** as bitset adjacency
//! rows ([`epre_analysis::BitSet`], one row per register index) and keeps
//! **union-find copy classes** so every non-interfering copy found in one
//! scan merges in the same round:
//!
//! * on a merge, the two adjacency rows are unioned and the class
//!   representative remapped — no liveness recomputation. The union
//!   over-approximates true post-merge interference (removing a copy only
//!   ever *shrinks* live ranges), so merging eagerly against the updated
//!   graph is conservative and therefore sound;
//! * the **invalidation condition** is "this batch merged at least one
//!   copy": the rename sweep edits instructions, so the cached liveness
//!   and expression universe are dropped and the next batch rebuilds a
//!   fresh, exact graph. A batch that merges nothing is a fixed point
//!   (unions only ever *add* conservative edges, so a rescan of the same
//!   graph cannot find new candidates) and terminates the pass;
//! * cooperative [`Budget`] checkpoints fire once per merged **batch**,
//!   not per single-copy round — the unit of progress is now "one scan
//!   plus one rename sweep";
//! * the graph is **candidate-restricted**: only registers appearing as an
//!   operand of some copy get adjacency edges, because those are the only
//!   nodes ever queried (class representatives are always copy operands).
//!   The def-against-live inner loop visits live *candidates*, not all
//!   live registers, and a function with no copies proves its fixed point
//!   without computing liveness at all.
//!
//! Liveness itself is served by the [`AnalysisCache`] (a quiesced `dce`
//! immediately before coalescing leaves a valid entry behind, so the first
//! batch usually rides a cache hit).

use epre_analysis::{AnalysisCache, BitSet, Liveness};
use epre_ir::{Function, Inst, Reg};

use crate::budget::{Budget, BudgetExceeded};
use epre_telemetry::PassCounters;

/// What one coalescing invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Trivial `d <- d` self-copies dropped up front.
    pub self_copies_removed: u64,
    /// Non-trivial copies merged away (possibly many per round).
    pub copies_coalesced: u64,
    /// Interference scans performed, including the final empty one that
    /// proves the fixed point. Always ≥ 1 per invocation.
    pub rounds: u64,
    /// Rounds whose liveness had to be computed fresh (the rest were
    /// served from the [`AnalysisCache`]).
    pub liveness_builds: u64,
}

/// Run coalescing rounds until no copy can be merged. Returns true if any
/// copy was removed.
pub fn run(f: &mut Function) -> bool {
    run_with_cache(f, &mut AnalysisCache::new())
}

/// [`run`] against a caller-owned [`AnalysisCache`]. Coalescing renames
/// registers and deletes copies but never touches block structure: every
/// round's liveness shares one cached CFG, which also survives the pass.
/// The renames make any cached expression universe and liveness stale, so
/// a changing run invalidates both before returning.
pub fn run_with_cache(f: &mut Function, cache: &mut AnalysisCache) -> bool {
    match run_budgeted(f, cache, &Budget::UNLIMITED) {
        Ok(any) => any,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`run_with_cache`] under a resource [`Budget`]: one cooperative
/// checkpoint per merged batch (each batch scans the function once,
/// merges every non-interfering copy it finds, and applies one rename
/// sweep — batches are the unit of progress, and of divergence if a
/// broken interference rule kept re-introducing copies).
///
/// # Errors
/// [`BudgetExceeded`] when a batch starts over budget; merges already
/// performed stay performed (callers needing atomicity run a clone).
pub fn run_budgeted(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
) -> Result<bool, BudgetExceeded> {
    run_budgeted_stats(f, cache, budget)
        .map(|s| s.self_copies_removed + s.copies_coalesced > 0)
}

/// Instrumented entry point for the pipeline: [`run_budgeted_stats`] with
/// the stats folded into `counters`.
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_counted(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
    counters: &mut PassCounters,
) -> Result<bool, BudgetExceeded> {
    let stats = run_budgeted_stats(f, cache, budget)?;
    counters.add("copies_coalesced", stats.copies_coalesced);
    counters.add("self_copies_removed", stats.self_copies_removed);
    counters.add("rounds", stats.rounds);
    counters.add("liveness_builds", stats.liveness_builds);
    Ok(stats.self_copies_removed + stats.copies_coalesced > 0)
}

/// [`run_budgeted`], additionally reporting what the invocation did as a
/// [`CoalesceStats`].
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_budgeted_stats(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
) -> Result<CoalesceStats, BudgetExceeded> {
    debug_assert!(f.blocks.iter().all(|b| b.phi_count() == 0), "coalesce expects φ-free code");
    let mut meter = budget.start(f);
    let mut stats = CoalesceStats::default();
    // Drop trivial self-copies first.
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts.retain(|i| !matches!(i, Inst::Copy { dst, src } if dst == src));
        stats.self_copies_removed += (before - b.insts.len()) as u64;
    }
    if stats.self_copies_removed > 0 {
        // A deleted `x <- x` was both a def and a use of `x`: the universe
        // and upward-exposed-use sets may have changed.
        cache.invalidate_universe();
        cache.invalidate_liveness();
    }
    loop {
        meter.tick(f)?;
        stats.rounds += 1;
        let merged = coalesce_batch(f, cache, &mut stats);
        if merged == 0 {
            break;
        }
        stats.copies_coalesced += merged;
        // Invalidation condition: the rename sweep rewrote instructions,
        // so the batch's conservative graph no longer matches a fresh
        // computation. Drop liveness and universe; the next batch rebuilds
        // an exact graph and either finds the copies the conservative
        // unions suppressed or proves the fixed point.
        cache.invalidate_universe();
        cache.invalidate_liveness();
    }
    Ok(stats)
}

/// Union-find over register indices tracking which classes contain a
/// parameter. Path-halving keeps finds near-constant.
struct CopyClasses {
    parent: Vec<u32>,
    is_param: Vec<bool>,
}

impl CopyClasses {
    fn new(f: &Function) -> Self {
        let n = f.reg_count();
        let mut classes =
            CopyClasses { parent: (0..n as u32).collect(), is_param: vec![false; n] };
        for p in &f.params {
            classes.is_param[p.index()] = true;
        }
        classes
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] as usize != i {
            let grand = self.parent[self.parent[i] as usize];
            self.parent[i] = grand;
            i = grand as usize;
        }
        i
    }

    fn union_into(&mut self, keep: usize, gone: usize) {
        self.parent[gone] = keep as u32;
        if self.is_param[gone] {
            self.is_param[keep] = true;
        }
    }
}

/// The registers that appear as an operand of some non-self copy: the only
/// nodes the interference graph is ever queried about. Class
/// representatives stay inside this set (a merge keeps one of the two copy
/// operands), so [`build_interference`] can skip edges touching any other
/// register entirely.
fn copy_candidates(f: &Function) -> BitSet {
    let mut candidates = BitSet::new(f.reg_count());
    for block in &f.blocks {
        for inst in &block.insts {
            if let Inst::Copy { dst, src } = inst {
                if dst != src {
                    candidates.insert(dst.index());
                    candidates.insert(src.index());
                }
            }
        }
    }
    candidates
}

/// One batch: build the bitset interference graph from (cached) liveness,
/// merge every non-interfering copy in a single scan — updating the graph
/// by unioning adjacency rows — then apply all merges in one rename sweep.
/// Returns the number of copies merged.
fn coalesce_batch(f: &mut Function, cache: &mut AnalysisCache, stats: &mut CoalesceStats) -> u64 {
    let candidates = copy_candidates(f);
    if candidates.is_empty() {
        // No copies left: the fixed point is proven without consulting
        // liveness at all.
        return 0;
    }
    if !cache.has_liveness() {
        stats.liveness_builds += 1;
    }
    let mut rows = {
        let live = cache.liveness(f);
        build_interference(f, live, &candidates)
    };
    let mut classes = CopyClasses::new(f);
    let mut merged = 0u64;

    for block in &f.blocks {
        for inst in &block.insts {
            let Inst::Copy { dst, src } = inst else { continue };
            let d = classes.find(dst.index());
            let s = classes.find(src.index());
            if d == s {
                continue;
            }
            if f.ty_of(Reg(d as u32)) != f.ty_of(Reg(s as u32)) {
                continue;
            }
            // Two parameters hold distinct incoming values: never merge.
            if classes.is_param[d] && classes.is_param[s] {
                continue;
            }
            if rows[d].contains(s) {
                continue;
            }
            // Keep parameter registers as the surviving name; otherwise
            // the source survives (matching the reference coalescer).
            let (keep, gone) = if classes.is_param[d] { (d, s) } else { (s, d) };
            classes.union_into(keep, gone);
            // Union the adjacency rows: the merged class conservatively
            // interferes with both neighborhoods. `gone`'s row cannot
            // contain `keep` (they were just proven non-interfering).
            let row_gone = std::mem::replace(&mut rows[gone], BitSet::new(0));
            for n in row_gone.iter() {
                rows[n].remove(gone);
                if n != keep {
                    rows[n].insert(keep);
                    rows[keep].insert(n);
                }
            }
            merged += 1;
        }
    }

    if merged > 0 {
        // One rename sweep applies every merge of the batch; copies whose
        // operands landed in the same class become self-copies and die.
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                inst.map_uses(|r| Reg(classes.find(r.index()) as u32));
                if let Some(d) = inst.dst() {
                    let nd = classes.find(d.index()) as u32;
                    if nd != d.0 {
                        inst.set_dst(Reg(nd));
                    }
                }
            }
            block.term.map_uses(|r| Reg(classes.find(r.index()) as u32));
            block.insts.retain(|i| !matches!(i, Inst::Copy { dst, src } if dst == src));
        }
    }
    merged
}

/// Definition-against-live interference as bitset adjacency rows (one row
/// per register index, capacity `f.reg_count()`), **restricted to the
/// candidate registers** — the copy operands the graph is ever queried
/// about. The backward walk tracks only the live candidates (`live_now` is
/// the true live set intersected with `candidates`), and a definition of a
/// non-candidate register records no edges: such a register can never be a
/// class representative, and row unions on merge only propagate candidate
/// neighborhoods, so the restricted graph answers every query the full one
/// would. This turns the per-definition inner loop from O(live registers)
/// into O(live *copy operands*) — usually a handful — which is what moved
/// the pass off the top of the profile.
fn build_interference(f: &Function, live: &Liveness, candidates: &BitSet) -> Vec<BitSet> {
    let cap = f.reg_count();
    let mut rows = vec![BitSet::new(cap); cap];
    let mut live_now = BitSet::new(cap);
    for (bid, block) in f.iter_blocks() {
        live_now.assign_from(&live.live_out[bid.index()]);
        live_now.intersect_with(candidates);
        for u in block.term.uses() {
            if candidates.contains(u.index()) {
                live_now.insert(u.index());
            }
        }
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.dst() {
                let di = d.index();
                if candidates.contains(di) {
                    let exclude = match inst {
                        Inst::Copy { src, .. } => src.index(),
                        _ => usize::MAX,
                    };
                    for l in live_now.iter() {
                        if l != di && l != exclude {
                            rows[di].insert(l);
                            rows[l].insert(di);
                        }
                    }
                }
                live_now.remove(di);
            }
            for u in inst.uses() {
                if candidates.contains(u.index()) {
                    live_now.insert(u.index());
                }
            }
        }
    }
    // Parameters are all "defined" simultaneously at the entry: pairwise
    // edges plus edges against everything live into the entry block.
    // Hoisted out of the per-block scan — what the old per-block version
    // saw as `live_now` after walking block 0 is exactly `live_in[0]` —
    // and restricted to candidates like every other edge.
    for (i, &p) in f.params.iter().enumerate() {
        let pi = p.index();
        if !candidates.contains(pi) {
            continue;
        }
        for &q in &f.params[i + 1..] {
            if candidates.contains(q.index()) {
                rows[pi].insert(q.index());
                rows[q.index()].insert(pi);
            }
        }
        for l in live.live_in[0].iter() {
            if l != pi && candidates.contains(l) {
                rows[pi].insert(l);
                rows[l].insert(pi);
            }
        }
    }
    rows
}

/// Count the copies a correct coalescer must have merged: non-self,
/// type-compatible, not parameter-vs-parameter, and with non-interfering
/// operands under a fresh liveness computation. The pass's fixed point
/// leaves exactly zero of these (the property the differential campaign
/// asserts suite-wide).
pub fn coalescable_copies(f: &Function) -> usize {
    let cfg = epre_cfg::Cfg::new(f);
    let live = Liveness::new(f, &cfg);
    let candidates = copy_candidates(f);
    let rows = build_interference(f, &live, &candidates);
    let mut is_param = vec![false; f.reg_count()];
    for p in &f.params {
        is_param[p.index()] = true;
    }
    f.blocks
        .iter()
        .flat_map(|b| &b.insts)
        .filter(|i| match i {
            Inst::Copy { dst, src } => {
                dst != src
                    && f.ty_of(*dst) == f.ty_of(*src)
                    && !(is_param[dst.index()] && is_param[src.index()])
                    && !rows[dst.index()].contains(src.index())
            }
            _ => false,
        })
        .count()
}

pub mod reference {
    //! The pre-incremental coalescer — one copy merged per round, full
    //! liveness plus an all-pairs `HashSet<(Reg, Reg)>` interference
    //! rebuild between rounds — retained verbatim as the differential
    //! testing reference for the incremental implementation above.

    use std::collections::HashSet;

    use epre_analysis::{AnalysisCache, Liveness};
    use epre_ir::{Function, Inst, Reg};

    /// Run reference coalescing rounds until no copy can be merged.
    /// Returns true if any copy was removed.
    pub fn run(f: &mut Function) -> bool {
        run_with_cache(f, &mut AnalysisCache::new())
    }

    /// [`run`] with a caller-owned cache (CFG shared across rounds;
    /// universe and liveness invalidated when the function changed).
    pub fn run_with_cache(f: &mut Function, cache: &mut AnalysisCache) -> bool {
        let mut any = false;
        for b in &mut f.blocks {
            let before = b.insts.len();
            b.insts.retain(|i| !matches!(i, Inst::Copy { dst, src } if dst == src));
            any |= b.insts.len() != before;
        }
        while coalesce_round(f, cache) {
            any = true;
        }
        if any {
            cache.invalidate_universe();
            cache.invalidate_liveness();
        }
        any
    }

    fn coalesce_round(f: &mut Function, cache: &mut AnalysisCache) -> bool {
        let live = Liveness::new(f, cache.cfg(f));
        let interference = build_interference(f, &live);

        // Find one coalescable copy per round (liveness is invalidated by
        // the merge, so a fresh round recomputes it).
        let params: HashSet<Reg> = f.params.iter().copied().collect();
        let mut target: Option<(Reg, Reg)> = None; // (kept, merged-away)
        'outer: for block in &f.blocks {
            for inst in &block.insts {
                if let Inst::Copy { dst, src } = inst {
                    if dst == src {
                        continue;
                    }
                    if f.ty_of(*dst) != f.ty_of(*src) {
                        continue;
                    }
                    if interference.contains(&key(*dst, *src)) {
                        continue;
                    }
                    let (keep, gone) = match (params.contains(dst), params.contains(src)) {
                        (true, true) => continue,
                        (true, false) => (*dst, *src),
                        _ => (*src, *dst),
                    };
                    target = Some((keep, gone));
                    break 'outer;
                }
            }
        }

        let Some((keep, gone)) = target else { return false };
        for block in &mut f.blocks {
            for inst in &mut block.insts {
                inst.map_uses(|r| if r == gone { keep } else { r });
                if inst.dst() == Some(gone) {
                    inst.set_dst(keep);
                }
            }
            block.term.map_uses(|r| if r == gone { keep } else { r });
            block.insts.retain(|i| !matches!(i, Inst::Copy { dst, src } if dst == src));
        }
        true
    }

    fn key(a: Reg, b: Reg) -> (Reg, Reg) {
        if a < b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Definition-against-live interference over all blocks.
    fn build_interference(f: &Function, live: &Liveness) -> HashSet<(Reg, Reg)> {
        let mut edges = HashSet::new();
        for (bid, block) in f.iter_blocks() {
            let mut live_now: HashSet<Reg> =
                live.live_out[bid.index()].iter().map(|i| Reg(i as u32)).collect();
            for u in block.term.uses() {
                live_now.insert(u);
            }
            for inst in block.insts.iter().rev() {
                if let Some(d) = inst.dst() {
                    let exclude = match inst {
                        Inst::Copy { src, .. } => Some(*src),
                        _ => None,
                    };
                    for &l in &live_now {
                        if l != d && Some(l) != exclude {
                            edges.insert(key(d, l));
                        }
                    }
                    live_now.remove(&d);
                }
                for u in inst.uses() {
                    live_now.insert(u);
                }
            }
            // Parameters are all "defined" simultaneously at the entry.
            if bid.index() == 0 {
                for (i, &p) in f.params.iter().enumerate() {
                    for &q in &f.params[i + 1..] {
                        edges.insert(key(p, q));
                    }
                    for &l in &live_now {
                        if l != p {
                            edges.insert(key(p, l));
                        }
                    }
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    #[test]
    fn merges_simple_copy() {
        // t = x + x; v = copy t; return v  — the copy disappears.
        let mut b = FunctionBuilder::new("c", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let t = b.bin(BinOp::Add, Ty::Int, x, x);
        let v = b.copy(t);
        b.ret(Some(v));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.inst_count(), 1);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn keeps_interfering_copy() {
        // v = copy x; x = x + 1; return v + x — v and x interfere.
        let mut b = FunctionBuilder::new("k", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let v = b.copy(x);
        let one = b.loadi(Const::Int(1));
        let x2 = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: x2, lhs: x, rhs: one });
        b.copy_to(x, x2);
        let s = b.bin(BinOp::Add, Ty::Int, v, x);
        b.ret(Some(s));
        let mut f = b.finish();
        let before_copies =
            f.blocks[0].insts.iter().filter(|i| matches!(i, Inst::Copy { .. })).count();
        assert_eq!(before_copies, 2);
        run(&mut f);
        // v = copy x must stay (x redefined while v lives); x = copy x2 can
        // merge (x2 dies at the copy... x2 defined while x lives? x is used
        // after, via s = v + x — but that is the NEW x. x's old value dies
        // at the copy; x2 <-> x do not interfere).
        let after_copies =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Copy { .. })).count();
        assert_eq!(after_copies, 1);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn never_merges_two_params() {
        let mut b = FunctionBuilder::new("p", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        b.copy_to(x, y); // x = y, then return x
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        // The copy must survive: params cannot merge.
        assert_eq!(f.inst_count(), 1);
        assert_eq!(f.params, vec![x, y]);
    }

    #[test]
    fn type_mismatch_blocks_merge() {
        let mut b = FunctionBuilder::new("t", Some(Ty::Int));
        let x = b.param(Ty::Int);
        b.ret(Some(x));
        let mut f = b.finish();
        // Hand-build an ill-typed copy is rejected by the verifier, so just
        // check run() is a no-op on a copy-free function.
        let before = f.clone();
        run(&mut f);
        assert_eq!(f, before);
    }

    #[test]
    fn removes_self_copies() {
        let mut b = FunctionBuilder::new("s", Some(Ty::Int));
        let x = b.param(Ty::Int);
        b.copy_to(x, x);
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.inst_count(), 0);
    }

    #[test]
    fn coalesces_across_blocks() {
        // Paper Figure 9 -> 10: copies feeding a loop variable merge away.
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let i = b.new_reg(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(i, z);
        b.jump(head);
        b.switch_to(head);
        let c = b.bin(BinOp::CmpLt, Ty::Int, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.loadi(Const::Int(1));
        let i2 = b.bin(BinOp::Add, Ty::Int, i, one);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        run(&mut f);
        // i2/i copy merges (i's old value dead at the copy); z/i copy
        // merges as well once i2 is renamed.
        let copies =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Copy { .. })).count();
        assert_eq!(copies, 0);
        assert!(f.verify().is_ok());
    }

    /// Two params + a long-lived temp: pins the hoisted entry-block
    /// parameter handling (param-vs-param and param-vs-live edges built
    /// outside the per-block scan) against the reference coalescer.
    #[test]
    fn entry_param_edges_two_params_and_long_lived_temp() {
        fn build() -> Function {
            let mut b = FunctionBuilder::new("pe", Some(Ty::Int));
            let x = b.param(Ty::Int);
            let y = b.param(Ty::Int);
            // t is live from the entry to the last add: a long-lived temp
            // defined while both params are live (def-against-live edges
            // t–x and t–y).
            let t = b.loadi(Const::Int(5));
            b.copy_to(x, y); // param-vs-param: must never merge
            let a = b.bin(BinOp::Add, Ty::Int, x, y);
            let v = b.copy(t); // t dies later; v–t may merge
            let w = b.bin(BinOp::Add, Ty::Int, a, v);
            let r = b.bin(BinOp::Add, Ty::Int, w, t);
            b.ret(Some(r));
            b.finish()
        }
        let mut f = build();
        let mut fr = build();
        let params = f.params.clone();
        run(&mut f);
        reference::run(&mut fr);
        assert_eq!(f, fr, "incremental and reference coalescers must agree");
        // The param-param copy survives, params keep their registers.
        let copies =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Copy { .. })).count();
        assert_eq!(copies, 1);
        assert_eq!(f.params, params);
        // Fixed point: nothing coalescable remains.
        assert_eq!(coalescable_copies(&f), 0);
        assert!(f.verify().is_ok());
    }

    /// The batch coalescer merges a whole copy chain in few rounds and
    /// reports round/liveness-build counts.
    #[test]
    fn batch_merges_copy_chain_and_reports_rounds() {
        let mut b = FunctionBuilder::new("chain", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let t = b.bin(BinOp::Add, Ty::Int, x, x);
        let c1 = b.copy(t);
        let c2 = b.copy(c1);
        let c3 = b.copy(c2);
        let c4 = b.copy(c3);
        b.ret(Some(c4));
        let mut f = b.finish();
        let mut cache = AnalysisCache::new();
        let stats = run_budgeted_stats(&mut f, &mut cache, &Budget::UNLIMITED).unwrap();
        assert_eq!(stats.copies_coalesced, 4);
        // All four merge in the first batch (a chain never interferes),
        // plus one empty scan proving the fixed point.
        assert_eq!(stats.rounds, 2);
        assert!(stats.liveness_builds <= stats.rounds);
        assert!(stats.rounds >= 1);
        assert_eq!(f.inst_count(), 1);
        assert!(f.verify().is_ok());
    }

    /// The suite-wide property, in miniature: after the pass, zero
    /// coalescable copies remain.
    #[test]
    fn fixed_point_leaves_no_coalescable_copies() {
        let mut b = FunctionBuilder::new("fp", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let v = b.copy(x);
        let one = b.loadi(Const::Int(1));
        let x2 = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: x2, lhs: x, rhs: one });
        b.copy_to(x, x2);
        let s = b.bin(BinOp::Add, Ty::Int, v, x);
        b.ret(Some(s));
        let mut f = b.finish();
        assert!(coalescable_copies(&f) > 0);
        run(&mut f);
        assert_eq!(coalescable_copies(&f), 0);
    }
}
