//! Copy coalescing — "the coalescing phase of a Chaitin-style global
//! register allocator" (§3.2, §4.1, reference \[6\]).
//!
//! The paper's pipeline creates many copies (assignments, φ-destruction,
//! the variable names targeted during reassociation); coalescing removes
//! every copy whose source and destination do not interfere, by merging
//! the two names. Figure 10 of the paper shows the effect on the running
//! example: all copies disappear.
//!
//! Interference is the classic definition-against-live rule, computed from
//! block liveness with a backwards scan; for a copy `d <- s`, `s` is
//! excluded from the interference of `d` (they may share a register if
//! nothing else conflicts).

use std::collections::HashSet;

use epre_analysis::{AnalysisCache, Liveness};
use epre_ir::{Function, Inst, Reg};

use crate::budget::{Budget, BudgetExceeded};
use epre_telemetry::PassCounters;

/// What one coalescing invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Trivial `d <- d` self-copies dropped up front.
    pub self_copies_removed: u64,
    /// Non-trivial copies merged away (one per coalescing round).
    pub copies_coalesced: u64,
}

/// Run coalescing rounds until no copy can be merged. Returns true if any
/// copy was removed.
pub fn run(f: &mut Function) -> bool {
    run_with_cache(f, &mut AnalysisCache::new())
}

/// [`run`] against a caller-owned [`AnalysisCache`]. Coalescing renames
/// registers and deletes copies but never touches block structure: every
/// round's liveness shares one cached CFG, which also survives the pass.
/// The renames make any cached expression universe stale, so a changing
/// run invalidates it before returning.
pub fn run_with_cache(f: &mut Function, cache: &mut AnalysisCache) -> bool {
    match run_budgeted(f, cache, &Budget::UNLIMITED) {
        Ok(any) => any,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`run_with_cache`] under a resource [`Budget`]: one cooperative
/// checkpoint per coalescing round (each round merges one copy and
/// recomputes liveness, so rounds are the unit of progress — and of
/// divergence, if a broken interference rule kept re-introducing copies).
///
/// # Errors
/// [`BudgetExceeded`] when a round starts over budget; merges already
/// performed stay performed (callers needing atomicity run a clone).
pub fn run_budgeted(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
) -> Result<bool, BudgetExceeded> {
    run_budgeted_stats(f, cache, budget)
        .map(|s| s.self_copies_removed + s.copies_coalesced > 0)
}

/// Instrumented entry point for the pipeline: [`run_budgeted_stats`] with
/// the stats folded into `counters`.
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_counted(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
    counters: &mut PassCounters,
) -> Result<bool, BudgetExceeded> {
    let stats = run_budgeted_stats(f, cache, budget)?;
    counters.add("copies_coalesced", stats.copies_coalesced);
    counters.add("self_copies_removed", stats.self_copies_removed);
    Ok(stats.self_copies_removed + stats.copies_coalesced > 0)
}

/// [`run_budgeted`], additionally reporting what the invocation did as a
/// [`CoalesceStats`].
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_budgeted_stats(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
) -> Result<CoalesceStats, BudgetExceeded> {
    debug_assert!(f.blocks.iter().all(|b| b.phi_count() == 0), "coalesce expects φ-free code");
    let mut meter = budget.start(f);
    let mut stats = CoalesceStats::default();
    // Drop trivial self-copies first.
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts.retain(|i| !matches!(i, Inst::Copy { dst, src } if dst == src));
        stats.self_copies_removed += (before - b.insts.len()) as u64;
    }
    loop {
        meter.tick(f)?;
        if !coalesce_round(f, cache) {
            break;
        }
        stats.copies_coalesced += 1;
    }
    if stats.self_copies_removed + stats.copies_coalesced > 0 {
        cache.invalidate_universe();
    }
    Ok(stats)
}

fn coalesce_round(f: &mut Function, cache: &mut AnalysisCache) -> bool {
    let live = Liveness::new(f, cache.cfg(f));
    let interference = build_interference(f, &live);

    // Find one coalescable copy per round (liveness is invalidated by the
    // merge, so a fresh round recomputes it).
    let params: HashSet<Reg> = f.params.iter().copied().collect();
    let mut target: Option<(Reg, Reg)> = None; // (kept, merged-away)
    'outer: for block in &f.blocks {
        for inst in &block.insts {
            if let Inst::Copy { dst, src } = inst {
                if dst == src {
                    continue;
                }
                if f.ty_of(*dst) != f.ty_of(*src) {
                    continue;
                }
                if interference.contains(&key(*dst, *src)) {
                    continue;
                }
                // Keep parameter registers as the surviving name; if both
                // are parameters they cannot merge (distinct incoming
                // values).
                let (keep, gone) = match (params.contains(dst), params.contains(src)) {
                    (true, true) => continue,
                    (true, false) => (*dst, *src),
                    _ => (*src, *dst),
                };
                target = Some((keep, gone));
                break 'outer;
            }
        }
    }

    let Some((keep, gone)) = target else { return false };
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            inst.map_uses(|r| if r == gone { keep } else { r });
            if inst.dst() == Some(gone) {
                inst.set_dst(keep);
            }
        }
        block.term.map_uses(|r| if r == gone { keep } else { r });
        block.insts.retain(|i| !matches!(i, Inst::Copy { dst, src } if dst == src));
    }
    true
}

fn key(a: Reg, b: Reg) -> (Reg, Reg) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Definition-against-live interference over all blocks.
fn build_interference(f: &Function, live: &Liveness) -> HashSet<(Reg, Reg)> {
    let mut edges = HashSet::new();
    for (bid, block) in f.iter_blocks() {
        let mut live_now: HashSet<Reg> = live.live_out[bid.index()]
            .iter()
            .map(|i| Reg(i as u32))
            .collect();
        for u in block.term.uses() {
            live_now.insert(u);
        }
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.dst() {
                let exclude = match inst {
                    Inst::Copy { src, .. } => Some(*src),
                    _ => None,
                };
                for &l in &live_now {
                    if l != d && Some(l) != exclude {
                        edges.insert(key(d, l));
                    }
                }
                live_now.remove(&d);
            }
            for u in inst.uses() {
                live_now.insert(u);
            }
        }
        // Parameters are all "defined" simultaneously at the entry.
        if bid.index() == 0 {
            for (i, &p) in f.params.iter().enumerate() {
                for &q in &f.params[i + 1..] {
                    edges.insert(key(p, q));
                }
                for &l in &live_now {
                    if l != p {
                        edges.insert(key(p, l));
                    }
                }
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    #[test]
    fn merges_simple_copy() {
        // t = x + x; v = copy t; return v  — the copy disappears.
        let mut b = FunctionBuilder::new("c", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let t = b.bin(BinOp::Add, Ty::Int, x, x);
        let v = b.copy(t);
        b.ret(Some(v));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.inst_count(), 1);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn keeps_interfering_copy() {
        // v = copy x; x = x + 1; return v + x — v and x interfere.
        let mut b = FunctionBuilder::new("k", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let v = b.copy(x);
        let one = b.loadi(Const::Int(1));
        let x2 = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: x2, lhs: x, rhs: one });
        b.copy_to(x, x2);
        let s = b.bin(BinOp::Add, Ty::Int, v, x);
        b.ret(Some(s));
        let mut f = b.finish();
        let before_copies =
            f.blocks[0].insts.iter().filter(|i| matches!(i, Inst::Copy { .. })).count();
        assert_eq!(before_copies, 2);
        run(&mut f);
        // v = copy x must stay (x redefined while v lives); x = copy x2 can
        // merge (x2 dies at the copy... x2 defined while x lives? x is used
        // after, via s = v + x — but that is the NEW x. x's old value dies
        // at the copy; x2 <-> x do not interfere).
        let after_copies =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Copy { .. })).count();
        assert_eq!(after_copies, 1);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn never_merges_two_params() {
        let mut b = FunctionBuilder::new("p", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        b.copy_to(x, y); // x = y, then return x
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        // The copy must survive: params cannot merge.
        assert_eq!(f.inst_count(), 1);
        assert_eq!(f.params, vec![x, y]);
    }

    #[test]
    fn type_mismatch_blocks_merge() {
        let mut b = FunctionBuilder::new("t", Some(Ty::Int));
        let x = b.param(Ty::Int);
        b.ret(Some(x));
        let mut f = b.finish();
        // Hand-build an ill-typed copy is rejected by the verifier, so just
        // check run() is a no-op on a copy-free function.
        let before = f.clone();
        run(&mut f);
        assert_eq!(f, before);
    }

    #[test]
    fn removes_self_copies() {
        let mut b = FunctionBuilder::new("s", Some(Ty::Int));
        let x = b.param(Ty::Int);
        b.copy_to(x, x);
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.inst_count(), 0);
    }

    #[test]
    fn coalesces_across_blocks() {
        // Paper Figure 9 -> 10: copies feeding a loop variable merge away.
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let i = b.new_reg(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(i, z);
        b.jump(head);
        b.switch_to(head);
        let c = b.bin(BinOp::CmpLt, Ty::Int, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.loadi(Const::Int(1));
        let i2 = b.bin(BinOp::Add, Ty::Int, i, one);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        run(&mut f);
        // i2/i copy merges (i's old value dead at the copy); z/i copy
        // merges as well once i2 is renamed.
        let copies =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Copy { .. })).count();
        assert_eq!(copies, 0);
        assert!(f.verify().is_ok());
    }
}
