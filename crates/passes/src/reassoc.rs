//! Global reassociation (§3.1) — the paper's headline enabling
//! transformation, in its three steps:
//!
//! 1. **Compute a rank for every expression.** On pruned SSA (built with
//!    copy folding), walk the CFG in reverse postorder giving block *i*
//!    rank *i*; constants rank 0; φ-results, parameters, load results and
//!    call results take their block's rank; every other expression takes
//!    the maximum of its operands' ranks. Loop-invariant values end up
//!    with lower ranks than loop-variant ones, and deeper loops give
//!    higher ranks.
//! 2. **Propagate expressions forward to their uses.** φ-nodes are
//!    replaced by copies in (split) predecessor blocks; then every *sink*
//!    — φ-input copy, branch condition, call argument, store address and
//!    value, load address, return value — gets the complete expression
//!    tree of its operand rebuilt immediately before it. This builds
//!    large expressions, eliminates partially-dead expressions, and
//!    guarantees the §5.1 rule that no expression name is live across a
//!    block boundary. It *duplicates* code (the paper's Table 2 measures
//!    the expansion — [`ReassocStats`] reports the same numbers) and can
//!    even push expressions into loops (§4.2); PRE is expected to clean up
//!    after it.
//! 3. **Reassociate, sorting operands by rank.** Subtraction is rewritten
//!    `x + (-y)` (Frailey), associative operator trees are flattened and
//!    their operands stably sorted by rank so low-ranked (loop-invariant,
//!    constant) operands group together, then re-emitted as left-leaning
//!    three-address code with subtractions reconstructed. With
//!    [`ReassocOptions::distribute`] set, a low-ranked multiplier is
//!    distributed over the rank groups of a higher-ranked sum (the
//!    paper's partial distribution: `a + b×((c+d)+e)` with `e` deeper
//!    becomes `a + b×(c+d) + b×e`), and sums are re-sorted.

use std::collections::HashMap;

use epre_cfg::Cfg;
use epre_ir::{BinOp, Const, Function, Inst, Reg, Terminator, Ty, UnOp};
use epre_ssa::{build_ssa, destroy_ssa, SsaOptions};

use crate::budget::{Budget, BudgetExceeded, Meter};
use epre_telemetry::PassCounters;

/// Options for [`reassociate`].
#[derive(Copy, Clone, Debug, Default)]
pub struct ReassocOptions {
    /// Distribute multiplication over addition when the multiplier's rank
    /// is lower than the sum's (the paper's `distribution` level).
    pub distribute: bool,
}

/// Static operation counts around forward propagation — the data of the
/// paper's Table 2.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReassocStats {
    /// Operations before the pass.
    pub ops_before: usize,
    /// Operations after forward propagation and re-emission.
    pub ops_after: usize,
    /// Registers assigned a non-zero rank (rank 0 marks constants).
    pub regs_ranked: usize,
    /// Low-ranked multipliers actually distributed over rank groups of a
    /// higher-ranked sum (zero unless `distribute` is enabled).
    pub distributions: u64,
}

impl ReassocStats {
    /// The code growth factor (`after / before`), Table 2's third column.
    pub fn expansion(&self) -> f64 {
        self.ops_after as f64 / self.ops_before.max(1) as f64
    }
}

/// Run global reassociation on `f`; returns the Table 2 statistics.
pub fn reassociate(f: &mut Function, options: ReassocOptions) -> ReassocStats {
    match reassociate_budgeted(f, options, &Budget::UNLIMITED) {
        Ok(stats) => stats,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`reassociate`] under a resource [`Budget`]: one cooperative
/// checkpoint per block of the forward-propagation rewrite. Distribution
/// is the pipeline's biggest legitimate code-growth source (Table 2's
/// expansion column), so the growth dimension is checked block-by-block
/// while the rewrite is still in flight rather than once at the end.
///
/// # Errors
/// [`BudgetExceeded`] when a block rewrite starts over budget; blocks
/// already rewritten stay rewritten (callers needing atomicity run a
/// clone).
pub fn reassociate_budgeted(
    f: &mut Function,
    options: ReassocOptions,
    budget: &Budget,
) -> Result<ReassocStats, BudgetExceeded> {
    let ops_before = f.static_op_count();
    let mut meter = budget.start(f);

    // Step 0+1: pruned SSA with copies folded into φs, then ranks.
    build_ssa(f, SsaOptions { fold_copies: true });
    let ranks = compute_ranks(f);
    let regs_ranked = ranks.iter().filter(|&&r| r > 0).count();

    // Step 2a: φs become copies in (split) predecessors. Their targets are
    // the *variable names* of the reassociated program.
    destroy_ssa(f);

    // Step 2b+3: forward-propagate trees into every sink, reassociating
    // along the way.
    let distributions = forward_propagate(f, &ranks, options, &mut meter)?;

    let ops_after = f.static_op_count();
    Ok(ReassocStats { ops_before, ops_after, regs_ranked, distributions })
}

/// Instrumented entry point for the pipeline: [`reassociate_budgeted`]
/// with the Table 2 statistics folded into `counters`.
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`reassociate_budgeted`].
pub fn reassociate_counted(
    f: &mut Function,
    options: ReassocOptions,
    budget: &Budget,
    counters: &mut PassCounters,
) -> Result<ReassocStats, BudgetExceeded> {
    let stats = reassociate_budgeted(f, options, budget)?;
    counters.add("regs_ranked", stats.regs_ranked as u64);
    counters.add("distributions", stats.distributions);
    counters.add("ops_emitted", stats.ops_after as u64);
    Ok(stats)
}

/// Ranks per register (paper §3.1). Must run on SSA.
fn compute_ranks(f: &Function) -> Vec<u32> {
    let cfg = Cfg::new(f);
    let rpo = epre_cfg::order::RpoNumbers::new(&cfg);
    let mut rank = vec![0u32; f.reg_count()];
    // Parameters: defined at the entry block (rank 1, like the paper's
    // r0, r1 in Figure 4).
    for &p in &f.params {
        rank[p.index()] = 1;
    }
    for &b in rpo.order() {
        let brank = rpo.number(b).expect("reachable");
        for inst in &f.block(b).insts {
            let Some(d) = inst.dst() else { continue };
            rank[d.index()] = match inst {
                // Rule 1: constants rank zero.
                Inst::LoadI { .. } => 0,
                // Rule 2: φs, loads and call results take the block rank.
                Inst::Phi { .. } | Inst::Load { .. } | Inst::Call { .. } => brank,
                // Rule 3: max of operand ranks.
                Inst::Bin { lhs, rhs, .. } => rank[lhs.index()].max(rank[rhs.index()]),
                Inst::Un { src, .. } => rank[src.index()],
                Inst::Copy { src, .. } => rank[src.index()],
                Inst::Store { .. } => unreachable!("no destination"),
            };
        }
    }
    rank
}

/// An expression tree rooted at a sink operand.
#[derive(Clone, Debug, PartialEq)]
enum Tree {
    /// An opaque leaf: parameter, φ-variable, load or call result.
    Leaf(Reg),
    /// A constant (rank 0).
    Num(Const),
    /// A non-sum operator node (including flattened products etc. handled
    /// through `Nary`).
    Un(UnOp, Ty, Box<Tree>),
    /// Non-associative binary node.
    Bin(BinOp, Ty, Box<Tree>, Box<Tree>),
    /// Flattened associative operator with ≥2 operands. For `Add`, each
    /// operand carries a sign (Frailey's `x - y = x + (-y)` rewrite).
    Nary(BinOp, Ty, Vec<(Tree, bool)>),
}

struct Forwarder<'a> {
    ranks: &'a [u32],
    options: ReassocOptions,
    /// Single (pure) definition per register, for tree building.
    defs: HashMap<Reg, Inst>,
    /// Output buffer for the block being rewritten.
    out: Vec<Inst>,
    /// Multiplier-over-sum distributions performed so far.
    dists: u64,
}

/// Rewrite every block: delete pure-expression instructions and re-emit
/// reassociated trees immediately before each sink. Ticks `meter` once
/// per block, so growth is policed while distribution expands trees.
/// Returns the number of distributions performed.
fn forward_propagate(
    f: &mut Function,
    ranks: &[u32],
    options: ReassocOptions,
    meter: &mut Meter,
) -> Result<u64, BudgetExceeded> {
    // Pure expression defs (still single-assignment for expression
    // registers: copy targets — φ names — are multiply-defined but opaque).
    let mut defs: HashMap<Reg, Inst> = HashMap::new();
    let mut multiply_defined: HashMap<Reg, u32> = HashMap::new();
    for block in &f.blocks {
        for inst in &block.insts {
            if let Some(d) = inst.dst() {
                *multiply_defined.entry(d).or_default() += 1;
                if inst.is_expression() {
                    defs.insert(d, inst.clone());
                }
            }
        }
    }
    // A register defined more than once cannot be treated as a tree node
    // (it is a variable); drop such defs. (Cannot arise from our SSA
    // pipeline, but `reassociate` accepts arbitrary verified input.)
    defs.retain(|r, _| multiply_defined[r] == 1);

    let mut fw = Forwarder { ranks, options, defs, out: Vec::new(), dists: 0 };

    // Grow the rank table for registers the rewrite allocates: new regs
    // carry the rank of the tree they hold, but ranks are only read for
    // *input* registers, so a default of "huge" is never consulted.
    for bi in 0..f.blocks.len() {
        meter.tick(f)?;
        let insts = std::mem::take(&mut f.blocks[bi].insts);
        fw.out = Vec::with_capacity(insts.len());
        // The trailing run of copies is a *parallel* copy group created by
        // φ-destruction. Its trees must all be materialized before any of
        // the copies writes a φ-name, or a tree whose leaf is an earlier
        // copy's destination would read the new value.
        let mut tail = insts.len();
        while tail > 0 && matches!(insts[tail - 1], Inst::Copy { .. }) {
            tail -= 1;
        }
        let (body, copy_group) = insts.split_at(tail);
        for inst in body {
            let mut inst = inst.clone();
            match &mut inst {
                // Pure expressions disappear; sinks rematerialize them.
                Inst::Bin { .. } | Inst::Un { .. } | Inst::LoadI { .. } => continue,
                Inst::Copy { src, .. } => {
                    let new = fw.materialize(f, *src);
                    *src = new;
                }
                Inst::Load { addr, .. } => {
                    let new = fw.materialize(f, *addr);
                    *addr = new;
                }
                Inst::Store { addr, value, .. } => {
                    let a = fw.materialize(f, *addr);
                    let v = fw.materialize(f, *value);
                    *addr = a;
                    *value = v;
                }
                Inst::Call { args, .. } => {
                    for a in args.iter_mut() {
                        *a = fw.materialize(f, *a);
                    }
                }
                Inst::Phi { .. } => unreachable!("φs destroyed before forward propagation"),
            }
            fw.out.push(inst);
        }
        // Materialize every tree the copy group and the terminator need
        // *before* any copy executes: they must read the pre-copy values
        // of the φ-names (this matches the original SSA evaluation order,
        // where the condition and the φ-inputs were computed before the
        // parallel copy).
        let mut rewritten_group: Vec<Inst> = Vec::with_capacity(copy_group.len());
        for inst in copy_group {
            let mut inst = inst.clone();
            if let Inst::Copy { src, .. } = &mut inst {
                let new = fw.materialize(f, *src);
                *src = new;
            }
            rewritten_group.push(inst);
        }
        let mut term = std::mem::replace(
            &mut f.blocks[bi].term,
            Terminator::Return { value: None },
        );
        match &mut term {
            Terminator::Branch { cond, .. } => {
                let new = fw.materialize(f, *cond);
                *cond = new;
            }
            Terminator::Return { value: Some(v) } => {
                let new = fw.materialize(f, *v);
                *v = new;
            }
            _ => {}
        }
        fw.out.extend(rewritten_group);
        f.blocks[bi].term = term;
        f.blocks[bi].insts = std::mem::take(&mut fw.out);
    }
    Ok(fw.dists)
}

impl Forwarder<'_> {
    /// Materialize the value of `r` at the current point: returns `r`
    /// itself for leaves, or emits the reassociated tree and returns the
    /// register holding its root.
    fn materialize(&mut self, f: &mut Function, r: Reg) -> Reg {
        if !self.defs.contains_key(&r) {
            return r; // leaf: variable, parameter, load/call result
        }
        let tree = self.build_tree(r);
        let tree = normalize(tree);
        let tree = flatten(tree);
        let tree = if self.options.distribute {
            distribute(tree, self.ranks, &mut self.dists)
        } else {
            tree
        };
        let tree = sort_by_rank(tree, self.ranks);
        self.emit(f, &tree)
    }

    fn build_tree(&self, r: Reg) -> Tree {
        match self.defs.get(&r) {
            None => Tree::Leaf(r),
            Some(inst) => match inst {
                Inst::LoadI { value, .. } => Tree::Num(*value),
                Inst::Un { op, ty, src, .. } => {
                    Tree::Un(*op, *ty, Box::new(self.build_tree(*src)))
                }
                Inst::Bin { op, ty, lhs, rhs, .. } => Tree::Bin(
                    *op,
                    *ty,
                    Box::new(self.build_tree(*lhs)),
                    Box::new(self.build_tree(*rhs)),
                ),
                _ => Tree::Leaf(r),
            },
        }
    }

    /// Emit three-address code for `tree`; returns the result register.
    fn emit(&mut self, f: &mut Function, tree: &Tree) -> Reg {
        match tree {
            Tree::Leaf(r) => *r,
            Tree::Num(c) => {
                let dst = f.new_reg(c.ty());
                self.out.push(Inst::LoadI { dst, value: *c });
                dst
            }
            Tree::Un(op, ty, inner) => {
                let src = self.emit(f, inner);
                let dst = f.new_reg(op.result_ty(*ty));
                self.out.push(Inst::Un { op: *op, ty: *ty, dst, src });
                dst
            }
            Tree::Bin(op, ty, l, r) => {
                let lhs = self.emit(f, l);
                let rhs = self.emit(f, r);
                let dst = f.new_reg(op.result_ty(*ty));
                self.out.push(Inst::Bin { op: *op, ty: *ty, dst, lhs, rhs });
                dst
            }
            Tree::Nary(op, ty, terms) => {
                debug_assert!(terms.len() >= 2);
                if *op == BinOp::Add {
                    self.emit_sum(f, *ty, terms)
                } else {
                    let mut acc = self.emit(f, &terms[0].0);
                    for (t, _) in &terms[1..] {
                        let rhs = self.emit(f, t);
                        let dst = f.new_reg(*ty);
                        self.out.push(Inst::Bin { op: *op, ty: *ty, dst, lhs: acc, rhs });
                        acc = dst;
                    }
                    acc
                }
            }
        }
    }

    /// Emit a signed sum, reconstructing subtractions (§3.1 "we rely on a
    /// later pass … to reconstruct the original operations" — done eagerly
    /// here since `x + (-y)` and `x - y` are bit-identical in IEEE).
    fn emit_sum(&mut self, f: &mut Function, ty: Ty, terms: &[(Tree, bool)]) -> Reg {
        let (first, neg) = &terms[0];
        let mut acc = self.emit(f, first);
        if *neg {
            let dst = f.new_reg(ty);
            self.out.push(Inst::Un { op: UnOp::Neg, ty, dst, src: acc });
            acc = dst;
        }
        for (t, neg) in &terms[1..] {
            let rhs = self.emit(f, t);
            let dst = f.new_reg(ty);
            let op = if *neg { BinOp::Sub } else { BinOp::Add };
            self.out.push(Inst::Bin { op, ty, dst, lhs: acc, rhs });
            acc = dst;
        }
        acc
    }
}

/// Frailey normalization: `x - y → x + (-y)`, `-(-x) → x`, negation of
/// constants folded, negation pushed through sums.
fn normalize(tree: Tree) -> Tree {
    match tree {
        Tree::Bin(BinOp::Sub, ty, l, r) => {
            let l = normalize(*l);
            let r = normalize(*r);
            Tree::Bin(BinOp::Add, ty, Box::new(l), Box::new(neg_of(r, ty)))
        }
        Tree::Bin(op, ty, l, r) => {
            Tree::Bin(op, ty, Box::new(normalize(*l)), Box::new(normalize(*r)))
        }
        Tree::Un(UnOp::Neg, ty, inner) => neg_of(normalize(*inner), ty),
        Tree::Un(op, ty, inner) => Tree::Un(op, ty, Box::new(normalize(*inner))),
        t => t,
    }
}

fn neg_of(tree: Tree, ty: Ty) -> Tree {
    match tree {
        Tree::Un(UnOp::Neg, _, inner) => *inner,
        Tree::Num(Const::Int(v)) => Tree::Num(Const::Int(v.wrapping_neg())),
        Tree::Num(Const::Float(v)) => Tree::Num(Const::Float(-v)),
        t => Tree::Un(UnOp::Neg, ty, Box::new(t)),
    }
}

/// Flatten nested associative applications into N-ary nodes. A negation
/// over a sum distributes across its terms; a negated term of a sum flips
/// its sign bit.
fn flatten(tree: Tree) -> Tree {
    match tree {
        Tree::Bin(op, ty, l, r) if op.is_associative() => {
            let mut terms = Vec::new();
            collect(op, flatten(*l), false, &mut terms);
            collect(op, flatten(*r), false, &mut terms);
            if terms.len() == 1 {
                let (t, neg) = terms.pop().unwrap();
                if neg {
                    Tree::Un(UnOp::Neg, ty, Box::new(t))
                } else {
                    t
                }
            } else {
                Tree::Nary(op, ty, terms)
            }
        }
        Tree::Bin(op, ty, l, r) => Tree::Bin(op, ty, Box::new(flatten(*l)), Box::new(flatten(*r))),
        Tree::Un(UnOp::Neg, ty, inner) => match flatten(*inner) {
            // -(a + b) = (-a) + (-b): keeps sums flat under negation.
            Tree::Nary(BinOp::Add, nty, terms) => {
                Tree::Nary(BinOp::Add, nty, terms.into_iter().map(|(t, n)| (t, !n)).collect())
            }
            t => neg_of(t, ty),
        },
        Tree::Un(op, ty, inner) => Tree::Un(op, ty, Box::new(flatten(*inner))),
        t => t,
    }
}

fn collect(op: BinOp, t: Tree, neg: bool, out: &mut Vec<(Tree, bool)>) {
    match t {
        Tree::Nary(o, _, terms) if o == op => {
            for (t, n) in terms {
                out.push((t, neg != (n && op == BinOp::Add)));
                // Only sums carry signs; for other associative ops `n` is
                // always false by construction.
            }
        }
        Tree::Un(UnOp::Neg, _, inner) if op == BinOp::Add => {
            collect(op, *inner, !neg, out);
        }
        other => out.push((other, neg)),
    }
}

/// Rank of a tree: constants 0, leaves from the table, operators take the
/// max over children (matching the per-register rules).
fn tree_rank(t: &Tree, ranks: &[u32]) -> u32 {
    match t {
        Tree::Leaf(r) => ranks.get(r.index()).copied().unwrap_or(u32::MAX),
        Tree::Num(_) => 0,
        Tree::Un(_, _, inner) => tree_rank(inner, ranks),
        Tree::Bin(_, _, l, r) => tree_rank(l, ranks).max(tree_rank(r, ranks)),
        Tree::Nary(_, _, terms) => {
            terms.iter().map(|(t, _)| tree_rank(t, ranks)).max().unwrap_or(0)
        }
    }
}

/// Stable-sort every N-ary node's operands by rank (low first), recursing
/// into children first.
fn sort_by_rank(tree: Tree, ranks: &[u32]) -> Tree {
    match tree {
        Tree::Nary(op, ty, terms) => {
            let mut terms: Vec<(Tree, bool)> = terms
                .into_iter()
                .map(|(t, n)| (sort_by_rank(t, ranks), n))
                .collect();
            terms.sort_by_key(|(t, _)| tree_rank(t, ranks));
            Tree::Nary(op, ty, terms)
        }
        Tree::Bin(op, ty, l, r) => Tree::Bin(
            op,
            ty,
            Box::new(sort_by_rank(*l, ranks)),
            Box::new(sort_by_rank(*r, ranks)),
        ),
        Tree::Un(op, ty, inner) => Tree::Un(op, ty, Box::new(sort_by_rank(*inner, ranks))),
        t => t,
    }
}

/// Distribute a low-ranked multiplier over the *rank groups* of a
/// higher-ranked sum (paper §3.1: partial distribution; a complete
/// distribution "would result in extra multiplications without allowing
/// any additional code motion"). Applied bottom-up. Each distribution
/// performed increments `count` (the pass counter `distributions`).
fn distribute(tree: Tree, ranks: &[u32], count: &mut u64) -> Tree {
    match tree {
        Tree::Nary(BinOp::Mul, ty, factors) => {
            let factors: Vec<(Tree, bool)> =
                factors.into_iter().map(|(t, n)| (distribute(t, ranks, count), n)).collect();
            // Exactly one sum factor, and the rest strictly lower-ranked?
            let sums: Vec<usize> = factors
                .iter()
                .enumerate()
                .filter(|(_, (t, _))| matches!(t, Tree::Nary(BinOp::Add, _, _)))
                .map(|(i, _)| i)
                .collect();
            if sums.len() != 1 {
                return Tree::Nary(BinOp::Mul, ty, factors);
            }
            let sum_idx = sums[0];
            let multiplier_rank = factors
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != sum_idx)
                .map(|(_, (t, _))| tree_rank(t, ranks))
                .max()
                .unwrap_or(0);
            let Tree::Nary(BinOp::Add, _, terms) = &factors[sum_idx].0 else { unreachable!() };
            let sum_rank = terms.iter().map(|(t, _)| tree_rank(t, ranks)).max().unwrap_or(0);
            if multiplier_rank >= sum_rank {
                return Tree::Nary(BinOp::Mul, ty, factors);
            }
            // Group the sum's terms: everything at or below the
            // multiplier's rank forms one group; each higher rank its own.
            let mut groups: Vec<(u32, Vec<(Tree, bool)>)> = Vec::new();
            let Tree::Nary(BinOp::Add, _, terms) = factors[sum_idx].0.clone() else {
                unreachable!()
            };
            for (t, n) in terms {
                let level = tree_rank(&t, ranks).max(multiplier_rank);
                match groups.iter_mut().find(|(l, _)| *l == level) {
                    Some((_, g)) => g.push((t, n)),
                    None => groups.push((level, vec![(t, n)])),
                }
            }
            *count += 1;
            let others: Vec<(Tree, bool)> = factors
                .into_iter()
                .enumerate()
                .filter(|&(i, _)| i != sum_idx)
                .map(|(_, p)| p)
                .collect();
            let mut out_terms: Vec<(Tree, bool)> = Vec::new();
            for (_, group) in groups {
                let inner = if group.len() == 1 {
                    let (t, n) = group.into_iter().next().unwrap();
                    if n {
                        Tree::Un(UnOp::Neg, ty, Box::new(t))
                    } else {
                        t
                    }
                } else {
                    Tree::Nary(BinOp::Add, ty, group)
                };
                let mut fs = others.clone();
                fs.push((inner, false));
                out_terms.push((Tree::Nary(BinOp::Mul, ty, fs), false));
            }
            if out_terms.len() == 1 {
                out_terms.pop().unwrap().0
            } else {
                Tree::Nary(BinOp::Add, ty, out_terms)
            }
        }
        Tree::Nary(op, ty, terms) => Tree::Nary(
            op,
            ty,
            terms.into_iter().map(|(t, n)| (distribute(t, ranks, count), n)).collect(),
        ),
        Tree::Bin(op, ty, l, r) => Tree::Bin(
            op,
            ty,
            Box::new(distribute(*l, ranks, count)),
            Box::new(distribute(*r, ranks, count)),
        ),
        Tree::Un(op, ty, inner) => {
            Tree::Un(op, ty, Box::new(distribute(*inner, ranks, count)))
        }
        t => t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{FunctionBuilder, Module};
    use epre_interp::{Interpreter, Value};

    fn run_fn(f: &Function, name: &str, args: &[Value]) -> (Option<Value>, u64) {
        let mut m = Module::new();
        m.functions.push(f.clone());
        let mut i = Interpreter::new(&m);
        let r = i.run(name, args).unwrap();
        (r, i.counts().total)
    }

    /// The paper's Figure 2 function, built like the frontend would.
    fn paper_foo() -> Function {
        let mut b = FunctionBuilder::new("foo", Some(Ty::Float));
        let y = b.param(Ty::Float);
        let z = b.param(Ty::Float);
        let s = b.new_reg(Ty::Float);
        let x = b.new_reg(Ty::Float);
        let i = b.new_reg(Ty::Int);
        let limit = b.new_reg(Ty::Int);
        let body = b.new_block();
        let exit = b.new_block();
        // s = 0; x = y + z; i = x; limit = 100; guard
        let c0 = b.loadi(Const::Float(0.0));
        b.copy_to(s, c0);
        let t = b.bin(BinOp::Add, Ty::Float, y, z);
        b.copy_to(x, t);
        let xi = b.un(UnOp::F2I, Ty::Float, x);
        b.copy_to(i, xi);
        let c100 = b.loadi(Const::Int(100));
        b.copy_to(limit, c100);
        let g = b.bin(BinOp::CmpGt, Ty::Int, i, limit);
        b.branch(g, exit, body);
        // body: s = i + s + x ; i = i + 1 ; bottom test
        b.switch_to(body);
        let fi = b.un(UnOp::I2F, Ty::Int, i);
        let t1 = b.bin(BinOp::Add, Ty::Float, fi, s);
        let t2 = b.bin(BinOp::Add, Ty::Float, t1, x);
        b.copy_to(s, t2);
        let one = b.loadi(Const::Int(1));
        let i2 = b.bin(BinOp::Add, Ty::Int, i, one);
        b.copy_to(i, i2);
        let c = b.bin(BinOp::CmpLe, Ty::Int, i, limit);
        b.branch(c, body, exit);
        b.switch_to(exit);
        b.ret(Some(s));
        b.finish()
    }

    #[test]
    fn preserves_paper_foo_semantics() {
        let orig = paper_foo();
        for distribute in [false, true] {
            let mut f = orig.clone();
            let stats = reassociate(&mut f, ReassocOptions { distribute });
            assert!(f.verify().is_ok(), "{f}");
            assert!(stats.ops_after >= 1);
            let args = [Value::Float(1.0), Value::Float(2.0)];
            let (r0, _) = run_fn(&orig, "foo", &args);
            let (r1, _) = run_fn(&f, "foo", &args);
            // Float reassociation can change rounding; this example is
            // exact in f64, so results match exactly.
            assert_eq!(r0, r1);
        }
    }

    #[test]
    fn ranks_match_paper_figure4() {
        // In Figure 4 the params rank 1, constants rank 0, loop values
        // rank by their block.
        let mut f = paper_foo();
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        let ranks = compute_ranks(&f);
        // Params y, z have rank 1.
        assert_eq!(ranks[f.params[0].index()], 1);
        assert_eq!(ranks[f.params[1].index()], 1);
        // y + z is rank 1 (invariant); constants rank 0.
        for (_, block) in f.iter_blocks() {
            for inst in &block.insts {
                match inst {
                    Inst::LoadI { dst, .. } => assert_eq!(ranks[dst.index()], 0),
                    Inst::Bin { op: BinOp::Add, ty: Ty::Float, dst, lhs, rhs }
                        if (*lhs == f.params[0] || *rhs == f.params[0]) => {
                            assert_eq!(ranks[dst.index()], 1, "y+z is loop-invariant");
                        }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn sorts_constants_first() {
        // 1 + rc + 2 must become (1 + 2) + rc shaped code: the two
        // constants adjacent at the front (paper §3.1 sorting example).
        let mut b = FunctionBuilder::new("s", Some(Ty::Int));
        let rc = b.param(Ty::Int);
        let one = b.loadi(Const::Int(1));
        let t = b.bin(BinOp::Add, Ty::Int, one, rc);
        let two = b.loadi(Const::Int(2));
        let u = b.bin(BinOp::Add, Ty::Int, t, two);
        b.ret(Some(u));
        let mut f = b.finish();
        reassociate(&mut f, ReassocOptions::default());
        assert!(f.verify().is_ok());
        // The first add must combine the two constants.
        let first_add = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .expect("an add remains");
        let loadi_dsts: Vec<Reg> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::LoadI { .. }))
            .filter_map(|i| i.dst())
            .collect();
        for u in first_add.uses() {
            assert!(loadi_dsts.contains(&u), "first add combines constants: {f}");
        }
        let (r, _) = run_fn(&f, "s", &[Value::Int(10)]);
        assert_eq!(r, Some(Value::Int(13)));
    }

    #[test]
    fn subtraction_round_trips_through_frailey() {
        // a - b + c: rewritten x + (-y) + z internally, re-emitted with a
        // subtraction, value preserved.
        let mut b = FunctionBuilder::new("d", Some(Ty::Int));
        let a = b.param(Ty::Int);
        let bb = b.param(Ty::Int);
        let c = b.param(Ty::Int);
        let t = b.bin(BinOp::Sub, Ty::Int, a, bb);
        let u = b.bin(BinOp::Add, Ty::Int, t, c);
        b.ret(Some(u));
        let orig = b.finish();
        let mut f = orig.clone();
        reassociate(&mut f, ReassocOptions::default());
        assert!(f.verify().is_ok());
        let args = [Value::Int(10), Value::Int(4), Value::Int(1)];
        assert_eq!(run_fn(&orig, "d", &args).0, run_fn(&f, "d", &args).0);
        // No stray negations: a Sub is reconstructed.
        let negs = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Un { op: UnOp::Neg, .. }))
            .count();
        assert_eq!(negs, 0, "{f}");
    }

    #[test]
    fn distribution_of_low_ranked_multiplier() {
        // The paper's example: a + b*((c+d)+e) where a,b,c,d are rank-1
        // (parameters) and e is loop-variant. Distribution must split
        // b*(c+d) (hoistable) from b*e.
        // Build: loop computing acc += a + b*((c+d)+e) with e = loop var.
        let mut b = FunctionBuilder::new("dist", Some(Ty::Int));
        let a = b.param(Ty::Int);
        let bv = b.param(Ty::Int);
        let c = b.param(Ty::Int);
        let d = b.param(Ty::Int);
        let n = b.param(Ty::Int);
        let e = b.new_reg(Ty::Int);
        let acc = b.new_reg(Ty::Int);
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(e, z);
        b.copy_to(acc, z);
        let g = b.bin(BinOp::CmpGe, Ty::Int, e, n);
        b.branch(g, exit, body);
        b.switch_to(body);
        let cd = b.bin(BinOp::Add, Ty::Int, c, d);
        let cde = b.bin(BinOp::Add, Ty::Int, cd, e);
        let prod = b.bin(BinOp::Mul, Ty::Int, bv, cde);
        let sum = b.bin(BinOp::Add, Ty::Int, a, prod);
        let acc2 = b.bin(BinOp::Add, Ty::Int, acc, sum);
        b.copy_to(acc, acc2);
        let one = b.loadi(Const::Int(1));
        let e2 = b.bin(BinOp::Add, Ty::Int, e, one);
        b.copy_to(e, e2);
        let cc = b.bin(BinOp::CmpLt, Ty::Int, e, n);
        b.branch(cc, body, exit);
        b.switch_to(exit);
        b.ret(Some(acc));
        let orig = b.finish();

        let mut f = orig.clone();
        reassociate(&mut f, ReassocOptions { distribute: true });
        assert!(f.verify().is_ok());
        // Distribution creates two multiplies per materialized body tree:
        // b×(c+d) — hoistable — and b×e. (Block ids shift under edge
        // splitting, so scan the whole function.)
        let _ = body;
        let mul_by_b = f
            .blocks
            .iter()
            .flat_map(|blk| &blk.insts)
            .filter(|i| {
                matches!(i, Inst::Bin { op: BinOp::Mul, lhs, rhs, .. } if *lhs == bv || *rhs == bv)
            })
            .count();
        assert!(mul_by_b >= 2, "partial distribution splits the product: {f}");
        // Semantics: acc = sum over e of (a + b*((c+d)+e)).
        let args =
            [Value::Int(2), Value::Int(3), Value::Int(4), Value::Int(5), Value::Int(4)];
        assert_eq!(run_fn(&orig, "dist", &args).0, run_fn(&f, "dist", &args).0);
    }

    #[test]
    fn no_distribution_without_rank_gap() {
        // b*(c+d) with all ranks equal: distribution must NOT fire
        // ("a complete distribution would result in extra multiplications
        // without allowing any additional code motion").
        let mut b = FunctionBuilder::new("nd", Some(Ty::Int));
        let bv = b.param(Ty::Int);
        let c = b.param(Ty::Int);
        let d = b.param(Ty::Int);
        let cd = b.bin(BinOp::Add, Ty::Int, c, d);
        let p = b.bin(BinOp::Mul, Ty::Int, bv, cd);
        b.ret(Some(p));
        let mut f = b.finish();
        reassociate(&mut f, ReassocOptions { distribute: true });
        let muls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. }))
            .count();
        assert_eq!(muls, 1, "{f}");
    }

    #[test]
    fn forward_propagation_expands_code() {
        // A shared subexpression used at two sinks is duplicated —
        // Table 2's expansion effect.
        let mut b = FunctionBuilder::new("x", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let q = b.param(Ty::Int);
        let s = b.bin(BinOp::Add, Ty::Int, p, q);
        let t = b.bin(BinOp::Mul, Ty::Int, s, s);
        b.store(Ty::Int, p, t);
        b.store(Ty::Int, q, t);
        b.ret(Some(t));
        let mut f = b.finish();
        let stats = reassociate(&mut f, ReassocOptions::default());
        assert!(stats.ops_after > stats.ops_before, "{stats:?}: {f}");
        assert!(stats.expansion() > 1.0);
    }

    #[test]
    fn partially_dead_expression_moves_to_use() {
        // §4.2 forward-propagation discussion inverted: n = j + k computed
        // on the path where it is unused becomes dead and vanishes.
        let mut b = FunctionBuilder::new("pd", Some(Ty::Int));
        let j = b.param(Ty::Int);
        let k = b.param(Ty::Int);
        let p = b.param(Ty::Int);
        let n = b.new_reg(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        // n = j + k before the branch, used only in the then-arm.
        let sum = b.bin(BinOp::Add, Ty::Int, j, k);
        b.copy_to(n, sum);
        b.branch(p, t, e);
        b.switch_to(t);
        b.ret(Some(n));
        b.switch_to(e);
        b.ret(Some(j));
        let orig = b.finish();
        let mut f = orig.clone();
        reassociate(&mut f, ReassocOptions::default());
        assert!(f.verify().is_ok());
        // The add now sits only on the then path (at the copy's sink the
        // tree is materialized; entry has the copy... the copy's source
        // tree lands before the copy, which is in the entry). Forward
        // propagation alone doesn't split the copy — but the expression
        // instructions were consumed into the copy's tree, so the *add*
        // count stays 1 and semantics hold on both paths.
        for pv in [0i64, 1] {
            let args = [Value::Int(3), Value::Int(4), Value::Int(pv)];
            assert_eq!(run_fn(&orig, "pd", &args).0, run_fn(&f, "pd", &args).0);
        }
    }

    #[test]
    fn loads_calls_variables_are_leaves() {
        let mut b = FunctionBuilder::new("lv", Some(Ty::Float));
        let p = b.param(Ty::Int);
        let v = b.load(Ty::Float, p);
        let s = b.call("sqrt", vec![v], Ty::Float);
        let t = b.bin(BinOp::Add, Ty::Float, v, s);
        b.ret(Some(t));
        let mut f = b.finish();
        reassociate(&mut f, ReassocOptions::default());
        assert!(f.verify().is_ok());
        // Exactly one load and one call remain.
        let loads =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Load { .. })).count();
        let calls =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Call { .. })).count();
        assert_eq!((loads, calls), (1, 1));
    }

    #[test]
    fn min_max_and_logicals_flatten() {
        // max(max(a, b), c) and (a & b) & c reorder without changing value.
        let mut b = FunctionBuilder::new("mm", Some(Ty::Int));
        let a = b.param(Ty::Int);
        let bb = b.param(Ty::Int);
        let c = b.param(Ty::Int);
        let m1 = b.bin(BinOp::Max, Ty::Int, a, bb);
        let m2 = b.bin(BinOp::Max, Ty::Int, m1, c);
        let a1 = b.bin(BinOp::And, Ty::Int, a, bb);
        let a2 = b.bin(BinOp::And, Ty::Int, a1, c);
        let r = b.bin(BinOp::Xor, Ty::Int, m2, a2);
        b.ret(Some(r));
        let orig = b.finish();
        let mut f = orig.clone();
        reassociate(&mut f, ReassocOptions::default());
        let args = [Value::Int(9), Value::Int(-3), Value::Int(14)];
        assert_eq!(run_fn(&orig, "mm", &args).0, run_fn(&f, "mm", &args).0);
    }

    #[test]
    fn division_not_rewritten() {
        // §3.1: "we avoid rewriting x/y as x × 1/y".
        let mut b = FunctionBuilder::new("dv", Some(Ty::Float));
        let x = b.param(Ty::Float);
        let y = b.param(Ty::Float);
        let q = b.bin(BinOp::Div, Ty::Float, x, y);
        b.ret(Some(q));
        let mut f = b.finish();
        reassociate(&mut f, ReassocOptions { distribute: true });
        let divs =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Bin { op: BinOp::Div, .. })).count();
        assert_eq!(divs, 1);
        let muls =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Bin { op: BinOp::Mul, .. })).count();
        assert_eq!(muls, 0);
    }
}
