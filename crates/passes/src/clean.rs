//! CFG tidying: the paper's "final pass to eliminate empty basic blocks".
//!
//! Four transformations iterated to a fixed point:
//!
//! 1. drop unreachable blocks,
//! 2. fold conditional branches whose two targets coincide into jumps,
//! 3. bypass *empty* blocks (blocks holding only a `jump`), retargeting
//!    their predecessors,
//! 4. merge a block into its unique successor when that successor has a
//!    unique predecessor (straight-line concatenation).
//!
//! The pass requires φ-free code (it runs in the non-SSA parts of the
//! pipeline) and renumbers blocks densely afterwards.

use epre_analysis::AnalysisCache;
use epre_ir::{Block, BlockId, Function, Terminator};

use crate::budget::{Budget, BudgetExceeded};
use epre_telemetry::PassCounters;

/// What one clean invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanStats {
    /// Tidying rounds that changed the function.
    pub rounds: u64,
    /// Net basic blocks removed (clean only ever shrinks the block list).
    pub blocks_removed: u64,
}

/// Run the clean pass to a fixed point. Returns true if anything changed.
pub fn run(f: &mut Function) -> bool {
    run_with_cache(f, &mut AnalysisCache::new())
}

/// [`run`] against a caller-owned [`AnalysisCache`]. One cache serves the
/// whole fixed point: a quiescing round (the common case — the last round,
/// and for already-clean functions the only one) builds the CFG once and
/// the sub-passes that follow reuse it — and leave it for the pipeline.
/// Each structural edit invalidates precisely what it breaks, so the
/// cache is consistent on return.
pub fn run_with_cache(f: &mut Function, cache: &mut AnalysisCache) -> bool {
    match run_budgeted(f, cache, &Budget::UNLIMITED) {
        Ok(any) => any,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`run_with_cache`] under a resource [`Budget`]: one cooperative
/// checkpoint per tidying round (each round applies all four
/// transformations once; a round that changes nothing ends the fixed
/// point).
///
/// # Errors
/// [`BudgetExceeded`] when a round starts over budget; edits already made
/// stay made (callers needing atomicity run a clone).
pub fn run_budgeted(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
) -> Result<bool, BudgetExceeded> {
    run_budgeted_stats(f, cache, budget).map(|s| s.rounds > 0)
}

/// Instrumented entry point for the pipeline: [`run_budgeted_stats`] with
/// the stats folded into `counters`.
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_counted(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
    counters: &mut PassCounters,
) -> Result<bool, BudgetExceeded> {
    let stats = run_budgeted_stats(f, cache, budget)?;
    counters.add("rounds", stats.rounds);
    counters.add("blocks_removed", stats.blocks_removed);
    Ok(stats.rounds > 0)
}

/// [`run_budgeted`], additionally reporting what the invocation did as a
/// [`CleanStats`].
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_budgeted_stats(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
) -> Result<CleanStats, BudgetExceeded> {
    debug_assert!(
        f.blocks.iter().all(|b| b.phi_count() == 0),
        "clean expects φ-free code"
    );
    let mut meter = budget.start(f);
    let blocks_at_entry = f.blocks.len() as u64;
    let mut stats = CleanStats::default();
    loop {
        meter.tick(f)?;
        let mut changed = false;
        changed |= fold_redundant_branches(f, cache);
        changed |= remove_unreachable(f, cache);
        changed |= bypass_empty_blocks(f, cache);
        changed |= merge_straight_lines(f, cache);
        if !changed {
            break;
        }
        stats.rounds += 1;
    }
    stats.blocks_removed = blocks_at_entry.saturating_sub(f.blocks.len() as u64);
    Ok(stats)
}

/// `cbr c -> x, x` becomes `jump x`.
fn fold_redundant_branches(f: &mut Function, cache: &mut AnalysisCache) -> bool {
    let mut changed = false;
    for b in &mut f.blocks {
        if let Terminator::Branch { then_to, else_to, .. } = b.term {
            if then_to == else_to {
                b.term = Terminator::Jump { target: then_to };
                changed = true;
            }
        }
    }
    if changed {
        cache.invalidate_cfg();
    }
    changed
}

/// Remove blocks unreachable from the entry, renumbering the rest.
fn remove_unreachable(f: &mut Function, cache: &mut AnalysisCache) -> bool {
    let reach = cache.cfg(f).reachable();
    if reach.iter().all(|&r| r) {
        return false;
    }
    // Dense renumbering of surviving blocks.
    let mut remap: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    let mut kept: Vec<Block> = Vec::new();
    for (i, block) in f.blocks.drain(..).enumerate() {
        if reach[i] {
            remap[i] = Some(BlockId(kept.len() as u32));
            kept.push(block);
        }
    }
    for block in &mut kept {
        block.term.retarget_map(|t| remap[t.index()].expect("reachable target"));
    }
    f.blocks = kept;
    cache.invalidate_all();
    true
}

/// Bypass blocks that contain nothing but a jump.
fn bypass_empty_blocks(f: &mut Function, cache: &mut AnalysisCache) -> bool {
    let n = f.blocks.len();
    // forward[b] = ultimate destination following chains of empty jumps.
    let mut forward: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
    for (fwd, block) in forward.iter_mut().zip(&f.blocks) {
        if block.insts.is_empty() {
            if let Terminator::Jump { target } = block.term {
                if target != *fwd {
                    *fwd = target;
                }
            }
        }
    }
    // Path-compress (bounded by n to survive cycles of empty blocks).
    for _ in 0..n {
        let mut moved = false;
        for i in 0..n {
            let t = forward[i];
            let tt = forward[t.index()];
            if tt != t && tt != BlockId(i as u32) {
                forward[i] = tt;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let mut changed = false;
    for b in &mut f.blocks {
        b.term.retarget_map(|t| {
            let nt = forward[t.index()];
            if nt != t {
                changed = true;
            }
            nt
        });
    }
    // Entry itself being an empty jump is handled by the merge step.
    if changed {
        cache.invalidate_cfg();
    }
    changed
}

/// Merge `a -> b` when `a` jumps to `b` and `b` has exactly one predecessor.
fn merge_straight_lines(f: &mut Function, cache: &mut AnalysisCache) -> bool {
    let cfg = cache.cfg(f);
    let mut changed = false;
    let mut merge: Option<(usize, BlockId)> = None;
    for i in 0..f.blocks.len() {
        let a = BlockId(i as u32);
        let Terminator::Jump { target: b } = f.blocks[i].term else { continue };
        if b == a || cfg.preds(b).len() != 1 {
            continue;
        }
        merge = Some((i, b));
        break; // one merge per round; the fixed-point loop re-runs us
    }
    if let Some((i, b)) = merge {
        // Concatenate b into a; b becomes unreachable and is swept by the
        // next remove_unreachable round.
        let mut moved = std::mem::take(&mut f.blocks[b.index()].insts);
        let term = f.blocks[b.index()].term.clone();
        f.blocks[b.index()].term = Terminator::Jump { target: b }; // self-loop tombstone
        f.blocks[i].insts.append(&mut moved);
        f.blocks[i].term = term;
        changed = true;
        cache.invalidate_all();
    }
    changed
}

/// Helper: retarget every successor through a map.
trait RetargetMap {
    fn retarget_map(&mut self, f: impl FnMut(BlockId) -> BlockId);
}

impl RetargetMap for Terminator {
    fn retarget_map(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump { target } => *target = f(*target),
            Terminator::Branch { then_to, else_to, .. } => {
                *then_to = f(*then_to);
                *else_to = f(*else_to);
            }
            Terminator::Return { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{Const, FunctionBuilder, Inst, Ty};

    #[test]
    fn removes_unreachable_blocks() {
        let mut b = FunctionBuilder::new("u", None);
        b.ret(None);
        let dead = b.new_block();
        b.switch_to(dead);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.blocks.len(), 1);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn folds_same_target_branch() {
        let mut b = FunctionBuilder::new("s", None);
        let c = b.loadi(Const::Int(1));
        let t = b.new_block();
        b.branch(c, t, t);
        b.switch_to(t);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        // Branch folded to jump, then merged: one block remains.
        assert_eq!(f.blocks.len(), 1);
        assert!(matches!(f.blocks[0].term, Terminator::Return { .. }));
        assert!(f.verify().is_ok());
    }

    #[test]
    fn bypasses_empty_chains() {
        let mut b = FunctionBuilder::new("e", None);
        let e1 = b.new_block();
        let e2 = b.new_block();
        let end = b.new_block();
        let c = b.loadi(Const::Int(1));
        b.branch(c, e1, e2);
        b.switch_to(e1);
        b.jump(end);
        b.switch_to(e2);
        b.jump(end);
        b.switch_to(end);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        // Both empty arms bypassed; branch targets coincide and fold; all
        // merges leave a single block.
        assert_eq!(f.blocks.len(), 1);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn merges_straight_line_chain() {
        let mut b = FunctionBuilder::new("m", Some(Ty::Int));
        let b1 = b.new_block();
        let b2 = b.new_block();
        let x = b.loadi(Const::Int(1));
        b.jump(b1);
        b.switch_to(b1);
        let y = b.bin(epre_ir::BinOp::Add, Ty::Int, x, x);
        b.jump(b2);
        b.switch_to(b2);
        let z = b.bin(epre_ir::BinOp::Mul, Ty::Int, y, y);
        b.ret(Some(z));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].insts.len(), 3);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn preserves_loops() {
        let mut b = FunctionBuilder::new("l", None);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let c = b.loadi(Const::Int(1));
        b.jump(head);
        b.switch_to(head);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        assert!(f.verify().is_ok());
        // entry merges into head; body and exit survive: 3 blocks.
        assert_eq!(f.blocks.len(), 3);
        // Still a loop: some block targets an earlier block.
        let cfg = epre_cfg::Cfg::new(&f);
        assert!(cfg.edges().iter().any(|&(a, bb)| bb <= a));
    }

    #[test]
    fn empty_infinite_loop_does_not_hang() {
        let mut b = FunctionBuilder::new("spin", None);
        let l1 = b.new_block();
        let l2 = b.new_block();
        b.jump(l1);
        b.switch_to(l1);
        b.jump(l2);
        b.switch_to(l2);
        b.jump(l1);
        let mut f = b.finish();
        run(&mut f);
        assert!(f.verify().is_ok());
        // The self-loop shape survives in some form.
        let cfg = epre_cfg::Cfg::new(&f);
        assert!(!cfg.edges().is_empty());
    }

    #[test]
    fn idempotent() {
        let mut b = FunctionBuilder::new("i", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(x, t, e);
        b.switch_to(t);
        let one = b.loadi(Const::Int(1));
        b.copy_to(x, one);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        let once = f.clone();
        run(&mut f);
        assert_eq!(f, once);
        let _ = Inst::Copy { dst: x, src: x };
    }
}
