//! Global peephole optimization.
//!
//! The baseline's "global peephole optimization" pass (§4.1). It walks each
//! block with a local value environment (constants and copies seen so far
//! in the block) and applies:
//!
//! * **constant folding** — binary/unary operations on known constants,
//! * **algebraic identities** — `x+0`, `x-0`, `x*1`, `x/1`, `x*0`, `x-x`,
//!   `x^x` (integer only where floating-point rounding or `NaN` could
//!   observably differ; `x*1.0` and `x/1.0` are exact and allowed),
//! * **copy propagation** — uses of a copy's destination read the source,
//! * **subtraction reconstruction** — `t <- neg y; z <- add x, t` becomes
//!   `z <- sub x, y`, undoing reassociation's Frailey rewrite (§3.1 "we
//!   rely on a later pass … to reconstruct the original operations"),
//! * **strength reduction** — integer multiply by a power-of-two constant
//!   becomes a shift. §5.2 explains why this must run *after* global
//!   reassociation, which is exactly where the pipeline puts it,
//! * **branch folding** — a conditional branch on a known constant becomes
//!   a jump (the `clean` pass then drops the dead arm).

use std::collections::HashMap;

use epre_ir::{BinOp, Const, Function, Inst, Reg, Terminator, Ty, UnOp};

/// What one peephole run did to the function — consumed by the pass
/// manager to invalidate cached analyses with edge-level precision.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Some instruction was rewritten, deleted, or replaced.
    pub insts_changed: bool,
    /// A constant conditional branch was folded into a jump (the only
    /// peephole rewrite that edits the CFG).
    pub cfg_changed: bool,
    /// Individual instruction/operand rewrites applied (constant folds,
    /// identities, copy propagations, strength reductions).
    pub rewrites: u64,
    /// Constant conditional branches folded into jumps.
    pub branches_folded: u64,
}

impl Outcome {
    /// Did anything change at all?
    pub fn changed(&self) -> bool {
        self.insts_changed || self.cfg_changed
    }
}

/// Run the peephole pass once over every block. Returns true if anything
/// changed.
pub fn run(f: &mut Function) -> bool {
    run_detailed(f).changed()
}

/// Run the peephole pass, reporting instruction and CFG changes
/// separately.
pub fn run_detailed(f: &mut Function) -> Outcome {
    debug_assert!(f.blocks.iter().all(|b| b.phi_count() == 0), "peephole expects φ-free code");
    let mut outcome = Outcome::default();
    for bi in 0..f.blocks.len() {
        let block = rewrite_block(f, bi);
        outcome.insts_changed |= block.insts_changed;
        outcome.cfg_changed |= block.cfg_changed;
        outcome.rewrites += block.rewrites;
        outcome.branches_folded += block.branches_folded;
    }
    outcome
}

fn rewrite_block(f: &mut Function, bi: usize) -> Outcome {
    // Local environment: constants and copy sources, invalidated on
    // redefinition.
    let mut consts: HashMap<Reg, Const> = HashMap::new();
    let mut copies: HashMap<Reg, Reg> = HashMap::new();
    // neg_of[d] = y when `d <- neg y` is the latest definition of d.
    let mut neg_of: HashMap<Reg, Reg> = HashMap::new();

    let mut outcome = Outcome::default();
    let block = &mut f.blocks[bi];
    for inst in &mut block.insts {
        // Copy-propagate operands first.
        inst.map_uses(|r| {
            let resolved = resolve(&copies, r);
            if resolved != r {
                outcome.insts_changed = true;
                outcome.rewrites += 1;
            }
            resolved
        });

        // Invalidate environment entries that depended on the defined reg
        // *after* computing the rewrite (the definition happens last).
        let rewritten = simplify(inst, &consts, &neg_of);
        if let Some(new) = rewritten {
            if *inst != new {
                outcome.insts_changed = true;
                outcome.rewrites += 1;
            }
            *inst = new;
        }

        if let Some(d) = inst.dst() {
            // Any mapping reading d is now stale.
            consts.remove(&d);
            neg_of.remove(&d);
            copies.remove(&d);
            copies.retain(|_, src| *src != d);
            neg_of.retain(|_, src| *src != d);
        }
        match inst {
            Inst::LoadI { dst, value } => {
                consts.insert(*dst, *value);
            }
            Inst::Copy { dst, src } => {
                if dst != src {
                    copies.insert(*dst, *src);
                }
                if let Some(c) = consts.get(src).copied() {
                    consts.insert(*dst, c);
                }
            }
            Inst::Un { op: UnOp::Neg, dst, src, .. } => {
                neg_of.insert(*dst, *src);
            }
            _ => {}
        }
    }
    // Terminator: copy-propagate and fold constant branches.
    block.term.map_uses(|r| {
        let resolved = resolve(&copies, r);
        if resolved != r {
            outcome.insts_changed = true;
            outcome.rewrites += 1;
        }
        resolved
    });
    if let Terminator::Branch { cond, then_to, else_to } = block.term {
        if let Some(c) = consts.get(&cond) {
            let target = if c.is_zero() { else_to } else { then_to };
            block.term = Terminator::Jump { target };
            outcome.cfg_changed = true;
            outcome.branches_folded += 1;
        }
    }
    outcome
}

fn resolve(copies: &HashMap<Reg, Reg>, r: Reg) -> Reg {
    // One-step resolution is enough: sources are themselves resolved when
    // their copy was recorded.
    copies.get(&r).copied().unwrap_or(r)
}

/// Attempt to rewrite one instruction given the local environment.
fn simplify(
    inst: &Inst,
    consts: &HashMap<Reg, Const>,
    neg_of: &HashMap<Reg, Reg>,
) -> Option<Inst> {
    match inst {
        Inst::Bin { op, ty, dst, lhs, rhs } => {
            let lc = consts.get(lhs).copied();
            let rc = consts.get(rhs).copied();
            // Full constant folding.
            if let (Some(a), Some(b)) = (lc, rc) {
                if let Some(v) = fold_bin_const(*op, *ty, a, b) {
                    return Some(Inst::LoadI { dst: *dst, value: v });
                }
            }
            // Identities. Integer-only where FP rounding could differ.
            match op {
                BinOp::Add => {
                    if *ty == Ty::Int {
                        if rc.is_some_and(Const::is_zero) {
                            return Some(Inst::Copy { dst: *dst, src: *lhs });
                        }
                        if lc.is_some_and(Const::is_zero) {
                            return Some(Inst::Copy { dst: *dst, src: *rhs });
                        }
                    }
                    // Subtraction reconstruction: x + (-y) => x - y.
                    if let Some(&y) = neg_of.get(rhs) {
                        return Some(Inst::Bin { op: BinOp::Sub, ty: *ty, dst: *dst, lhs: *lhs, rhs: y });
                    }
                    if let Some(&y) = neg_of.get(lhs) {
                        return Some(Inst::Bin { op: BinOp::Sub, ty: *ty, dst: *dst, lhs: *rhs, rhs: y });
                    }
                }
                BinOp::Sub => {
                    if *ty == Ty::Int {
                        if rc.is_some_and(Const::is_zero) {
                            return Some(Inst::Copy { dst: *dst, src: *lhs });
                        }
                        if lhs == rhs {
                            return Some(Inst::LoadI { dst: *dst, value: Const::Int(0) });
                        }
                    }
                    // x - (-y) => x + y.
                    if let Some(&y) = neg_of.get(rhs) {
                        return Some(Inst::Bin { op: BinOp::Add, ty: *ty, dst: *dst, lhs: *lhs, rhs: y });
                    }
                }
                BinOp::Mul => {
                    // x*1 and 1*x are exact for both types.
                    if rc.is_some_and(Const::is_one) {
                        return Some(Inst::Copy { dst: *dst, src: *lhs });
                    }
                    if lc.is_some_and(Const::is_one) {
                        return Some(Inst::Copy { dst: *dst, src: *rhs });
                    }
                    if *ty == Ty::Int {
                        if rc.is_some_and(Const::is_zero) || lc.is_some_and(Const::is_zero) {
                            return Some(Inst::LoadI { dst: *dst, value: Const::Int(0) });
                        }
                        // Strength reduction: multiply by 2 => add. (The
                        // general 2^k => shift rewrite needs a fresh
                        // register for the shift amount; ×2 is the common
                        // case in address arithmetic. Must not run before
                        // reassociation — §5.2 — and does not, by pipeline
                        // construction.)
                        if rc == Some(Const::Int(2)) {
                            return Some(shift_of(*dst, *lhs));
                        }
                        if lc == Some(Const::Int(2)) {
                            return Some(shift_of(*dst, *rhs));
                        }
                    }
                }
                BinOp::Div
                    // x/1 is exact for both types.
                    if rc.is_some_and(Const::is_one) => {
                        return Some(Inst::Copy { dst: *dst, src: *lhs });
                    }
                BinOp::Xor
                    if *ty == Ty::Int && lhs == rhs => {
                        return Some(Inst::LoadI { dst: *dst, value: Const::Int(0) });
                    }
                BinOp::And | BinOp::Or
                    if *ty == Ty::Int && lhs == rhs => {
                        return Some(Inst::Copy { dst: *dst, src: *lhs });
                    }
                _ => {}
            }
            None
        }
        Inst::Un { op, ty, dst, src } => {
            if let Some(c) = consts.get(src) {
                if let Some(v) = fold_un_const(*op, *c) {
                    return Some(Inst::LoadI { dst: *dst, value: v });
                }
            }
            // Double negation: neg(neg x) => copy x.
            if *op == UnOp::Neg {
                if let Some(&inner) = neg_of.get(src) {
                    return Some(Inst::Copy { dst: *dst, src: inner });
                }
            }
            let _ = ty;
            None
        }
        _ => None,
    }
}

fn shift_of(dst: Reg, src: Reg) -> Inst {
    Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst, lhs: src, rhs: src }
}

pub(crate) fn fold_bin_const(op: BinOp, ty: Ty, a: Const, b: Const) -> Option<Const> {
    match ty {
        Ty::Int => {
            let x = a.as_int()?;
            let y = b.as_int()?;
            Some(match op {
                BinOp::Add => Const::Int(x.wrapping_add(y)),
                BinOp::Sub => Const::Int(x.wrapping_sub(y)),
                BinOp::Mul => Const::Int(x.wrapping_mul(y)),
                BinOp::Div => {
                    if y == 0 {
                        return None; // preserve the runtime error
                    }
                    Const::Int(x.wrapping_div(y))
                }
                BinOp::Rem => {
                    if y == 0 {
                        return None;
                    }
                    Const::Int(x.wrapping_rem(y))
                }
                BinOp::Min => Const::Int(x.min(y)),
                BinOp::Max => Const::Int(x.max(y)),
                BinOp::And => Const::Int(x & y),
                BinOp::Or => Const::Int(x | y),
                BinOp::Xor => Const::Int(x ^ y),
                BinOp::Shl => Const::Int(x.wrapping_shl((y & 63) as u32)),
                BinOp::Shr => Const::Int(x.wrapping_shr((y & 63) as u32)),
                BinOp::CmpEq => Const::Int((x == y) as i64),
                BinOp::CmpNe => Const::Int((x != y) as i64),
                BinOp::CmpLt => Const::Int((x < y) as i64),
                BinOp::CmpLe => Const::Int((x <= y) as i64),
                BinOp::CmpGt => Const::Int((x > y) as i64),
                BinOp::CmpGe => Const::Int((x >= y) as i64),
            })
        }
        Ty::Float => {
            let x = a.as_float()?;
            let y = b.as_float()?;
            Some(match op {
                BinOp::Add => Const::Float(x + y),
                BinOp::Sub => Const::Float(x - y),
                BinOp::Mul => Const::Float(x * y),
                BinOp::Div => Const::Float(x / y),
                BinOp::Rem => Const::Float(x % y),
                BinOp::Min => Const::Float(x.min(y)),
                BinOp::Max => Const::Float(x.max(y)),
                BinOp::CmpEq => Const::Int((x == y) as i64),
                BinOp::CmpNe => Const::Int((x != y) as i64),
                BinOp::CmpLt => Const::Int((x < y) as i64),
                BinOp::CmpLe => Const::Int((x <= y) as i64),
                BinOp::CmpGt => Const::Int((x > y) as i64),
                BinOp::CmpGe => Const::Int((x >= y) as i64),
                _ => return None,
            })
        }
    }
}

pub(crate) fn fold_un_const(op: UnOp, c: Const) -> Option<Const> {
    Some(match (op, c) {
        (UnOp::Neg, Const::Int(v)) => Const::Int(v.wrapping_neg()),
        (UnOp::Neg, Const::Float(v)) => Const::Float(-v),
        (UnOp::Not, Const::Int(v)) => Const::Int(!v),
        (UnOp::I2F, Const::Int(v)) => Const::Float(v as f64),
        (UnOp::F2I, Const::Float(v)) => Const::Int(v as i64),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::FunctionBuilder;

    #[test]
    fn folds_constants() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let a = b.loadi(Const::Int(6));
        let c = b.loadi(Const::Int(7));
        let p = b.bin(BinOp::Mul, Ty::Int, a, c);
        b.ret(Some(p));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(
            f.blocks[0].insts[2],
            Inst::LoadI { value: Const::Int(42), .. }
        ));
    }

    #[test]
    fn preserves_division_by_zero() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let a = b.loadi(Const::Int(6));
        let z = b.loadi(Const::Int(0));
        let q = b.bin(BinOp::Div, Ty::Int, a, z);
        b.ret(Some(q));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[2], Inst::Bin { op: BinOp::Div, .. }));
    }

    #[test]
    fn integer_identities() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let z = b.loadi(Const::Int(0));
        let s = b.bin(BinOp::Add, Ty::Int, x, z); // x + 0 -> copy x
        let d = b.bin(BinOp::Sub, Ty::Int, s, s); // s - s -> 0
        b.ret(Some(d));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[1], Inst::Copy { .. }));
        assert!(matches!(f.blocks[0].insts[2], Inst::LoadI { value: Const::Int(0), .. }));
    }

    #[test]
    fn float_identities_are_conservative() {
        // x + 0.0 must NOT fold (x = -0.0 would change); x * 1.0 folds.
        let mut b = FunctionBuilder::new("f", Some(Ty::Float));
        let x = b.param(Ty::Float);
        let z = b.loadi(Const::Float(0.0));
        let one = b.loadi(Const::Float(1.0));
        let s = b.bin(BinOp::Add, Ty::Float, x, z);
        let p = b.bin(BinOp::Mul, Ty::Float, s, one);
        b.ret(Some(p));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[2], Inst::Bin { op: BinOp::Add, .. }));
        assert!(matches!(f.blocks[0].insts[3], Inst::Copy { .. }));
    }

    #[test]
    fn reconstructs_subtraction() {
        // t = neg y; z = x + t  =>  z = x - y (the §3.1 round trip).
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let t = b.un(UnOp::Neg, Ty::Int, y);
        let z = b.bin(BinOp::Add, Ty::Int, x, t);
        b.ret(Some(z));
        let mut f = b.finish();
        run(&mut f);
        let sub = &f.blocks[0].insts[1];
        assert!(matches!(sub, Inst::Bin { op: BinOp::Sub, .. }));
        assert_eq!(sub.uses(), vec![x, y]);
    }

    #[test]
    fn multiply_by_two_becomes_add() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let two = b.loadi(Const::Int(2));
        let d = b.bin(BinOp::Mul, Ty::Int, x, two);
        b.ret(Some(d));
        let mut f = b.finish();
        run(&mut f);
        let add = &f.blocks[0].insts[1];
        assert!(matches!(add, Inst::Bin { op: BinOp::Add, .. }));
        assert_eq!(add.uses(), vec![x, x]);
    }

    #[test]
    fn folds_constant_branches() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let c = b.loadi(Const::Int(0));
        let t = b.new_block();
        let e = b.new_block();
        b.branch(c, t, e);
        b.switch_to(t);
        b.ret(Some(x));
        b.switch_to(e);
        b.ret(Some(c));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].term, Terminator::Jump { target } if target == e));
    }

    #[test]
    fn copy_propagation_through_block() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let c = b.copy(x);
        let s = b.bin(BinOp::Add, Ty::Int, c, c);
        b.ret(Some(s));
        let mut f = b.finish();
        run(&mut f);
        // The add reads x directly now; DCE would remove the copy.
        assert_eq!(f.blocks[0].insts[1].uses(), vec![x, x]);
    }

    #[test]
    fn environment_invalidation_on_redefinition() {
        // x <- 1; y <- x + x (fold 2); x <- p (kills); z <- x + x (no fold)
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let x = b.new_reg(Ty::Int);
        b.push(Inst::LoadI { dst: x, value: Const::Int(1) });
        let y = b.bin(BinOp::Add, Ty::Int, x, x);
        b.copy_to(x, p);
        let z = b.bin(BinOp::Add, Ty::Int, x, x);
        let q = b.bin(BinOp::Xor, Ty::Int, y, z);
        b.ret(Some(q));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[1], Inst::LoadI { value: Const::Int(2), .. }));
        // Second add reads p (copy-propagated), not a constant.
        assert!(matches!(f.blocks[0].insts[3], Inst::Bin { op: BinOp::Add, .. }));
        assert_eq!(f.blocks[0].insts[3].uses(), vec![p, p]);
    }

    #[test]
    fn double_negation() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Float));
        let x = b.param(Ty::Float);
        let n1 = b.un(UnOp::Neg, Ty::Float, x);
        let n2 = b.un(UnOp::Neg, Ty::Float, n1);
        b.ret(Some(n2));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[1], Inst::Copy { src, .. } if src == x));
    }
}
