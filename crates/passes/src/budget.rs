//! Resource budgets for pass invocations: wall-clock deadlines,
//! fixed-point iteration caps, and instruction-growth ratio caps.
//!
//! The paper's optimizer is "a sequence of passes, where each pass is a
//! Unix filter" — and a filter that never terminates, or that floods its
//! output, wedges the whole pipe. Every fixed-point loop in this
//! workspace (`dce`, `coalesce`, `clean`, `sccp`, `gvn`, `pre`,
//! `reassoc`) therefore carries a *cooperative checkpoint*: once per
//! iteration it asks its [`Meter`] whether the invocation is still inside
//! budget, and stops with a typed [`BudgetExceeded`] instead of spinning.
//! Code growth is treated as a first-class safety property, not a
//! nicety: speculative placement and distribution can legitimately grow
//! code, so the cap is a *ratio* against the instruction count at pass
//! entry rather than an absolute size.
//!
//! Two of the three limits — iterations and growth — are exact and
//! deterministic: equal inputs trip them at equal points regardless of
//! machine load, which is what lets the fault-injection campaign and the
//! `--jobs` equivalence tests assert byte-identical behaviour. The
//! wall-clock deadline is inherently load-dependent and is therefore off
//! by default; it exists for operators (`--deadline-ms`) and for the
//! harness watchdog, not for reproducible pipelines.

use std::fmt;
use std::time::{Duration, Instant};

use epre_ir::Function;

/// Which budget dimension ran out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    WallClock,
    /// The fixed-point iteration cap was reached.
    Iterations,
    /// The function grew past the allowed ratio of its entry size.
    Growth,
}

impl BudgetKind {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BudgetKind::WallClock => "wall-clock",
            BudgetKind::Iterations => "iterations",
            BudgetKind::Growth => "growth",
        }
    }
}

/// A pass invocation ran out of budget and was stopped at a cooperative
/// checkpoint.
///
/// `spent`/`limit` share the dimension's unit: milliseconds for
/// [`BudgetKind::WallClock`], iterations for [`BudgetKind::Iterations`],
/// static operations for [`BudgetKind::Growth`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The dimension that ran out.
    pub kind: BudgetKind,
    /// What the invocation had consumed when it was stopped.
    pub spent: u64,
    /// The configured limit.
    pub limit: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let unit = match self.kind {
            BudgetKind::WallClock => "ms",
            BudgetKind::Iterations => "iteration(s)",
            BudgetKind::Growth => "op(s)",
        };
        write!(
            f,
            "{} budget exceeded: spent {} {unit} of {} allowed",
            self.kind.label(),
            self.spent,
            self.limit
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Resource limits for one pass invocation. `None` in any dimension means
/// that dimension is unlimited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    /// Wall-clock allowance per pass invocation.
    pub deadline: Option<Duration>,
    /// Cooperative-checkpoint (fixed-point iteration) cap per invocation.
    pub max_iters: Option<u64>,
    /// Instruction-growth ratio cap relative to the static operation count
    /// at pass entry (small functions get an absolute floor of
    /// [`Budget::GROWTH_FLOOR_OPS`] before the ratio applies).
    pub max_growth: Option<f64>,
}

impl Budget {
    /// Entry size floor for the growth cap: a 2-op function legitimately
    /// quadruples during SSA round trips, so ratios are taken against at
    /// least this many operations.
    pub const GROWTH_FLOOR_OPS: u64 = 16;

    /// No limits in any dimension — the plain pipeline's default, with
    /// exactly the pre-budget behaviour.
    pub const UNLIMITED: Budget = Budget { deadline: None, max_iters: None, max_growth: None };

    /// The harness default: deterministic caps generous enough that no
    /// healthy pass in the workspace comes within an order of magnitude of
    /// them, tight enough that a non-terminating or code-exploding pass is
    /// stopped in milliseconds. No wall-clock deadline (that dimension is
    /// load-dependent; see the module docs) — operators opt in via
    /// `--deadline-ms`.
    pub fn governed() -> Budget {
        Budget { deadline: None, max_iters: Some(200_000), max_growth: Some(64.0) }
    }

    /// This budget with every limit doubled — what `RetryThenSkip` grants
    /// a faulting pass on its second (fresh-clone) attempt, so a pass that
    /// merely brushed a cap gets a real second chance while a divergent
    /// one still cannot spin forever.
    pub fn relaxed(&self) -> Budget {
        Budget {
            deadline: self.deadline.map(|d| d.saturating_mul(2)),
            max_iters: self.max_iters.map(|n| n.saturating_mul(2)),
            max_growth: self.max_growth.map(|g| g * 2.0),
        }
    }

    /// Is any dimension limited?
    pub fn is_limited(&self) -> bool {
        self.deadline.is_some() || self.max_iters.is_some() || self.max_growth.is_some()
    }

    /// Start metering one pass invocation over `f`, capturing the entry
    /// size the growth ratio is measured against.
    pub fn start(&self, f: &Function) -> Meter {
        Meter {
            budget: *self,
            started: Instant::now(),
            entry_ops: (f.static_op_count() as u64).max(Self::GROWTH_FLOOR_OPS),
            ticks: 0,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::UNLIMITED
    }
}

/// How many ticks pass between wall-clock checks. Querying the OS clock
/// on every tick would dominate tight worklist loops; iteration and
/// growth checks stay exact on every tick.
const DEADLINE_STRIDE: u64 = 64;

/// The running meter of one pass invocation.
///
/// Created by [`Budget::start`]; fixed-point loops call [`Meter::tick`]
/// once per iteration, and opaque passes are held to the growth and
/// deadline dimensions after the fact via [`Meter::finish`].
#[derive(Debug, Clone)]
pub struct Meter {
    budget: Budget,
    started: Instant,
    entry_ops: u64,
    ticks: u64,
}

impl Meter {
    /// Cooperative checkpoint: call once per fixed-point iteration.
    ///
    /// Checks the iteration cap and the growth ratio exactly on every
    /// tick (both deterministic), and the wall-clock deadline every
    /// [`DEADLINE_STRIDE`] ticks.
    ///
    /// # Errors
    /// The first exceeded dimension, as a [`BudgetExceeded`].
    pub fn tick(&mut self, f: &Function) -> Result<(), BudgetExceeded> {
        self.ticks += 1;
        if let Some(limit) = self.budget.max_iters {
            if self.ticks > limit {
                return Err(BudgetExceeded { kind: BudgetKind::Iterations, spent: self.ticks, limit });
            }
        }
        self.check_growth(f)?;
        if self.ticks.is_multiple_of(DEADLINE_STRIDE) {
            self.check_deadline()?;
        }
        Ok(())
    }

    /// Exact growth check against the entry size.
    ///
    /// # Errors
    /// [`BudgetExceeded`] with kind [`BudgetKind::Growth`].
    pub fn check_growth(&self, f: &Function) -> Result<(), BudgetExceeded> {
        if let Some(ratio) = self.budget.max_growth {
            let limit = (self.entry_ops as f64 * ratio) as u64;
            let spent = f.static_op_count() as u64;
            if spent > limit {
                return Err(BudgetExceeded { kind: BudgetKind::Growth, spent, limit });
            }
        }
        Ok(())
    }

    /// Forced wall-clock check (no stride).
    ///
    /// # Errors
    /// [`BudgetExceeded`] with kind [`BudgetKind::WallClock`].
    pub fn check_deadline(&self) -> Result<(), BudgetExceeded> {
        if let Some(deadline) = self.budget.deadline {
            let elapsed = self.started.elapsed();
            if elapsed > deadline {
                return Err(BudgetExceeded {
                    kind: BudgetKind::WallClock,
                    spent: elapsed.as_millis() as u64,
                    limit: deadline.as_millis() as u64,
                });
            }
        }
        Ok(())
    }

    /// Post-hoc check for passes without cooperative checkpoints: growth
    /// and deadline, after the pass has already run. A pass that finished
    /// but blew its budget is still *reported* over budget — a deadline is
    /// a promise about latency, and a growth cap a promise about output
    /// size, whether or not the pass eventually returned.
    ///
    /// # Errors
    /// The first exceeded dimension, as a [`BudgetExceeded`].
    pub fn finish(&self, f: &Function) -> Result<(), BudgetExceeded> {
        self.check_growth(f)?;
        self.check_deadline()
    }

    /// Ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{Block, Terminator};

    fn tiny() -> Function {
        let mut f = Function::new("t", None);
        f.add_block(Block::new(Terminator::Return { value: None }));
        f
    }

    #[test]
    fn unlimited_budget_never_trips() {
        let f = tiny();
        let mut m = Budget::UNLIMITED.start(&f);
        for _ in 0..10_000 {
            m.tick(&f).unwrap();
        }
        m.finish(&f).unwrap();
    }

    #[test]
    fn iteration_cap_trips_exactly() {
        let f = tiny();
        let b = Budget { max_iters: Some(5), ..Budget::UNLIMITED };
        let mut m = b.start(&f);
        for _ in 0..5 {
            m.tick(&f).unwrap();
        }
        let e = m.tick(&f).unwrap_err();
        assert_eq!(e.kind, BudgetKind::Iterations);
        assert_eq!(e.spent, 6);
        assert_eq!(e.limit, 5);
        assert!(format!("{e}").contains("iterations budget exceeded"), "{e}");
    }

    #[test]
    fn growth_cap_measures_ratio_with_floor() {
        let mut f = tiny();
        let b = Budget { max_growth: Some(2.0), ..Budget::UNLIMITED };
        let mut m = b.start(&f); // entry floor: 16 ops -> limit 32
        // Grow the function past 32 static ops.
        for _ in 0..40 {
            f.add_block(Block::new(Terminator::Return { value: None }));
        }
        let e = m.tick(&f).unwrap_err();
        assert_eq!(e.kind, BudgetKind::Growth);
        assert_eq!(e.limit, 2 * Budget::GROWTH_FLOOR_OPS);
        assert_eq!(e.spent, 41);
    }

    #[test]
    fn deadline_trips_on_forced_check() {
        let f = tiny();
        let b = Budget { deadline: Some(Duration::ZERO), ..Budget::UNLIMITED };
        let m = b.start(&f);
        std::thread::sleep(Duration::from_millis(2));
        let e = m.check_deadline().unwrap_err();
        assert_eq!(e.kind, BudgetKind::WallClock);
    }

    #[test]
    fn relaxed_doubles_every_dimension() {
        let b = Budget {
            deadline: Some(Duration::from_millis(100)),
            max_iters: Some(10),
            max_growth: Some(4.0),
        };
        let r = b.relaxed();
        assert_eq!(r.deadline, Some(Duration::from_millis(200)));
        assert_eq!(r.max_iters, Some(20));
        assert_eq!(r.max_growth, Some(8.0));
        assert!(!Budget::UNLIMITED.is_limited());
        assert!(r.is_limited());
    }

    #[test]
    fn governed_defaults_are_finite() {
        let g = Budget::governed();
        assert!(g.max_iters.is_some() && g.max_growth.is_some());
        assert!(g.deadline.is_none(), "deadline is opt-in (nondeterministic)");
    }
}
