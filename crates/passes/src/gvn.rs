//! Partition-based global value numbering and global renaming (§3.2).
//!
//! The paper uses Alpern, Wegman & Zadeck's algorithm: start from the
//! **optimistic** assumption that all values computed by the same operator
//! are equivalent and use the statements of the program to *disprove*
//! equivalences, refining a partition of the SSA names until it stabilizes.
//! Then "rename all values to reflect these equivalences": every
//! congruence class gets one register, which
//!
//! * encodes value equivalence into the name space (two congruent
//!   expressions become *lexically identical*, so PRE sees them),
//! * establishes the §2.2 naming discipline PRE requires (each expression
//!   one name; copies — which after SSA destruction come only from
//!   φ-nodes — target *variable names*).
//!
//! Initial partition keys: constants by value; parameters, loads and calls
//! as singletons (opaque); binary/unary operators by `(op, ty)`;
//! φ-nodes by their block. Commutative operators compare operand classes
//! order-insensitively (a mild strengthening the basic AWZ formulation
//! leaves out; it matters because reassociation sorts operands by rank,
//! not by class). As in the paper, "the names are the only things changed
//! during this phase; no instructions are added, deleted, or moved" —
//! except the φs, which SSA destruction then turns into copies.

use std::collections::HashMap;

use epre_ir::{Function, Inst, Reg};
use epre_ssa::{build_ssa, destroy_ssa, SsaOptions};

use crate::budget::{Budget, BudgetExceeded};
use epre_telemetry::PassCounters;

/// What one GVN invocation proved and rewrote: the size of the final
/// congruence partition and how many operations the renaming actually
/// touched.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GvnStats {
    /// Number of congruence classes in the stabilized partition.
    pub partitions: u64,
    /// Instructions and terminators whose registers the renaming changed
    /// (the paper's "congruent ops renamed").
    pub ops_renamed: u64,
    /// Partition-refinement iterations consumed.
    pub ticks: u64,
}

/// Run GVN + renaming on `f`. The function enters and leaves non-SSA form.
/// Returns `true` unconditionally: the SSA round trip renames registers
/// even when no classes merge, so the function must be treated as changed.
pub fn run(f: &mut Function) -> bool {
    match run_budgeted(f, &Budget::UNLIMITED) {
        Ok(changed) => changed,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`run`] under a resource [`Budget`]: one cooperative checkpoint per
/// partition-refinement iteration (AWZ refinement only ever splits
/// classes, so healthy runs take at most `reg_count` iterations — a
/// budget trip means the refinement is broken or adversarial). Takes no
/// analysis cache: the pass rebuilds SSA internally.
///
/// # Errors
/// [`BudgetExceeded`] when a refinement iteration starts over budget; the
/// function is left in SSA form, un-renamed (callers needing atomicity
/// run a clone).
pub fn run_budgeted(f: &mut Function, budget: &Budget) -> Result<bool, BudgetExceeded> {
    run_budgeted_stats(f, budget).map(|_| true)
}

/// [`run_budgeted`], additionally reporting what the invocation did as a
/// [`GvnStats`].
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_budgeted_stats(f: &mut Function, budget: &Budget) -> Result<GvnStats, BudgetExceeded> {
    build_ssa(f, SsaOptions { fold_copies: true });
    let (classes, ticks) = congruence_classes_budgeted(f, budget)?;
    let mut distinct = classes.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let ops_renamed = rename(f, &classes);
    dedupe_phis(f);
    destroy_ssa(f);
    Ok(GvnStats { partitions: distinct.len() as u64, ops_renamed, ticks })
}

/// Instrumented entry point for the pipeline: [`run_budgeted_stats`] with
/// the stats folded into `counters`.
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_counted(
    f: &mut Function,
    budget: &Budget,
    counters: &mut PassCounters,
) -> Result<bool, BudgetExceeded> {
    let stats = run_budgeted_stats(f, budget)?;
    counters.add("partitions", stats.partitions);
    counters.add("ops_renamed", stats.ops_renamed);
    counters.add("ticks", stats.ticks);
    Ok(true)
}

/// Congruence class of every register of `f` (indexed by register
/// number), as computed by AWZ optimistic partition refinement — the
/// analysis half of [`run`], without the renaming.
///
/// `f` must be in SSA form: the partition keys each register by its
/// unique definition, so a register defined twice would silently keep
/// only its last definition's key. Registers with no definition map to
/// singleton classes. Two registers share a class number exactly when
/// GVN can prove they always hold the same value; this is the raw
/// material for value-based redundancy audits (see `epre-lint`).
pub fn value_classes(f: &Function) -> Vec<u32> {
    congruence_classes(f)
}

/// Initial partition key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum InitKey {
    Const(epre_ir::Const),
    Bin(epre_ir::BinOp, epre_ir::Ty),
    Un(epre_ir::UnOp, epre_ir::Ty),
    Phi(epre_ir::BlockId),
    /// Parameters, loads, calls: opaque singletons (the payload makes the
    /// key unique per definition).
    Opaque(u32),
}

/// Compute the congruence class of every register (indexed by register).
/// Registers with no definition (unused allocations) map to themselves.
fn congruence_classes(f: &Function) -> Vec<u32> {
    match congruence_classes_budgeted(f, &Budget::UNLIMITED) {
        Ok((classes, _)) => classes,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`congruence_classes`] with a cooperative checkpoint per refinement
/// iteration. Also returns the number of refinement iterations consumed.
fn congruence_classes_budgeted(
    f: &Function,
    budget: &Budget,
) -> Result<(Vec<u32>, u64), BudgetExceeded> {
    let mut meter = budget.start(f);
    let nregs = f.reg_count();
    // Gather definitions.
    #[derive(Clone)]
    enum Def {
        None,
        Param(u32),
        Inst(Inst),
    }
    let mut defs: Vec<Def> = vec![Def::None; nregs];
    for (i, &p) in f.params.iter().enumerate() {
        defs[p.index()] = Def::Param(i as u32);
    }
    for (_, block) in f.iter_blocks() {
        for inst in &block.insts {
            if let Some(d) = inst.dst() {
                defs[d.index()] = Def::Inst(inst.clone());
            }
        }
    }

    // Initial partition.
    let mut class: Vec<u32> = (0..nregs as u32).collect();
    {
        let mut key_ids: HashMap<InitKey, u32> = HashMap::new();
        let mut opaque = 0u32;
        let mut next = 0u32;
        let mut id_of = |k: InitKey, key_ids: &mut HashMap<InitKey, u32>| -> u32 {
            *key_ids.entry(k).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            })
        };
        for (r, def) in defs.iter().enumerate() {
            let key = match def {
                Def::None => {
                    // Unused register allocation: unique key.
                    opaque += 1;
                    InitKey::Opaque(u32::MAX - opaque)
                }
                Def::Param(i) => InitKey::Opaque(1_000_000 + *i),
                Def::Inst(inst) => match inst {
                    Inst::LoadI { value, .. } => InitKey::Const(*value),
                    Inst::Bin { op, ty, .. } => InitKey::Bin(*op, *ty),
                    Inst::Un { op, ty, .. } => InitKey::Un(*op, *ty),
                    Inst::Phi { .. } => {
                        let b = f
                            .iter_blocks()
                            .find(|(_, blk)| {
                                blk.phis().any(|p| p.dst() == inst.dst())
                            })
                            .map(|(b, _)| b)
                            .expect("φ lives in some block");
                        InitKey::Phi(b)
                    }
                    Inst::Load { .. } | Inst::Call { .. } => {
                        opaque += 1;
                        InitKey::Opaque(2_000_000 + opaque)
                    }
                    Inst::Copy { .. } => unreachable!("copies folded during SSA construction"),
                    Inst::Store { .. } => unreachable!("stores define nothing"),
                },
            };
            class[r] = id_of(key, &mut key_ids);
        }
    }

    // Refinement to a fixed point: split classes whose members disagree on
    // operand classes.
    loop {
        meter.tick(f)?;
        let mut sig_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
        let mut new_class = vec![0u32; nregs];
        let mut next = 0u32;
        for (r, def) in defs.iter().enumerate() {
            let ops: Vec<u32> = match def {
                Def::None | Def::Param(_) => vec![],
                Def::Inst(inst) => match inst {
                    Inst::Bin { op, lhs, rhs, .. } => {
                        let (a, b) = (class[lhs.index()], class[rhs.index()]);
                        if op.is_commutative() && b < a {
                            vec![b, a]
                        } else {
                            vec![a, b]
                        }
                    }
                    Inst::Un { src, .. } => vec![class[src.index()]],
                    Inst::Phi { args, .. } => {
                        // Align by predecessor id so positional comparison
                        // is meaningful across φs of the same block.
                        let mut pairs: Vec<(u32, u32)> =
                            args.iter().map(|&(b, v)| (b.0, class[v.index()])).collect();
                        pairs.sort_unstable();
                        pairs.into_iter().map(|(_, c)| c).collect()
                    }
                    _ => vec![],
                },
            };
            let sig = (class[r], ops);
            let id = *sig_ids.entry(sig).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            new_class[r] = id;
        }
        if new_class == class {
            break;
        }
        class = new_class;
    }
    let ticks = meter.ticks();
    Ok((class, ticks))
}

/// Rewrite every definition and use so each class has exactly one
/// register. Returns how many instructions and terminators actually
/// changed.
fn rename(f: &mut Function, class: &[u32]) -> u64 {
    // Representative per class: a parameter if the class has one (the
    // signature must not change), otherwise the lowest-numbered member.
    let mut rep: HashMap<u32, Reg> = HashMap::new();
    for r in (0..f.reg_count()).rev() {
        rep.insert(class[r], Reg(r as u32));
    }
    for &p in &f.params {
        rep.insert(class[p.index()], p);
    }
    let map = |r: Reg| rep[&class[r.index()]];

    let mut renamed = 0u64;
    for block in &mut f.blocks {
        for inst in &mut block.insts {
            let before = inst.clone();
            inst.map_uses(map);
            if let Some(d) = inst.dst() {
                inst.set_dst(map(d));
            }
            if *inst != before {
                renamed += 1;
            }
        }
        let before = block.term.clone();
        block.term.map_uses(map);
        if block.term != before {
            renamed += 1;
        }
    }
    renamed
}

/// Drop duplicate φs (same destination and arguments) left by renaming.
fn dedupe_phis(f: &mut Function) {
    for block in &mut f.blocks {
        let n = block.phi_count();
        let mut seen: Vec<Inst> = Vec::new();
        let mut keep = vec![true; block.insts.len()];
        for (inst, k) in block.insts.iter().zip(&mut keep).take(n) {
            if seen.contains(inst) {
                *k = false;
            } else {
                seen.push(inst.clone());
            }
        }
        let mut it = keep.iter();
        block.insts.retain(|_| *it.next().unwrap());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    /// The §2.2 example: x = y + z; a = y; b = a + z. After copy folding
    /// `a` is `y`, so `a + z` is congruent to `y + z`; renaming gives both
    /// computations the same name and PRE can see the redundancy.
    #[test]
    fn paper_2_2_naming_example() {
        let mut b = FunctionBuilder::new("n", Some(Ty::Int));
        let y = b.param(Ty::Int);
        let z = b.param(Ty::Int);
        let t1 = b.bin(BinOp::Add, Ty::Int, y, z); // x = y + z
        let a = b.copy(y); // a = y
        let t2 = b.bin(BinOp::Add, Ty::Int, a, z); // b = a + z
        let s = b.bin(BinOp::Mul, Ty::Int, t1, t2);
        b.ret(Some(s));
        let mut f = b.finish();
        run(&mut f);
        let adds: Vec<&Inst> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .collect();
        assert_eq!(adds.len(), 2);
        assert_eq!(adds[0], adds[1], "congruent expressions renamed identically: {f}");
        assert!(f.verify().is_ok());
    }

    #[test]
    fn constants_by_value() {
        let mut b = FunctionBuilder::new("c", Some(Ty::Int));
        let c1 = b.loadi(Const::Int(7));
        let c2 = b.loadi(Const::Int(7));
        let c3 = b.loadi(Const::Int(8));
        let s = b.bin(BinOp::Add, Ty::Int, c1, c2);
        let t = b.bin(BinOp::Add, Ty::Int, s, c3);
        b.ret(Some(t));
        let mut f = b.finish();
        run(&mut f);
        let loadis: Vec<&Inst> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::LoadI { .. }))
            .collect();
        // The two 7s share a destination register; 8 differs.
        let d7: Vec<_> = loadis
            .iter()
            .filter(|i| matches!(i, Inst::LoadI { value: Const::Int(7), .. }))
            .map(|i| i.dst())
            .collect();
        assert_eq!(d7[0], d7[1]);
        let d8 = loadis
            .iter()
            .find(|i| matches!(i, Inst::LoadI { value: Const::Int(8), .. }))
            .unwrap()
            .dst();
        assert_ne!(d7[0], d8);
    }

    #[test]
    fn loads_are_opaque() {
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let v1 = b.load(Ty::Int, p);
        let v2 = b.load(Ty::Int, p);
        let s = b.bin(BinOp::Sub, Ty::Int, v1, v2);
        b.ret(Some(s));
        let mut f = b.finish();
        run(&mut f);
        // The two loads keep distinct names (memory may have changed).
        let loads: Vec<_> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Load { .. }))
            .map(|i| i.dst())
            .collect();
        assert_ne!(loads[0], loads[1]);
    }

    #[test]
    fn optimistic_congruence_through_loop_phis() {
        // Two loop variables with identical structure: i = j always.
        //   i = 0; j = 0; while (p) { i = i + 1; j = j + 1 }
        // Optimistic GVN proves i ≅ j; pessimistic approaches cannot.
        let mut b = FunctionBuilder::new("o", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let i = b.new_reg(Ty::Int);
        let j = b.new_reg(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(i, z);
        b.copy_to(j, z);
        b.jump(head);
        b.switch_to(head);
        b.branch(p, body, exit);
        b.switch_to(body);
        let one = b.loadi(Const::Int(1));
        let i2 = b.bin(BinOp::Add, Ty::Int, i, one);
        b.copy_to(i, i2);
        let one2 = b.loadi(Const::Int(1));
        let j2 = b.bin(BinOp::Add, Ty::Int, j, one2);
        b.copy_to(j, j2);
        b.jump(head);
        b.switch_to(exit);
        let d = b.bin(BinOp::Sub, Ty::Int, i, j);
        b.ret(Some(d));
        let mut f = b.finish();
        run(&mut f);
        // After GVN the subtraction's operands are the same register.
        let sub = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .find(|i| matches!(i, Inst::Bin { op: BinOp::Sub, .. }))
            .unwrap();
        let u = sub.uses();
        assert_eq!(u[0], u[1], "i and j proven congruent: {f}");
        // Semantics preserved.
        let mut m = epre_ir::Module::new();
        m.functions.push(f);
        let mut it = epre_interp::Interpreter::new(&m);
        assert_eq!(
            it.run("o", &[epre_interp::Value::Int(0)]).unwrap(),
            Some(epre_interp::Value::Int(0))
        );
    }

    #[test]
    fn commutative_operands_congruent() {
        let mut b = FunctionBuilder::new("k", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let s1 = b.bin(BinOp::Add, Ty::Int, x, y);
        let s2 = b.bin(BinOp::Add, Ty::Int, y, x);
        let m = b.bin(BinOp::Mul, Ty::Int, s1, s2);
        b.ret(Some(m));
        let mut f = b.finish();
        run(&mut f);
        let adds: Vec<_> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .map(|i| i.dst())
            .collect();
        assert_eq!(adds[0], adds[1]);
    }

    #[test]
    fn non_commutative_order_matters() {
        let mut b = FunctionBuilder::new("nc", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let s1 = b.bin(BinOp::Sub, Ty::Int, x, y);
        let s2 = b.bin(BinOp::Sub, Ty::Int, y, x);
        let m = b.bin(BinOp::Mul, Ty::Int, s1, s2);
        b.ret(Some(m));
        let mut f = b.finish();
        run(&mut f);
        let subs: Vec<_> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Sub, .. }))
            .map(|i| i.dst())
            .collect();
        assert_ne!(subs[0], subs[1]);
    }

    #[test]
    fn preserves_semantics_on_branchy_code() {
        // x = a+b in one arm; y = a+b in the other; use after join.
        let mut b = FunctionBuilder::new("s", Some(Ty::Int));
        let a = b.param(Ty::Int);
        let c = b.param(Ty::Int);
        let p = b.param(Ty::Int);
        let x = b.new_reg(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(p, t, e);
        b.switch_to(t);
        let s1 = b.bin(BinOp::Add, Ty::Int, a, c);
        b.copy_to(x, s1);
        b.jump(j);
        b.switch_to(e);
        let s2 = b.bin(BinOp::Mul, Ty::Int, a, c);
        b.copy_to(x, s2);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        assert!(f.verify().is_ok());
        let mut m = epre_ir::Module::new();
        m.functions.push(f);
        for p in [0i64, 1] {
            let mut it = epre_interp::Interpreter::new(&m);
            let r = it
                .run(
                    "s",
                    &[
                        epre_interp::Value::Int(6),
                        epre_interp::Value::Int(7),
                        epre_interp::Value::Int(p),
                    ],
                )
                .unwrap();
            assert_eq!(r, Some(epre_interp::Value::Int(if p == 0 { 42 } else { 13 })));
        }
    }
}
