//! The two weaker redundancy eliminators of the §5.3 hierarchy.
//!
//! The paper compares three approaches (assuming reassociation and GVN
//! have already canonicalized the name space):
//!
//! 1. **Dominator CSE** — Alpern, Wegman & Zadeck's suggestion: "if a
//!    value x is computed at two points p and q, and p dominates q, then
//!    the computation at q is redundant and may be deleted". It cannot
//!    remove the if-then-else redundancy of §2's first example.
//! 2. **AVAIL CSE** — classic global common-subexpression elimination on
//!    available expressions: removes *all* full redundancies.
//! 3. **PRE** — removes full and many partial redundancies (module
//!    [`crate::pre`]).
//!
//! The `hierarchy` benchmark regenerates the containment experimentally:
//! on every suite routine, dynamic counts satisfy
//! `dominator ≥ avail ≥ pre`.
//!
//! Both implementations here are kill-aware and lexical, operating on the
//! same [`ExprUniverse`] as PRE, and both delete only *disciplined*
//! expressions (single canonical target name) — deletion without a
//! replacement copy is then sound exactly as in PRE.

use epre_analysis::{solve, BitSet, Direction, ExprUniverse, LocalPredicates, Meet};
use epre_cfg::{Cfg, Dominators};
use epre_ir::{BlockId, Function};

/// Which availability evidence the CSE pass may use.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CseScope {
    /// Evidence restricted to dominating computations (hierarchy level 1).
    Dominators,
    /// Full available-expressions data flow (hierarchy level 2).
    Available,
}

/// Run global CSE with the given evidence scope. Returns true if any
/// instruction was deleted.
pub fn run(f: &mut Function, scope: CseScope) -> bool {
    debug_assert!(f.blocks.iter().all(|b| b.phi_count() == 0), "cse expects φ-free code");
    let cfg = Cfg::new(f);
    let universe = ExprUniverse::new(f);
    if universe.is_empty() {
        return false;
    }
    let cap = universe.len();
    let lp = LocalPredicates::new(f, &universe);

    let mut disciplined = BitSet::new(cap);
    for (e, _) in universe.iter() {
        if universe.is_disciplined(e) {
            disciplined.insert(e.index());
        }
    }

    let kill: Vec<BitSet> = lp
        .transp
        .iter()
        .map(|t| {
            let mut k = BitSet::full(cap);
            k.difference_with(t);
            k
        })
        .collect();
    let avail = solve(&cfg, Direction::Forward, Meet::Intersection, &lp.comp, &kill);

    // For the dominator variant, availability evidence must additionally
    // come from a dominating computation: restrict AVIN(b) to expressions
    // downward-exposed in some strict dominator of b (conservatively, with
    // the data-flow fact already ensuring no kill on any path).
    let dom = Dominators::new(f, &cfg);
    let avin_at = |b: BlockId| -> BitSet {
        let mut s = avail.ins[b.index()].clone();
        if scope == CseScope::Dominators {
            let mut from_dominator = BitSet::new(cap);
            let mut d = dom.idom(b);
            while let Some(dd) = d {
                from_dominator.union_with(&lp.comp[dd.index()]);
                if dd == BlockId::ENTRY {
                    break;
                }
                d = dom.idom(dd);
            }
            s.intersect_with(&from_dominator);
        }
        s
    };

    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let bid = BlockId(bi as u32);
        if !dom.is_reachable(bid) {
            continue;
        }
        // Walk the block with the set of currently-available expressions.
        let mut have = avin_at(bid);
        have.intersect_with(&disciplined);
        let block = &mut f.blocks[bi];
        let mut keep = vec![true; block.insts.len()];
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(e) = universe.id_of_inst(inst) {
                if universe.is_disciplined(e) {
                    if have.contains(e.index()) {
                        keep[i] = false; // value already in its register
                        changed = true;
                    } else {
                        have.insert(e.index());
                    }
                }
            }
            if let Some(d) = inst.dst() {
                for &e in universe.used_by(d) {
                    have.remove(e.index());
                }
            }
        }
        let mut it = keep.iter();
        block.insts.retain(|_| *it.next().unwrap());
    }
    changed
}

/// Convenience wrapper: dominator-scoped CSE.
pub fn run_dominator(f: &mut Function) -> bool {
    run(f, CseScope::Dominators)
}

/// Convenience wrapper: available-expressions CSE.
pub fn run_available(f: &mut Function) -> bool {
    run(f, CseScope::Available)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, FunctionBuilder, Inst, Reg, Ty};

    fn count_adds(f: &Function) -> usize {
        f.blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .count()
    }

    /// §2's first example: x+y in both arms of an if and after the join.
    /// AVAIL CSE removes the join copy; dominator CSE cannot.
    fn branchy() -> (Function, Reg) {
        let mut b = FunctionBuilder::new("h", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let p = b.param(Ty::Int);
        let n = b.new_reg(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(p, t, e);
        b.switch_to(t);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.jump(j);
        b.switch_to(e);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.jump(j);
        b.switch_to(j);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.ret(Some(n));
        (b.finish(), n)
    }

    #[test]
    fn avail_handles_if_then_else_dominator_does_not() {
        let (mut f1, _) = branchy();
        run_dominator(&mut f1);
        assert_eq!(count_adds(&f1), 3, "no arm dominates the join");

        let (mut f2, _) = branchy();
        run_available(&mut f2);
        assert_eq!(count_adds(&f2), 2, "available on both paths: join copy deleted");
    }

    /// Straight-line redundancy: both variants handle it.
    #[test]
    fn dominator_handles_straight_line() {
        let mk = || {
            let mut b = FunctionBuilder::new("s", Some(Ty::Int));
            let x = b.param(Ty::Int);
            let y = b.param(Ty::Int);
            let n = b.new_reg(Ty::Int);
            let b2 = b.new_block();
            b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
            b.jump(b2);
            b.switch_to(b2);
            b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
            b.ret(Some(n));
            b.finish()
        };
        let mut f = mk();
        run_dominator(&mut f);
        assert_eq!(count_adds(&f), 1);
        let mut f = mk();
        run_available(&mut f);
        assert_eq!(count_adds(&f), 1);
    }

    /// Neither variant may delete across a kill.
    #[test]
    fn kills_respected() {
        let mut b = FunctionBuilder::new("k", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let n = b.new_reg(Ty::Int);
        let b2 = b.new_block();
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.jump(b2);
        b.switch_to(b2);
        let z = b.loadi(epre_ir::Const::Int(0));
        b.copy_to(x, z);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        b.ret(Some(n));
        let mut f = b.finish();
        run_available(&mut f);
        assert_eq!(count_adds(&f), 2);
    }

    /// Neither variant hoists loop invariants (that is PRE's domain):
    /// containment is strict.
    #[test]
    fn no_loop_invariant_motion() {
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let i = b.new_reg(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(epre_ir::Const::Int(0));
        b.copy_to(i, z);
        b.jump(head);
        b.switch_to(head);
        let c = b.bin(BinOp::CmpLt, Ty::Int, i, x);
        b.branch(c, body, exit);
        b.switch_to(body);
        let n = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: n, lhs: x, rhs: y });
        let i2 = b.bin(BinOp::Add, Ty::Int, i, n);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        let before = count_adds(&f);
        run_available(&mut f);
        assert_eq!(count_adds(&f), before, "x+y stays in the loop under AVAIL CSE");
    }

    #[test]
    fn undisciplined_left_alone() {
        let mut b = FunctionBuilder::new("u", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let s1 = b.bin(BinOp::Add, Ty::Int, x, y); // fresh targets
        let s2 = b.bin(BinOp::Add, Ty::Int, x, y);
        let m = b.bin(BinOp::Mul, Ty::Int, s1, s2);
        b.ret(Some(m));
        let mut f = b.finish();
        run_available(&mut f);
        assert_eq!(count_adds(&f), 2);
    }
}
