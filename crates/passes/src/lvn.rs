//! Hash-based local value numbering.
//!
//! §4.1 lists "hash-based value numbering" among the optimizer's *missing*
//! passes ("it may be that our results understate the eventual benefits …
//! hash-based value numbering should also benefit from reassociation").
//! This module supplies it as an extension: within each block, pure
//! expressions are numbered by `(op, ty, operand value numbers)` — with
//! commutative operand canonicalization — and a recomputation of an
//! already-available value becomes a copy. The ablation benchmark
//! `hierarchy` measures its marginal effect on top of each optimization
//! level.

use std::collections::HashMap;

use epre_ir::{Const, Function, Inst, Reg};

use crate::budget::{Budget, BudgetExceeded};
use epre_telemetry::PassCounters;

/// Value number.
type Vn = u32;

/// What one LVN invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LvnStats {
    /// Redundant recomputations deleted outright (value already in its
    /// canonical home register).
    pub redundant_deleted: u64,
    /// Recomputations rewritten into copies from the canonical home.
    pub copies_rewritten: u64,
}

impl LvnStats {
    /// Did the invocation change the function at all?
    pub fn changed(&self) -> bool {
        self.redundant_deleted + self.copies_rewritten > 0
    }
}

/// Run local value numbering over every block. Returns true if any
/// instruction was rewritten or deleted.
pub fn run(f: &mut Function) -> bool {
    run_stats(f).changed()
}

/// [`run`], additionally reporting what the invocation did as an
/// [`LvnStats`].
pub fn run_stats(f: &mut Function) -> LvnStats {
    debug_assert!(f.blocks.iter().all(|b| b.phi_count() == 0), "lvn expects φ-free code");
    let mut stats = LvnStats::default();
    for block in &mut f.blocks {
        number_block(block, &mut stats);
    }
    stats
}

/// Instrumented entry point for the pipeline: [`run_stats`] with the
/// stats folded into `counters`, held to the growth and deadline budget
/// dimensions post-hoc (LVN is a single bounded sweep — there is no loop
/// to checkpoint cooperatively).
///
/// # Errors
/// [`BudgetExceeded`] when the post-hoc check finds the sweep over
/// budget.
pub fn run_counted(
    f: &mut Function,
    budget: &Budget,
    counters: &mut PassCounters,
) -> Result<bool, BudgetExceeded> {
    let meter = budget.is_limited().then(|| budget.start(f));
    let stats = run_stats(f);
    if let Some(meter) = meter {
        meter.finish(f)?;
    }
    counters.add("redundant_deleted", stats.redundant_deleted);
    counters.add("copies_rewritten", stats.copies_rewritten);
    Ok(stats.changed())
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum VnKey {
    Const(Const),
    Bin(epre_ir::BinOp, epre_ir::Ty, Vn, Vn),
    Un(epre_ir::UnOp, epre_ir::Ty, Vn),
}

fn number_block(block: &mut epre_ir::Block, stats: &mut LvnStats) {
    let mut next: Vn = 0;
    // Value number currently held by each register.
    let mut vn_of_reg: HashMap<Reg, Vn> = HashMap::new();
    // First register still holding each computed value.
    let mut reg_of_vn: HashMap<Vn, Reg> = HashMap::new();
    let mut vn_of_key: HashMap<VnKey, Vn> = HashMap::new();

    let fresh = |vn_of_reg: &mut HashMap<Reg, Vn>, r: Reg, next: &mut Vn| {
        let vn = *next;
        *next += 1;
        vn_of_reg.insert(r, vn);
        vn
    };

    // Instructions to delete: redundant recomputations into the register
    // that already canonically holds the value (the common shape after
    // GVN renaming gives every occurrence of an expression one name).
    let mut keep = vec![true; block.insts.len()];

    for (idx, inst) in block.insts.iter_mut().enumerate() {
        // Value-number the operands (unknown registers get fresh numbers).
        let mut vn_of = |r: Reg, vn_of_reg: &mut HashMap<Reg, Vn>, next: &mut Vn| -> Vn {
            if let Some(&v) = vn_of_reg.get(&r) {
                v
            } else {
                let v = *next;
                *next += 1;
                vn_of_reg.insert(r, v);
                // The register itself canonically holds this unknown value.
                reg_of_vn.entry(v).or_insert(r);
                v
            }
        };

        let key = match inst {
            Inst::LoadI { value, .. } => Some(VnKey::Const(*value)),
            Inst::Bin { op, ty, lhs, rhs, .. } => {
                let mut a = vn_of(*lhs, &mut vn_of_reg, &mut next);
                let mut b = vn_of(*rhs, &mut vn_of_reg, &mut next);
                if op.is_commutative() && b < a {
                    std::mem::swap(&mut a, &mut b);
                }
                Some(VnKey::Bin(*op, *ty, a, b))
            }
            Inst::Un { op, ty, src, .. } => {
                let s = vn_of(*src, &mut vn_of_reg, &mut next);
                Some(VnKey::Un(*op, *ty, s))
            }
            Inst::Copy { dst, src } => {
                let s = vn_of(*src, &mut vn_of_reg, &mut next);
                let d = *dst;
                vn_of_reg.insert(d, s);
                // Do not make d canonical; the source stays.
                continue;
            }
            _ => None,
        };

        match (key, inst.dst()) {
            (Some(key), Some(d)) => {
                if let Some(&vn) = vn_of_key.get(&key) {
                    // Redundant: the value already lives in a register.
                    if let Some(&home) = reg_of_vn.get(&vn) {
                        if home == d {
                            // Recomputation into its own canonical home:
                            // a pure no-op, delete it.
                            keep[idx] = false;
                            stats.redundant_deleted += 1;
                        } else {
                            *inst = Inst::Copy { dst: d, src: home };
                            stats.copies_rewritten += 1;
                        }
                        vn_of_reg.insert(d, vn);
                        continue;
                    }
                }
                let vn = fresh(&mut vn_of_reg, d, &mut next);
                vn_of_key.insert(key, vn);
                reg_of_vn.insert(vn, d);
            }
            _ => {
                // Loads, calls: result is a new unknown value.
                if let Some(d) = inst.dst() {
                    let vn = fresh(&mut vn_of_reg, d, &mut next);
                    reg_of_vn.insert(vn, d);
                }
            }
        }

        // A redefined register invalidates canonical homes pointing at it.
        if let Some(d) = inst.dst() {
            for (vn, home) in reg_of_vn.clone() {
                if home == d && vn_of_reg.get(&d) != Some(&vn) {
                    reg_of_vn.remove(&vn);
                }
            }
        }
    }
    let mut it = keep.iter();
    block.insts.retain(|_| *it.next().unwrap());
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, FunctionBuilder, Ty};

    #[test]
    fn second_computation_becomes_copy() {
        let mut b = FunctionBuilder::new("v", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let s1 = b.bin(BinOp::Add, Ty::Int, x, y);
        let s2 = b.bin(BinOp::Add, Ty::Int, x, y);
        let m = b.bin(BinOp::Mul, Ty::Int, s1, s2);
        b.ret(Some(m));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[1], Inst::Copy { .. }));
    }

    #[test]
    fn commutativity_recognized() {
        let mut b = FunctionBuilder::new("c", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let s1 = b.bin(BinOp::Add, Ty::Int, x, y);
        let s2 = b.bin(BinOp::Add, Ty::Int, y, x);
        let m = b.bin(BinOp::Mul, Ty::Int, s1, s2);
        b.ret(Some(m));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[1], Inst::Copy { .. }));
    }

    #[test]
    fn copies_extend_value_tracking() {
        // t = x + y; c = copy t; u = x + y — u sees the value through c.
        let mut b = FunctionBuilder::new("k", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let t = b.bin(BinOp::Add, Ty::Int, x, y);
        let _c = b.copy(t);
        let u = b.bin(BinOp::Add, Ty::Int, x, y);
        b.ret(Some(u));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[2], Inst::Copy { src, .. } if src == t));
    }

    #[test]
    fn redefinition_kills_availability() {
        // n = x + y; x = 0 (kills); n2 = x + y must stay a real add.
        let mut b = FunctionBuilder::new("r", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let _n = b.bin(BinOp::Add, Ty::Int, x, y);
        let z = b.loadi(epre_ir::Const::Int(0));
        b.copy_to(x, z);
        let n2 = b.bin(BinOp::Add, Ty::Int, x, y);
        b.ret(Some(n2));
        let mut f = b.finish();
        run(&mut f);
        assert!(
            matches!(f.blocks[0].insts[3], Inst::Bin { op: BinOp::Add, .. }),
            "x changed; x+y is a new value: {f}"
        );
    }

    #[test]
    fn loads_never_number() {
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let v1 = b.load(Ty::Int, p);
        let v2 = b.load(Ty::Int, p);
        let s = b.bin(BinOp::Add, Ty::Int, v1, v2);
        b.ret(Some(s));
        let mut f = b.finish();
        run(&mut f);
        let loads =
            f.blocks[0].insts.iter().filter(|i| matches!(i, Inst::Load { .. })).count();
        assert_eq!(loads, 2);
    }

    #[test]
    fn constants_share_a_number() {
        let mut b = FunctionBuilder::new("n", Some(Ty::Int));
        let c1 = b.loadi(epre_ir::Const::Int(5));
        let c2 = b.loadi(epre_ir::Const::Int(5));
        let s = b.bin(BinOp::Add, Ty::Int, c1, c2);
        b.ret(Some(s));
        let mut f = b.finish();
        run(&mut f);
        assert!(matches!(f.blocks[0].insts[1], Inst::Copy { .. }));
    }
}
