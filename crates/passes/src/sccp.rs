//! Sparse conditional constant propagation (Wegman–Zadeck).
//!
//! The baseline's "global constant propagation \[26\]". The pass builds SSA
//! internally (with copy folding), runs the classic two-worklist SCCP over
//! the lattice ⊤ → constant → ⊥, rewrites registers proven constant into
//! `loadi`s, folds conditional branches whose condition is constant, and
//! destroys SSA again — a self-contained filter like every pass in the
//! paper's optimizer.
//!
//! Constant folding here mirrors the interpreter exactly (including *not*
//! folding integer division by zero, which must still trap at run time).

use std::collections::HashMap;

use epre_analysis::AnalysisCache;
use epre_ir::{BlockId, Const, Function, Inst, Reg, Terminator};
use epre_ssa::{build_ssa, destroy_ssa, SsaOptions};

use crate::budget::{Budget, BudgetExceeded};
use crate::peephole::{fold_bin_const, fold_un_const};
use epre_telemetry::PassCounters;

/// What one SCCP invocation proved: operations rewritten to `loadi` and
/// conditional branches folded to jumps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SccpStats {
    /// Instructions rewritten into `loadi` of a proven constant.
    pub ops_folded: u64,
    /// Conditional branches folded into unconditional jumps.
    pub branches_folded: u64,
    /// Worklist pops consumed.
    pub ticks: u64,
}

/// Lattice value for one SSA name.
#[derive(Copy, Clone, PartialEq, Debug)]
enum Lattice {
    /// No evidence yet (optimistic).
    Top,
    /// Proven constant.
    Val(Const),
    /// Proven varying.
    Bottom,
}

impl Lattice {
    fn meet(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Top, x) | (x, Lattice::Top) => x,
            (Lattice::Val(a), Lattice::Val(b)) if a == b => Lattice::Val(a),
            _ => Lattice::Bottom,
        }
    }
}

/// Run SCCP on `f`. Returns `true` unconditionally: the internal SSA
/// round trip renames registers even when no constant propagates, so the
/// function must be treated as changed.
pub fn run(f: &mut Function) -> bool {
    match run_budgeted(f, &Budget::UNLIMITED) {
        Ok(changed) => changed,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`run`] under a resource [`Budget`]: one cooperative checkpoint per
/// worklist pop of the two-worklist propagation (the only part of the
/// pass whose trip count depends on lattice convergence). Takes no
/// analysis cache: the pass rebuilds SSA internally, so nothing cached
/// for the incoming function survives anyway.
///
/// # Errors
/// [`BudgetExceeded`] when a pop starts over budget; the function is left
/// mid-transform, possibly still in SSA form (callers needing atomicity
/// run a clone).
pub fn run_budgeted(f: &mut Function, budget: &Budget) -> Result<bool, BudgetExceeded> {
    run_budgeted_stats(f, budget).map(|_| true)
}

/// Instrumented entry point for the pipeline: [`run_budgeted_stats`] with
/// the stats folded into `counters`.
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_counted(
    f: &mut Function,
    budget: &Budget,
    counters: &mut PassCounters,
) -> Result<bool, BudgetExceeded> {
    let stats = run_budgeted_stats(f, budget)?;
    counters.add("ops_folded", stats.ops_folded);
    counters.add("branches_folded", stats.branches_folded);
    counters.add("ticks", stats.ticks);
    Ok(true)
}

/// [`run_budgeted`], additionally reporting what the invocation did as an
/// [`SccpStats`].
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_budgeted_stats(f: &mut Function, budget: &Budget) -> Result<SccpStats, BudgetExceeded> {
    let mut stats = SccpStats::default();
    build_ssa(f, SsaOptions { fold_copies: true });
    let mut meter = budget.start(f);

    let nregs = f.reg_count();
    let mut value: Vec<Lattice> = vec![Lattice::Top, Lattice::Top]
        .into_iter()
        .cycle()
        .take(nregs)
        .collect();
    for &p in &f.params {
        value[p.index()] = Lattice::Bottom;
    }

    // def site and use sites per register.
    let mut def_of: HashMap<Reg, (BlockId, usize)> = HashMap::new();
    let mut uses_of: HashMap<Reg, Vec<(BlockId, usize)>> = HashMap::new();
    for (bid, block) in f.iter_blocks() {
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.dst() {
                def_of.insert(d, (bid, i));
            }
            for u in inst.uses() {
                uses_of.entry(u).or_default().push((bid, i));
            }
        }
    }

    // Executable edges and visited blocks.
    let n = f.blocks.len();
    let mut edge_exec: HashMap<(BlockId, BlockId), bool> = HashMap::new();
    let mut block_visited = vec![false; n];
    let mut flow_work: Vec<(BlockId, BlockId)> = Vec::new();
    let mut ssa_work: Vec<Reg> = Vec::new();

    // Virtual entry edge.
    let entry = BlockId::ENTRY;
    block_visited[entry.index()] = true;
    let eval_block = |f: &Function,
                          b: BlockId,
                          value: &mut Vec<Lattice>,
                          ssa_work: &mut Vec<Reg>,
                          flow_work: &mut Vec<(BlockId, BlockId)>,
                          edge_exec: &HashMap<(BlockId, BlockId), bool>| {
        for (i, inst) in f.block(b).insts.iter().enumerate() {
            visit_inst(f, b, i, inst, value, ssa_work, edge_exec);
        }
        visit_terminator(f, b, value, flow_work, edge_exec);
    };
    eval_block(f, entry, &mut value, &mut ssa_work, &mut flow_work, &edge_exec);

    while !flow_work.is_empty() || !ssa_work.is_empty() {
        while let Some((from, to)) = flow_work.pop() {
            meter.tick(f)?;
            if *edge_exec.get(&(from, to)).unwrap_or(&false) {
                continue;
            }
            edge_exec.insert((from, to), true);
            if !block_visited[to.index()] {
                block_visited[to.index()] = true;
                eval_block(f, to, &mut value, &mut ssa_work, &mut flow_work, &edge_exec);
            } else {
                // Re-evaluate only the φs (a new incoming edge).
                for (i, inst) in f.block(to).insts.iter().enumerate() {
                    if matches!(inst, Inst::Phi { .. }) {
                        visit_inst(f, to, i, inst, &mut value, &mut ssa_work, &edge_exec);
                    } else {
                        break;
                    }
                }
            }
        }
        while let Some(r) = ssa_work.pop() {
            meter.tick(f)?;
            if let Some(sites) = uses_of.get(&r) {
                for &(b, i) in sites {
                    if !block_visited[b.index()] {
                        continue;
                    }
                    let inst = &f.block(b).insts[i];
                    visit_inst(f, b, i, inst, &mut value, &mut ssa_work, &edge_exec);
                }
            }
            // The register may also feed a terminator.
            for (bid, block) in f.iter_blocks() {
                if block_visited[bid.index()] && block.term.uses().contains(&r) {
                    visit_terminator(f, bid, &mut value, &mut flow_work, &edge_exec);
                }
            }
        }
    }

    // Rewrite: constant definitions become loadi; constant branches fold.
    for (bid, block) in f.blocks.iter_mut().enumerate() {
        for inst in &mut block.insts {
            if matches!(inst, Inst::Call { .. } | Inst::Store { .. } | Inst::Load { .. }) {
                continue; // side effects / memory stay
            }
            if let Some(d) = inst.dst() {
                if let Lattice::Val(c) = value[d.index()] {
                    let folded = Inst::LoadI { dst: d, value: c };
                    if *inst != folded {
                        stats.ops_folded += 1;
                    }
                    *inst = folded;
                }
            }
        }
        if let Terminator::Branch { cond, then_to, else_to } = block.term {
            if let Lattice::Val(c) = value[cond.index()] {
                let target = if c.is_zero() { else_to } else { then_to };
                block.term = Terminator::Jump { target };
                stats.branches_folded += 1;
            }
        }
        let _ = bid;
    }
    stats.ticks = meter.ticks();

    // Unreachable blocks may now contain φs naming removed edges; drop
    // unreachable blocks before SSA destruction. Both cleanups need the
    // post-folding CFG; one shared cache builds it at most twice (and only
    // once when nothing was unreachable) instead of three times.
    let mut cache = AnalysisCache::new();
    drop_unreachable_with_phis(f, &mut cache);
    prune_phi_args_of_removed_edges(f, &mut cache);
    destroy_ssa(f);
    Ok(stats)
}

fn visit_inst(
    _f: &Function,
    b: BlockId,
    _i: usize,
    inst: &Inst,
    value: &mut [Lattice],
    ssa_work: &mut Vec<Reg>,
    edge_exec: &HashMap<(BlockId, BlockId), bool>,
) {
    let Some(d) = inst.dst() else { return };
    let old = value[d.index()];
    if old == Lattice::Bottom {
        return;
    }
    let new = match inst {
        Inst::LoadI { value: c, .. } => Lattice::Val(*c),
        Inst::Copy { src, .. } => value[src.index()],
        Inst::Bin { op, ty, lhs, rhs, .. } => {
            match (value[lhs.index()], value[rhs.index()]) {
                (Lattice::Val(a), Lattice::Val(bb)) => match fold_bin_const(*op, *ty, a, bb) {
                    Some(c) => Lattice::Val(c),
                    None => Lattice::Bottom, // e.g. division by zero: varying
                },
                (Lattice::Bottom, _) | (_, Lattice::Bottom) => Lattice::Bottom,
                _ => Lattice::Top,
            }
        }
        Inst::Un { op, src, .. } => match value[src.index()] {
            Lattice::Val(c) => match fold_un_const(*op, c) {
                Some(v) => Lattice::Val(v),
                None => Lattice::Bottom,
            },
            x => x,
        },
        Inst::Load { .. } | Inst::Call { .. } => Lattice::Bottom,
        Inst::Store { .. } => return, // no destination

        Inst::Phi { args, .. } => {
            let mut acc = Lattice::Top;
            for &(pb, r) in args {
                if *edge_exec.get(&(pb, b)).unwrap_or(&false) {
                    acc = acc.meet(value[r.index()]);
                }
            }
            acc
        }
    };
    let met = old.meet(new);
    // Monotone only downwards: Top -> Val -> Bottom.
    let final_v = match (old, met) {
        (Lattice::Top, x) => x,
        (Lattice::Val(_), Lattice::Val(_)) if old == met => old,
        (Lattice::Val(_), _) => Lattice::Bottom,
        (Lattice::Bottom, _) => Lattice::Bottom,
    };
    if final_v != old {
        value[d.index()] = final_v;
        ssa_work.push(d);
    }
}

fn visit_terminator(
    f: &Function,
    b: BlockId,
    value: &mut [Lattice],
    flow_work: &mut Vec<(BlockId, BlockId)>,
    edge_exec: &HashMap<(BlockId, BlockId), bool>,
) {
    match &f.block(b).term {
        Terminator::Jump { target } => {
            if !*edge_exec.get(&(b, *target)).unwrap_or(&false) {
                flow_work.push((b, *target));
            }
        }
        Terminator::Branch { cond, then_to, else_to } => {
            let push = |flow_work: &mut Vec<(BlockId, BlockId)>, t: BlockId| {
                if !*edge_exec.get(&(b, t)).unwrap_or(&false) {
                    flow_work.push((b, t));
                }
            };
            match value[cond.index()] {
                Lattice::Val(c) => {
                    if c.is_zero() {
                        push(flow_work, *else_to);
                    } else {
                        push(flow_work, *then_to);
                    }
                }
                Lattice::Bottom => {
                    push(flow_work, *then_to);
                    push(flow_work, *else_to);
                }
                Lattice::Top => {} // not yet known; revisited when it lowers
            }
        }
        Terminator::Return { .. } => {}
    }
}

/// Remove unreachable blocks (in SSA form, so φ inputs from removed blocks
/// must also be pruned — done separately).
fn drop_unreachable_with_phis(f: &mut Function, cache: &mut AnalysisCache) {
    let reach = cache.cfg(f).reachable();
    if reach.iter().all(|&r| r) {
        return;
    }
    let mut remap: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    let mut kept = Vec::new();
    for (i, block) in f.blocks.drain(..).enumerate() {
        if reach[i] {
            remap[i] = Some(BlockId(kept.len() as u32));
            kept.push(block);
        }
    }
    for block in &mut kept {
        match &mut block.term {
            Terminator::Jump { target } => *target = remap[target.index()].expect("reachable"),
            Terminator::Branch { then_to, else_to, .. } => {
                *then_to = remap[then_to.index()].expect("reachable");
                *else_to = remap[else_to.index()].expect("reachable");
            }
            Terminator::Return { .. } => {}
        }
        for inst in &mut block.insts {
            if let Inst::Phi { args, .. } = inst {
                args.retain(|(pb, _)| remap[pb.index()].is_some());
                for (pb, _) in args {
                    *pb = remap[pb.index()].expect("retained");
                }
            }
        }
    }
    f.blocks = kept;
    cache.invalidate_all();
}

/// After branch folding, a φ may name a predecessor that no longer reaches
/// it; drop those inputs, and collapse single-input φs into copies.
fn prune_phi_args_of_removed_edges(f: &mut Function, cache: &mut AnalysisCache) {
    let cfg = cache.cfg(f);
    for bi in 0..f.blocks.len() {
        let bid = BlockId(bi as u32);
        let preds: Vec<BlockId> = cfg.preds(bid).to_vec();
        for inst in &mut f.blocks[bi].insts {
            if let Inst::Phi { dst, args } = inst {
                args.retain(|(pb, _)| preds.contains(pb));
                if args.len() == 1 {
                    *inst = Inst::Copy { dst: *dst, src: args[0].1 };
                }
            } else {
                break;
            }
        }
        // A collapsed copy may now precede remaining φs; restore the φ
        // prefix by stable-sorting φs first.
        f.blocks[bi].insts.sort_by_key(|i| !matches!(i, Inst::Phi { .. }));
    }
    // Instructions changed (φ→copy rewrites) but block structure did not:
    // the cached CFG stays valid for any later user of this cache. The
    // universe and liveness do not survive instruction edits.
    cache.invalidate_universe();
    cache.invalidate_liveness();
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, FunctionBuilder, Ty};

    #[test]
    fn propagates_through_straight_line() {
        let mut b = FunctionBuilder::new("s", Some(Ty::Int));
        let two = b.loadi(Const::Int(2));
        let three = b.loadi(Const::Int(3));
        let s = b.bin(BinOp::Add, Ty::Int, two, three);
        let p = b.bin(BinOp::Mul, Ty::Int, s, s);
        b.ret(Some(p));
        let mut f = b.finish();
        run(&mut f);
        // p proven 25.
        let last = f.blocks[0].insts.last().unwrap();
        assert!(matches!(last, Inst::LoadI { value: Const::Int(25), .. }));
    }

    #[test]
    fn folds_constant_branch_and_kills_dead_arm() {
        // if (1) return 10 else return 20
        let mut b = FunctionBuilder::new("c", Some(Ty::Int));
        let one = b.loadi(Const::Int(1));
        let t = b.new_block();
        let e = b.new_block();
        b.branch(one, t, e);
        b.switch_to(t);
        let ten = b.loadi(Const::Int(10));
        b.ret(Some(ten));
        b.switch_to(e);
        let twenty = b.loadi(Const::Int(20));
        b.ret(Some(twenty));
        let mut f = b.finish();
        run(&mut f);
        assert!(f.verify().is_ok());
        // The else-arm is unreachable and dropped.
        assert_eq!(f.blocks.len(), 2);
        assert!(matches!(f.blocks[0].term, Terminator::Jump { .. }));
    }

    #[test]
    fn conditional_constantness_through_phi() {
        // x = 1; if (p) { x = 1 } ; return x + 1  — φ(1,1) = 1, so x+1 = 2.
        let mut b = FunctionBuilder::new("p", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let x = b.new_reg(Ty::Int);
        let one = b.loadi(Const::Int(1));
        b.copy_to(x, one);
        let t = b.new_block();
        let j = b.new_block();
        b.branch(p, t, j);
        b.switch_to(t);
        let one2 = b.loadi(Const::Int(1));
        b.copy_to(x, one2);
        b.jump(j);
        b.switch_to(j);
        let s = b.bin(BinOp::Add, Ty::Int, x, one);
        b.ret(Some(s));
        let mut f = b.finish();
        run(&mut f);
        // The add became loadi 2 somewhere.
        let found = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::LoadI { value: Const::Int(2), .. }));
        assert!(found, "{f}");
    }

    #[test]
    fn sccp_beats_pessimistic_on_loop_constant() {
        // x = 0; while (p) { x = 0 }; return x — optimistically x = 0.
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let x = b.new_reg(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(x, z);
        b.jump(head);
        b.switch_to(head);
        b.branch(p, body, exit);
        b.switch_to(body);
        let z2 = b.loadi(Const::Int(0));
        b.copy_to(x, z2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        // Return feeds a register proven zero: either ret of a loadi-0 reg.
        assert!(f.verify().is_ok());
        let zero_regs: Vec<Reg> = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::LoadI { dst, value: Const::Int(0) } => Some(*dst),
                _ => None,
            })
            .collect();
        let ret_reg = f
            .blocks
            .iter()
            .find_map(|b| match b.term {
                Terminator::Return { value } => value,
                _ => None,
            })
            .unwrap();
        // After destruction + copies the value flows from a zero constant;
        // just check semantics with the interpreter instead of structure.
        let _ = (zero_regs, ret_reg);
        let mut m = epre_ir::Module::new();
        m.functions.push(f);
        let mut i = epre_interp::Interpreter::new(&m);
        assert_eq!(
            i.run("l", &[epre_interp::Value::Int(0)]).unwrap(),
            Some(epre_interp::Value::Int(0))
        );
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut b = FunctionBuilder::new("d", Some(Ty::Int));
        let one = b.loadi(Const::Int(1));
        let zero = b.loadi(Const::Int(0));
        let q = b.bin(BinOp::Div, Ty::Int, one, zero);
        b.ret(Some(q));
        let mut f = b.finish();
        run(&mut f);
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Bin { op: BinOp::Div, .. })));
    }

    #[test]
    fn params_are_varying() {
        let mut b = FunctionBuilder::new("v", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let one = b.loadi(Const::Int(1));
        let s = b.bin(BinOp::Add, Ty::Int, x, one);
        b.ret(Some(s));
        let mut f = b.finish();
        run(&mut f);
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. })));
    }
}
