//! Dead code elimination.
//!
//! The baseline sequence (§4.1) includes "global dead code elimination
//! [11, Section 7.1]". This implementation works directly on (φ-free)
//! ILOC with a liveness-based sweep iterated to a fixed point: an
//! instruction is deleted when it has no side effects and its result is
//! dead at the program point just after it. Iteration handles chains
//! (removing a use can kill the definition feeding it).
//!
//! Calls and stores always survive; so do instructions feeding terminators
//! transitively.

use epre_analysis::AnalysisCache;
use epre_ir::Function;

use crate::budget::{Budget, BudgetExceeded};
use epre_telemetry::PassCounters;

/// What one DCE invocation did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DceStats {
    /// Dead instructions deleted.
    pub ops_killed: u64,
    /// Liveness rounds that deleted something.
    pub rounds: u64,
}

/// Run DCE to a fixed point. Returns true if any instruction was deleted;
/// the deleted-ops count is observable through
/// [`Function::static_op_count`].
pub fn run(f: &mut Function) -> bool {
    run_with_cache(f, &mut AnalysisCache::new())
}

/// [`run`] against a caller-owned [`AnalysisCache`] (the pipeline's, when
/// driven through `Pass::run_cached`). DCE deletes instructions but never
/// blocks or edges: a cached CFG is reused across every liveness round of
/// the fixed point — and survives the pass for its successors. Liveness
/// itself is served through the cache too: each deleting round invalidates
/// it (plus the expression universe), and the final quiescing round leaves
/// a valid entry behind for the next liveness consumer (coalescing, which
/// runs immediately after DCE at every level).
pub fn run_with_cache(f: &mut Function, cache: &mut AnalysisCache) -> bool {
    match run_budgeted(f, cache, &Budget::UNLIMITED) {
        Ok(any) => any,
        Err(_) => unreachable!("unlimited budget cannot be exceeded"),
    }
}

/// [`run_with_cache`] under a resource [`Budget`]: one cooperative
/// checkpoint per liveness round of the fixed point.
///
/// # Errors
/// [`BudgetExceeded`] when a round starts over budget; instructions
/// already deleted stay deleted (callers needing atomicity run a clone).
pub fn run_budgeted(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
) -> Result<bool, BudgetExceeded> {
    run_budgeted_stats(f, cache, budget).map(|s| s.ops_killed > 0)
}

/// Instrumented entry point for the pipeline: [`run_budgeted_stats`] with
/// the stats folded into `counters`.
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_counted(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
    counters: &mut PassCounters,
) -> Result<bool, BudgetExceeded> {
    let stats = run_budgeted_stats(f, cache, budget)?;
    counters.add("ops_killed", stats.ops_killed);
    counters.add("rounds", stats.rounds);
    Ok(stats.ops_killed > 0)
}

/// [`run_budgeted`], additionally reporting what the invocation did as a
/// [`DceStats`].
///
/// # Errors
/// [`BudgetExceeded`] exactly as [`run_budgeted`].
pub fn run_budgeted_stats(
    f: &mut Function,
    cache: &mut AnalysisCache,
    budget: &Budget,
) -> Result<DceStats, BudgetExceeded> {
    debug_assert!(f.blocks.iter().all(|b| b.phi_count() == 0), "dce expects φ-free code");
    let mut meter = budget.start(f);
    let mut stats = DceStats::default();
    loop {
        meter.tick(f)?;
        let live = cache.liveness(f);
        let mut changed = false;
        for (bid, block) in f.blocks.iter_mut().enumerate() {
            // Walk backwards maintaining the live set.
            let mut live_now = live.live_out[bid].clone();
            for u in block.term.uses() {
                live_now.insert(u.index());
            }
            let mut keep = vec![true; block.insts.len()];
            for (i, inst) in block.insts.iter().enumerate().rev() {
                let dead = match inst.dst() {
                    Some(d) => !live_now.contains(d.index()),
                    None => false,
                };
                if dead && !inst.has_side_effects() {
                    keep[i] = false;
                    changed = true;
                    stats.ops_killed += 1;
                    continue;
                }
                if let Some(d) = inst.dst() {
                    live_now.remove(d.index());
                }
                for u in inst.uses() {
                    live_now.insert(u.index());
                }
            }
            if keep.iter().any(|k| !k) {
                let mut it = keep.iter();
                block.insts.retain(|_| *it.next().unwrap());
            }
        }
        if !changed {
            break;
        }
        stats.rounds += 1;
        cache.invalidate_universe();
        cache.invalidate_liveness();
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Inst, Ty};

    #[test]
    fn removes_dead_chain() {
        let mut b = FunctionBuilder::new("d", Some(Ty::Int));
        let x = b.param(Ty::Int);
        // Dead chain: c -> y -> z (z unused).
        let c = b.loadi(Const::Int(3));
        let y = b.bin(BinOp::Add, Ty::Int, x, c);
        let _z = b.bin(BinOp::Mul, Ty::Int, y, y);
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.inst_count(), 0);
        assert!(f.verify().is_ok());
    }

    #[test]
    fn keeps_live_code() {
        let mut b = FunctionBuilder::new("k", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let c = b.loadi(Const::Int(3));
        let y = b.bin(BinOp::Add, Ty::Int, x, c);
        b.ret(Some(y));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.inst_count(), 2);
    }

    #[test]
    fn keeps_side_effects() {
        let mut b = FunctionBuilder::new("s", None);
        let p = b.param(Ty::Int);
        let v = b.loadi(Const::Int(1));
        b.store(Ty::Int, p, v);
        let _unused = b.call("sqrt", vec![], Ty::Float);
        b.ret(None);
        let mut f = b.finish();
        run(&mut f);
        // store, its operand loadi, and the call survive.
        assert_eq!(f.inst_count(), 3);
    }

    #[test]
    fn dead_store_value_is_not_removed_but_dead_copy_is() {
        let mut b = FunctionBuilder::new("c", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let dead = b.copy(x);
        let _ = dead;
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.inst_count(), 0);
    }

    #[test]
    fn loop_carried_liveness_keeps_induction() {
        // i updated in loop and tested: must survive.
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let i = b.new_reg(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(i, z);
        b.jump(head);
        b.switch_to(head);
        let c = b.bin(BinOp::CmpLt, Ty::Int, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.loadi(Const::Int(1));
        let i2 = b.bin(BinOp::Add, Ty::Int, i, one);
        b.copy_to(i, i2);
        // Dead inside loop:
        let _dead = b.bin(BinOp::Mul, Ty::Int, i2, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        let before = f.inst_count();
        run(&mut f);
        assert_eq!(f.inst_count(), before - 1);
    }

    #[test]
    fn overwritten_definition_dies() {
        // x <- 1 (dead, overwritten); x <- 2; return x
        let mut b = FunctionBuilder::new("o", Some(Ty::Int));
        let x = b.new_reg(Ty::Int);
        b.push(Inst::LoadI { dst: x, value: Const::Int(1) });
        b.push(Inst::LoadI { dst: x, value: Const::Int(2) });
        b.ret(Some(x));
        let mut f = b.finish();
        run(&mut f);
        assert_eq!(f.inst_count(), 1);
        assert!(matches!(f.blocks[0].insts[0], Inst::LoadI { value: Const::Int(2), .. }));
    }
}
