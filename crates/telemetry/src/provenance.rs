//! Transformation provenance: where did every operation go?
//!
//! The pipeline driver snapshots an opcode histogram of each function
//! before and after every pass and emits the difference as a
//! `provenance` event. This module reconstructs per-function ledgers
//! from those events so `epre explain` can print, level by level, which
//! pass eliminated (or inserted) how many of which opcode — the same
//! attribution discipline as the LCM-PRE reproduction this issue cites.
//!
//! The ledgers obey a conservation law checked over the whole benchmark
//! suite: for every pass, and transitively for the whole pipeline,
//!
//! ```text
//! ops_before − Σ eliminated + Σ inserted == ops_after
//! ```
//!
//! which holds *by construction* because both sides are computed from
//! the same histograms.

use crate::event::Event;
use crate::trace::Trace;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The opcode-keyed difference between two histograms, split into
/// eliminated (count went down) and inserted (count went up) sides.
/// Both sides are sorted by opcode.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpcodeDelta {
    /// Opcodes whose count decreased, with the decrease.
    pub eliminated: Vec<(String, u64)>,
    /// Opcodes whose count increased, with the increase.
    pub inserted: Vec<(String, u64)>,
}

impl OpcodeDelta {
    /// Diff `after` against `before` (both opcode → count).
    pub fn between(before: &BTreeMap<String, u64>, after: &BTreeMap<String, u64>) -> OpcodeDelta {
        let mut d = OpcodeDelta::default();
        let mut keys: Vec<&String> = before.keys().chain(after.keys()).collect();
        keys.sort();
        keys.dedup();
        for k in keys {
            let b = before.get(k).copied().unwrap_or(0);
            let a = after.get(k).copied().unwrap_or(0);
            if a < b {
                d.eliminated.push((k.clone(), b - a));
            } else if a > b {
                d.inserted.push((k.clone(), a - b));
            }
        }
        d
    }

    /// Total operations eliminated across all opcodes.
    pub fn eliminated_total(&self) -> u64 {
        self.eliminated.iter().map(|(_, n)| n).sum()
    }

    /// Total operations inserted across all opcodes.
    pub fn inserted_total(&self) -> u64 {
        self.inserted.iter().map(|(_, n)| n).sum()
    }

    /// True when the pass left the opcode mix untouched.
    pub fn is_empty(&self) -> bool {
        self.eliminated.is_empty() && self.inserted.is_empty()
    }
}

/// One pass's row in a [`FunctionLedger`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassProvenance {
    /// The pass name.
    pub pass: String,
    /// Static operation count when the pass started.
    pub ops_before: u64,
    /// Static operation count when the pass finished.
    pub ops_after: u64,
    /// The opcode-keyed delta the pass produced.
    pub delta: OpcodeDelta,
}

/// The per-function account of where every static-operation change came
/// from, pass by pass, reconstructed from a trace's `provenance` events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionLedger {
    /// The function this ledger describes.
    pub function: String,
    /// Static operations before the first pass ran.
    pub ops_before: u64,
    /// Static operations after the last pass ran.
    pub ops_after: u64,
    /// One entry per pass invocation, in pipeline order.
    pub passes: Vec<PassProvenance>,
}

impl FunctionLedger {
    /// The conservation law: does `ops_before − Σ eliminated +
    /// Σ inserted == ops_after` hold, both per pass and end to end?
    pub fn conserves(&self) -> bool {
        let mut running = i128::from(self.ops_before);
        for p in &self.passes {
            if running != i128::from(p.ops_before) {
                return false;
            }
            running -= i128::from(p.delta.eliminated_total());
            running += i128::from(p.delta.inserted_total());
            if running != i128::from(p.ops_after) {
                return false;
            }
        }
        running == i128::from(self.ops_after)
    }

    /// Render the ledger as an indented text account (used by
    /// `epre explain`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} -> {} static ops",
            self.function, self.ops_before, self.ops_after
        );
        for p in &self.passes {
            if p.delta.is_empty() {
                continue;
            }
            let _ = write!(out, "  {:<24} {:>5} -> {:<5}", p.pass, p.ops_before, p.ops_after);
            let mut parts: Vec<String> = Vec::new();
            for (op, n) in &p.delta.eliminated {
                parts.push(format!("-{n} {op}"));
            }
            for (op, n) in &p.delta.inserted {
                parts.push(format!("+{n} {op}"));
            }
            let _ = writeln!(out, "  {}", parts.join(", "));
        }
        out
    }
}

/// Reconstruct per-function ledgers from a trace's `provenance` events,
/// in first-encounter (module) order.
pub fn ledgers_from_trace(trace: &Trace) -> Vec<FunctionLedger> {
    let mut ledgers: Vec<FunctionLedger> = Vec::new();
    for e in trace.events.iter().filter(|e| e.kind == "provenance") {
        let entry = provenance_entry(e);
        match ledgers.iter_mut().find(|l| l.function == e.function) {
            Some(l) => {
                l.ops_after = entry.ops_after;
                l.passes.push(entry);
            }
            None => ledgers.push(FunctionLedger {
                function: e.function.clone(),
                ops_before: entry.ops_before,
                ops_after: entry.ops_after,
                passes: vec![entry],
            }),
        }
    }
    ledgers
}

fn provenance_entry(e: &Event) -> PassProvenance {
    PassProvenance {
        pass: e.pass.clone(),
        ops_before: e.field_u64("ops_before").unwrap_or(0),
        ops_after: e.field_u64("ops_after").unwrap_or(0),
        delta: OpcodeDelta {
            eliminated: e.field_map("eliminated").unwrap_or(&[]).to_vec(),
            inserted: e.field_map("inserted").unwrap_or(&[]).to_vec(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;
    use crate::trace::{FunctionTrace, Tracer};

    fn hist(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn delta_splits_eliminated_and_inserted() {
        let before = hist(&[("add", 3), ("mul", 2), ("copy", 1)]);
        let after = hist(&[("add", 1), ("mul", 2), ("loadi", 4)]);
        let d = OpcodeDelta::between(&before, &after);
        assert_eq!(d.eliminated, vec![("add".to_string(), 2), ("copy".to_string(), 1)]);
        assert_eq!(d.inserted, vec![("loadi".to_string(), 4)]);
        assert_eq!(d.eliminated_total(), 3);
        assert_eq!(d.inserted_total(), 4);
        assert!(!d.is_empty());
        assert!(OpcodeDelta::between(&before, &before).is_empty());
    }

    fn prov_event(t: &mut FunctionTrace, pass: &str, before: u64, after: u64, elim: u64, ins: u64) {
        t.instant(
            "provenance",
            pass,
            vec![
                ("ops_before".into(), Value::U64(before)),
                ("ops_after".into(), Value::U64(after)),
                ("eliminated".into(), Value::Map(vec![("add".into(), elim)])),
                ("inserted".into(), Value::Map(vec![("loadi".into(), ins)])),
            ],
        );
    }

    #[test]
    fn ledgers_rebuild_and_conserve() {
        let mut lane = FunctionTrace::new("f", 0);
        prov_event(&mut lane, "pre", 10, 9, 2, 1);
        prov_event(&mut lane, "dce", 9, 7, 2, 0);
        let ledgers = ledgers_from_trace(&Trace::from_lanes(vec![lane]));
        assert_eq!(ledgers.len(), 1);
        let l = &ledgers[0];
        assert_eq!((l.ops_before, l.ops_after), (10, 7));
        assert_eq!(l.passes.len(), 2);
        assert!(l.conserves(), "{l:?}");
        let text = l.render();
        assert!(text.contains("f: 10 -> 7 static ops"), "{text}");
        assert!(text.contains("-2 add"), "{text}");
        assert!(text.contains("+1 loadi"), "{text}");
    }

    #[test]
    fn conservation_detects_a_lying_ledger() {
        let mut lane = FunctionTrace::new("f", 0);
        prov_event(&mut lane, "pre", 10, 9, 5, 1); // 10 - 5 + 1 != 9
        let ledgers = ledgers_from_trace(&Trace::from_lanes(vec![lane]));
        assert!(!ledgers[0].conserves());
    }
}
