//! A zero-dependency live-metrics registry: counters, gauges, and
//! log-bucketed histograms behind atomic cells, with Prometheus-style
//! text exposition and a JSON render.
//!
//! The batch telemetry layer ([`crate::trace`]) answers "what did this
//! run do"; this module answers "what is the daemon doing *right now*".
//! The design constraints mirror the rest of the workspace:
//!
//! - **No dependencies.** Atomics and one registration mutex; no metrics
//!   crates, no lazy statics.
//! - **Lock-cheap updates.** Registration (startup) takes the registry
//!   mutex; every update after that is a relaxed atomic add on a handle
//!   ([`Counter`], [`Gauge`], [`Histogram`]) the caller holds by `Arc`.
//! - **Deterministic renders.** Histogram bucket boundaries are the
//!   fixed compile-time ladder [`LATENCY_BUCKETS_US`], so two registries
//!   that observed the same multiset of values render byte-identically
//!   regardless of observation order, thread interleaving, or merge
//!   order — the property the bench trajectory and CI greps rely on.
//! - **Integer-only.** Values are `u64` (microseconds for latency), so
//!   the JSON render stays inside the serve protocol's integer-only JSON
//!   subset and reconciles exactly, with no float formatting drift.
//!
//! Renders go through [`Snapshot`]: the registry dumps its families,
//! the caller may push extra counters/gauges from sources it owns (the
//! serve daemon mirrors its `stats_snapshot` counters this way, which is
//! what makes `epre metrics` reconcile with `submit --stats` *by
//! construction* — one source of truth, two renderers), and the snapshot
//! sorts by `(name, label)` before emitting either format.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fixed histogram bucket ladder, in microseconds: powers of two from
/// 1µs to ~33.6s. Everything above the last bound lands in the implicit
/// `+Inf` overflow bucket. The ladder is compile-time so every
/// histogram in every process renders the same schema.
pub const LATENCY_BUCKETS_US: [u64; 26] = [
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1_024,
    2_048,
    4_096,
    8_192,
    16_384,
    32_768,
    65_536,
    131_072,
    262_144,
    524_288,
    1_048_576,
    2_097_152,
    4_194_304,
    8_388_608,
    16_777_216,
    33_554_432,
];

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depth, in-flight
/// requests, busy workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge to `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one, saturating at zero (a decrement racing a
    /// restart must never wrap to `u64::MAX`).
    pub fn dec(&self) {
        let _ =
            self.0.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over the fixed [`LATENCY_BUCKETS_US`] ladder plus an
/// overflow bucket, with running sum and count.
#[derive(Debug)]
pub struct Histogram {
    /// One cell per ladder bound, plus the trailing overflow bucket.
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: (0..=LATENCY_BUCKETS_US.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let idx = LATENCY_BUCKETS_US.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Per-bucket (non-cumulative) counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Fold another histogram's observations into this one. Both share
    /// the fixed ladder, so merging commutes and the merged render is
    /// independent of merge order.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.count.fetch_add(other.count(), Ordering::Relaxed);
    }
}

/// Upper-bound quantile estimate over fixed-ladder bucket counts: the
/// smallest ladder bound whose cumulative count reaches the nearest-rank
/// `num/den` quantile. Returns `None` for an empty histogram or when the
/// rank lands in the overflow bucket (no finite bound covers it).
pub fn quantile_le(bounds: &[u64], counts: &[u64], num: u64, den: u64) -> Option<u64> {
    let total: u64 = counts.iter().sum();
    if total == 0 || den == 0 {
        return None;
    }
    let rank = (total * num).div_ceil(den).max(1);
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bounds.get(i).copied();
        }
    }
    None
}

#[derive(Debug, Clone)]
enum MetricKind {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl MetricKind {
    fn type_name(&self) -> &'static str {
        match self {
            MetricKind::Counter(_) => "counter",
            MetricKind::Gauge(_) => "gauge",
            MetricKind::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    label: Option<(String, String)>,
    help: String,
    metric: MetricKind,
}

/// The registry: a named family set handing out atomic handles.
///
/// `counter`/`gauge`/`histogram` (and their `_labeled` variants) are
/// get-or-register: calling twice with the same `(name, label)` returns
/// the same handle, so wiring code never has to coordinate "who
/// registers first". Registering an existing name as a different metric
/// type is a programming error and panics.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn get_or_register(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        help: &str,
        type_name: &'static str,
        make: impl FnOnce() -> MetricKind,
    ) -> MetricKind {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(clash) =
            entries.iter().find(|e| e.name == name && e.metric.type_name() != type_name)
        {
            panic!(
                "metric {name} registered as both {} and {}",
                clash.metric.type_name(),
                type_name
            );
        }
        let wanted = label.map(|(k, v)| (k.to_string(), v.to_string()));
        if let Some(e) = entries.iter().find(|e| e.name == name && e.label == wanted) {
            return e.metric.clone();
        }
        let metric = make();
        entries.push(Entry {
            name: name.to_string(),
            label: wanted,
            help: help.to_string(),
            metric: metric.clone(),
        });
        metric
    }

    /// Get or register an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_labeled(name, None, help)
    }

    /// Get or register a counter carrying one `key="value"` label.
    pub fn counter_labeled(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        help: &str,
    ) -> Arc<Counter> {
        match self.get_or_register(name, label, help, "counter", || {
            MetricKind::Counter(Arc::new(Counter::default()))
        }) {
            MetricKind::Counter(c) => c,
            _ => unreachable!("type clash panics in get_or_register"),
        }
    }

    /// Get or register an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        match self.get_or_register(name, None, help, "gauge", || {
            MetricKind::Gauge(Arc::new(Gauge::default()))
        }) {
            MetricKind::Gauge(g) => g,
            _ => unreachable!("type clash panics in get_or_register"),
        }
    }

    /// Get or register an unlabeled histogram over the fixed ladder.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_labeled(name, None, help)
    }

    /// Get or register a histogram carrying one `key="value"` label
    /// (the serve daemon keys request latency by traffic class).
    pub fn histogram_labeled(
        &self,
        name: &str,
        label: Option<(&str, &str)>,
        help: &str,
    ) -> Arc<Histogram> {
        match self.get_or_register(name, label, help, "histogram", || {
            MetricKind::Histogram(Arc::new(Histogram::default()))
        }) {
            MetricKind::Histogram(h) => h,
            _ => unreachable!("type clash panics in get_or_register"),
        }
    }

    /// Dump every registered family into a [`Snapshot`] for rendering.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut snap = Snapshot::default();
        for e in entries.iter() {
            let label = e.label.as_ref().map(|(k, v)| (k.as_str(), v.as_str()));
            match &e.metric {
                MetricKind::Counter(c) => snap.push_counter(&e.name, label, &e.help, c.value()),
                MetricKind::Gauge(g) => snap.push_gauge(&e.name, label, &e.help, g.value()),
                MetricKind::Histogram(h) => snap.push_histogram(
                    &e.name,
                    label,
                    &e.help,
                    h.bucket_counts(),
                    h.sum(),
                    h.count(),
                ),
            }
        }
        snap
    }
}

#[derive(Debug, Clone)]
enum Item {
    Counter { value: u64 },
    Gauge { value: u64 },
    Histogram { counts: Vec<u64>, sum: u64, count: u64 },
}

impl Item {
    fn type_name(&self) -> &'static str {
        match self {
            Item::Counter { .. } => "counter",
            Item::Gauge { .. } => "gauge",
            Item::Histogram { .. } => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct SnapEntry {
    name: String,
    label: Option<(String, String)>,
    help: String,
    item: Item,
}

/// A point-in-time value set ready to render: registry families plus
/// any extra counters/gauges the caller mirrors in from its own
/// sources. Both renders sort by `(name, label)` first, so output is
/// byte-deterministic for a given value set.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    entries: Vec<SnapEntry>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Snapshot {
        Snapshot::default()
    }

    fn push(&mut self, name: &str, label: Option<(&str, &str)>, help: &str, item: Item) {
        self.entries.push(SnapEntry {
            name: name.to_string(),
            label: label.map(|(k, v)| (k.to_string(), v.to_string())),
            help: help.to_string(),
            item,
        });
    }

    /// Add a counter sample.
    pub fn push_counter(&mut self, name: &str, label: Option<(&str, &str)>, help: &str, value: u64) {
        self.push(name, label, help, Item::Counter { value });
    }

    /// Add a gauge sample.
    pub fn push_gauge(&mut self, name: &str, label: Option<(&str, &str)>, help: &str, value: u64) {
        self.push(name, label, help, Item::Gauge { value });
    }

    /// Add a histogram sample: non-cumulative per-bucket `counts` over
    /// [`LATENCY_BUCKETS_US`] (overflow last), plus `sum` and `count`.
    pub fn push_histogram(
        &mut self,
        name: &str,
        label: Option<(&str, &str)>,
        help: &str,
        counts: Vec<u64>,
        sum: u64,
        count: u64,
    ) {
        self.push(name, label, help, Item::Histogram { counts, sum, count });
    }

    fn sorted(&self) -> Vec<&SnapEntry> {
        let mut v: Vec<&SnapEntry> = self.entries.iter().collect();
        v.sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
        v
    }

    /// Prometheus-style text exposition: `# HELP` / `# TYPE` headers per
    /// family, histograms as cumulative `_bucket{le=...}` series plus
    /// `_sum` / `_count`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for e in self.sorted() {
            if e.name != last_family {
                if !e.help.is_empty() {
                    out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                }
                out.push_str(&format!("# TYPE {} {}\n", e.name, e.item.type_name()));
                last_family.clone_from(&e.name);
            }
            let plain_label = |extra: &str| match (&e.label, extra.is_empty()) {
                (None, true) => String::new(),
                (None, false) => format!("{{{extra}}}"),
                (Some((k, v)), true) => format!("{{{k}=\"{v}\"}}"),
                (Some((k, v)), false) => format!("{{{k}=\"{v}\",{extra}}}"),
            };
            match &e.item {
                Item::Counter { value } | Item::Gauge { value } => {
                    out.push_str(&format!("{}{} {}\n", e.name, plain_label(""), value));
                }
                Item::Histogram { counts, sum, count } => {
                    let mut cum = 0u64;
                    for (i, c) in counts.iter().enumerate() {
                        cum += c;
                        let le = LATENCY_BUCKETS_US
                            .get(i)
                            .map_or("+Inf".to_string(), |b| b.to_string());
                        out.push_str(&format!(
                            "{}_bucket{} {}\n",
                            e.name,
                            plain_label(&format!("le=\"{le}\"")),
                            cum
                        ));
                    }
                    out.push_str(&format!("{}_sum{} {}\n", e.name, plain_label(""), sum));
                    out.push_str(&format!("{}_count{} {}\n", e.name, plain_label(""), count));
                }
            }
        }
        out
    }

    /// JSON render: one object with a `metrics` array in the same sorted
    /// order as the text exposition. Integer-only, so it parses with the
    /// serve protocol's JSON subset.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, e) in self.sorted().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"name\":\"{}\",\"type\":\"{}\"", e.name, e.item.type_name()));
            if let Some((k, v)) = &e.label {
                out.push_str(&format!(",\"label\":\"{k}={v}\""));
            }
            match &e.item {
                Item::Counter { value } | Item::Gauge { value } => {
                    out.push_str(&format!(",\"value\":{value}"));
                }
                Item::Histogram { counts, sum, count } => {
                    out.push_str(",\"bounds\":[");
                    for (j, b) in LATENCY_BUCKETS_US.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&b.to_string());
                    }
                    out.push_str("],\"counts\":[");
                    for (j, c) in counts.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&c.to_string());
                    }
                    out.push_str(&format!("],\"sum\":{sum},\"count\":{count}"));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_get_or_register() {
        let r = MetricsRegistry::new();
        let a = r.counter("epre_requests_total", "requests");
        let b = r.counter("epre_requests_total", "requests");
        a.inc();
        b.add(2);
        assert_eq!(a.value(), 3, "same handle behind the same name");
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn type_clash_is_a_programming_error() {
        let r = MetricsRegistry::new();
        let _ = r.counter("epre_x", "");
        let _ = r.gauge("epre_x", "");
    }

    #[test]
    fn gauge_decrement_saturates_at_zero() {
        let g = Gauge::default();
        g.inc();
        g.dec();
        g.dec();
        assert_eq!(g.value(), 0);
    }

    #[test]
    fn histogram_buckets_sum_to_observation_count() {
        // Property over an arbitrary-ish value set including the exact
        // bounds, zero, and an overflow observation.
        let h = Histogram::default();
        let values: Vec<u64> = (0..500)
            .map(|i: u64| i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17) % 40_000_000)
            .chain([0, 1, 2, 33_554_432, 33_554_433, u64::MAX / 2])
            .collect();
        for &v in &values {
            h.observe(v);
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), h.count());
        assert_eq!(h.bucket_counts().len(), LATENCY_BUCKETS_US.len() + 1);
    }

    #[test]
    fn bucket_assignment_is_le_semantics() {
        let h = Histogram::default();
        h.observe(1); // le="1"
        h.observe(2); // le="2"
        h.observe(3); // le="4"
        let counts = h.bucket_counts();
        assert_eq!(&counts[..3], &[1, 1, 1]);
        h.observe(u64::MAX); // overflow
        assert_eq!(*h.bucket_counts().last().unwrap(), 1);
    }

    #[test]
    fn merged_renders_are_byte_deterministic() {
        // The same multiset of observations, split differently across
        // two histograms and merged in either order, renders the same
        // bytes.
        let values: Vec<u64> = (0..200u64).map(|i| (i * i * 37) % 5_000_000).collect();
        let build = |split: usize, swap: bool| {
            let (a, b) = (Histogram::default(), Histogram::default());
            for &v in &values[..split] {
                a.observe(v);
            }
            for &v in &values[split..] {
                b.observe(v);
            }
            let merged = Histogram::default();
            if swap {
                merged.merge_from(&b);
                merged.merge_from(&a);
            } else {
                merged.merge_from(&a);
                merged.merge_from(&b);
            }
            let mut s = Snapshot::new();
            s.push_histogram(
                "epre_lat_us",
                Some(("class", "cold")),
                "test",
                merged.bucket_counts(),
                merged.sum(),
                merged.count(),
            );
            (s.to_text(), s.to_json())
        };
        let first = build(13, false);
        assert_eq!(first, build(101, true));
        assert_eq!(first, build(200, false));
    }

    #[test]
    fn text_exposition_shape() {
        let r = MetricsRegistry::new();
        r.counter("epre_requests_total", "total requests").add(7);
        r.gauge("epre_queue_depth", "queued conns").set(3);
        r.histogram_labeled("epre_request_latency_us", Some(("class", "warm")), "latency")
            .observe(100);
        let text = r.snapshot().to_text();
        assert!(text.contains("# TYPE epre_requests_total counter"), "{text}");
        assert!(text.contains("epre_requests_total 7\n"), "{text}");
        assert!(text.contains("# TYPE epre_queue_depth gauge"), "{text}");
        assert!(text.contains("epre_queue_depth 3\n"), "{text}");
        assert!(text.contains("# TYPE epre_request_latency_us histogram"), "{text}");
        assert!(
            text.contains("epre_request_latency_us_bucket{class=\"warm\",le=\"128\"} 1"),
            "{text}"
        );
        assert!(text.contains("epre_request_latency_us_bucket{class=\"warm\",le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("epre_request_latency_us_sum{class=\"warm\"} 100"), "{text}");
        assert!(text.contains("epre_request_latency_us_count{class=\"warm\"} 1"), "{text}");
    }

    #[test]
    fn json_render_is_sorted_and_integer_only() {
        let r = MetricsRegistry::new();
        r.gauge("epre_b", "").set(2);
        r.counter("epre_a", "").add(1);
        let json = r.snapshot().to_json();
        let a = json.find("\"epre_a\"").unwrap();
        let b = json.find("\"epre_b\"").unwrap();
        assert!(a < b, "sorted by name: {json}");
        assert!(!json.contains('.'), "integer-only render: {json}");
    }

    #[test]
    fn extra_counters_interleave_into_sort_order() {
        let r = MetricsRegistry::new();
        r.counter("epre_m", "").add(5);
        let mut snap = r.snapshot();
        snap.push_counter("epre_a", None, "mirrored", 9);
        let text = snap.to_text();
        let a = text.find("epre_a 9").unwrap();
        let m = text.find("epre_m 5").unwrap();
        assert!(a < m, "{text}");
    }

    #[test]
    fn quantile_le_nearest_rank() {
        // 10 observations: 4 in le=8, 5 in le=64, 1 in overflow.
        let mut counts = vec![0u64; LATENCY_BUCKETS_US.len() + 1];
        counts[3] = 4; // le=8
        counts[6] = 5; // le=64
        let last = counts.len() - 1;
        counts[last] = 1;
        assert_eq!(quantile_le(&LATENCY_BUCKETS_US, &counts, 50, 100), Some(64));
        assert_eq!(quantile_le(&LATENCY_BUCKETS_US, &counts, 40, 100), Some(8));
        assert_eq!(quantile_le(&LATENCY_BUCKETS_US, &counts, 99, 100), None, "overflow");
        assert_eq!(quantile_le(&LATENCY_BUCKETS_US, &[0; 27], 50, 100), None, "empty");
    }
}
