//! The flat event record every telemetry producer emits.
//!
//! One struct, no generics: producers in `epre-core`, `epre-passes`, and
//! `epre-harness` all speak [`Event`], and the export formats in
//! [`crate::export`] render it without knowing who produced it.

/// A field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// An unsigned counter or size.
    U64(u64),
    /// A boolean flag (e.g. `changed`).
    Bool(bool),
    /// A short label (e.g. a fault kind).
    Str(String),
    /// An opcode-keyed histogram, kept sorted by key so renderings are
    /// deterministic (used by provenance deltas).
    Map(Vec<(String, u64)>),
}

/// One telemetry record.
///
/// `kind` is one of a small closed set:
///
/// | kind          | meaning                                            |
/// |---------------|----------------------------------------------------|
/// | `span`        | one pass invocation over one function              |
/// | `provenance`  | opcode-keyed eliminated/inserted delta of a span   |
/// | `cache`       | per-function [`AnalysisCache`] hit/miss totals     |
/// | `fault`       | a contained pass fault (panic/verify/lint/budget)  |
/// | `rollback`    | the harness rolled a function back to its input    |
/// | `quarantine`  | the circuit breaker quarantined a pass             |
/// | `journal`     | journal reuse/fresh/torn-tail accounting           |
/// | `request`     | one serve request: status + per-request accounting |
/// | `shed`        | admission control refused work (overload/deadline/ |
/// |               | client quarantine) — typed, never a hang           |
/// | `recover`     | serve cache recovery after a crash: entries kept,  |
/// |               | torn tail discarded, corrupt records dropped       |
/// | `goaway`      | the server ended a keep-alive session (idle        |
/// |               | timeout, max-requests cap, or draining)            |
/// | `drain`       | graceful drain completed: abandoned sessions and   |
/// |               | the final cache health ledger                      |
///
/// [`AnalysisCache`]: https://docs.rs/epre-analysis
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number, assigned when lanes are merged into a
    /// [`crate::Trace`]; dense and strictly increasing in the merged
    /// stream.
    pub seq: u64,
    /// Event kind (see the table above).
    pub kind: String,
    /// The function this event concerns (empty for module-level events).
    pub function: String,
    /// The pass this event concerns (`pipeline` for events that belong to
    /// the driver rather than a specific pass).
    pub pass: String,
    /// Lane index: the position of the function in module order, which is
    /// also the Chrome-trace thread id minus one. Deterministic — *not*
    /// the worker thread that happened to run the function.
    pub lane: u32,
    /// Virtual timestamp (per-lane cursor; see the crate docs). Exported.
    pub ts: u64,
    /// Virtual duration (deterministic, derived from input size; zero for
    /// instant events). Exported.
    pub dur: u64,
    /// Real wall-clock nanoseconds spent, when the producer measured them
    /// (the `--timings` path does; deterministic paths leave zero).
    /// **Never exported** — byte-identity across runs depends on it.
    pub wall_ns: u64,
    /// Extra fields, in producer-chosen (stable) order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// A new instant event (zero duration) with no fields.
    pub fn instant(kind: &str, function: &str, pass: &str) -> Event {
        Event {
            seq: 0,
            kind: kind.to_string(),
            function: function.to_string(),
            pass: pass.to_string(),
            lane: 0,
            ts: 0,
            dur: 0,
            wall_ns: 0,
            fields: Vec::new(),
        }
    }

    /// Append a field, builder-style.
    #[must_use]
    pub fn with(mut self, name: &str, value: Value) -> Event {
        self.fields.push((name.to_string(), value));
        self
    }

    /// Look up a `U64` field by name.
    pub fn field_u64(&self, name: &str) -> Option<u64> {
        self.fields.iter().find_map(|(n, v)| match v {
            Value::U64(x) if n == name => Some(*x),
            _ => None,
        })
    }

    /// Look up a `Bool` field by name.
    pub fn field_bool(&self, name: &str) -> Option<bool> {
        self.fields.iter().find_map(|(n, v)| match v {
            Value::Bool(x) if n == name => Some(*x),
            _ => None,
        })
    }

    /// Look up a `Str` field by name.
    pub fn field_str(&self, name: &str) -> Option<&str> {
        self.fields.iter().find_map(|(n, v)| match v {
            Value::Str(s) if n == name => Some(s.as_str()),
            _ => None,
        })
    }

    /// Look up a `Map` field by name.
    pub fn field_map(&self, name: &str) -> Option<&[(String, u64)]> {
        self.fields.iter().find_map(|(n, v)| match v {
            Value::Map(m) if n == name => Some(m.as_slice()),
            _ => None,
        })
    }
}

/// Per-pass counters reported by the pass itself during one invocation —
/// the numbers the paper's prose quotes (expressions hoisted, edges
/// split, partitions, ops folded, ops killed, …).
///
/// Counter names are `&'static str` because passes report a fixed
/// vocabulary; insertion order is preserved so renderings are stable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassCounters {
    items: Vec<(&'static str, u64)>,
}

impl PassCounters {
    /// An empty counter set.
    pub fn new() -> PassCounters {
        PassCounters::default()
    }

    /// Add `value` to the counter `name`, creating it at zero first.
    pub fn add(&mut self, name: &'static str, value: u64) {
        if let Some(slot) = self.items.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += value;
        } else {
            self.items.push((name, value));
        }
    }

    /// Current value of `name` (zero if never reported).
    pub fn get(&self, name: &str) -> u64 {
        self.items.iter().find(|(n, _)| *n == name).map_or(0, |(_, v)| *v)
    }

    /// Iterate counters in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.items.iter().copied()
    }

    /// True if no counter was ever reported.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The counters as a sorted-by-insertion [`Value::Map`] payload.
    pub fn to_map(&self) -> Value {
        Value::Map(self.items.iter().map(|(n, v)| (n.to_string(), *v)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_preserve_order() {
        let mut c = PassCounters::new();
        c.add("rounds", 1);
        c.add("ops_killed", 3);
        c.add("rounds", 2);
        assert_eq!(c.get("rounds"), 3);
        assert_eq!(c.get("ops_killed"), 3);
        assert_eq!(c.get("absent"), 0);
        let names: Vec<_> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["rounds", "ops_killed"]);
        assert!(!c.is_empty());
        assert_eq!(
            c.to_map(),
            Value::Map(vec![("rounds".into(), 3), ("ops_killed".into(), 3)])
        );
    }

    #[test]
    fn event_field_lookup_is_typed() {
        let e = Event::instant("span", "f", "dce")
            .with("changed", Value::Bool(true))
            .with("ops_before", Value::U64(12))
            .with("hist", Value::Map(vec![("add".into(), 2)]));
        assert_eq!(e.field_bool("changed"), Some(true));
        assert_eq!(e.field_u64("ops_before"), Some(12));
        assert_eq!(e.field_u64("changed"), None, "type mismatch yields None");
        assert_eq!(e.field_map("hist").unwrap(), &[("add".to_string(), 2)]);
        let s = Event::instant("request", "", "serve").with("status", Value::Str("ok".into()));
        assert_eq!(s.field_str("status"), Some("ok"));
        assert_eq!(s.field_str("absent"), None);
        assert_eq!(s.field_u64("status"), None, "type mismatch yields None");
    }
}
