//! Tracer sinks: the per-lane buffer and the deterministically merged
//! module trace.
//!
//! The parallel driver gives every function its own [`FunctionTrace`]
//! (keyed by the function's *module position*, not the worker thread), so
//! workers never contend on a shared sink. After the join, the lanes are
//! concatenated in module order and global sequence numbers assigned —
//! the same merge discipline as the journal, and the reason exported
//! traces are byte-identical at `--jobs 1/2/8`.

use crate::event::{Event, Value};

/// The span/event/counter sink API producers write against.
///
/// Implemented by [`FunctionTrace`] (the real buffer) and
/// [`NullTracer`] (the zero-cost default for untraced runs).
pub trait Tracer {
    /// Record a completed span: one pass invocation of `pass`, with a
    /// deterministic virtual duration `dur`, optional measured wall time,
    /// and producer-chosen fields.
    fn span(&mut self, pass: &str, dur: u64, wall_ns: u64, fields: Vec<(String, Value)>);

    /// Record an instant event of the given kind.
    fn instant(&mut self, kind: &str, pass: &str, fields: Vec<(String, Value)>);

    /// Record a single named counter reading (sugar for a one-field
    /// instant of kind `counter`).
    fn counter(&mut self, pass: &str, name: &str, value: u64) {
        self.instant("counter", pass, vec![(name.to_string(), Value::U64(value))]);
    }
}

/// A [`Tracer`] that drops everything — the default for untraced runs,
/// so the traced and untraced pipelines share one code path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn span(&mut self, _: &str, _: u64, _: u64, _: Vec<(String, Value)>) {}
    fn instant(&mut self, _: &str, _: &str, _: Vec<(String, Value)>) {}
}

/// The per-function (per-lane) event buffer.
///
/// Every event it records carries the lane index and a virtual timestamp
/// from the lane-local cursor; global `seq` stays zero until the lanes
/// are merged by [`Trace::from_lanes`].
#[derive(Debug, Clone)]
pub struct FunctionTrace {
    function: String,
    lane: u32,
    cursor: u64,
    events: Vec<Event>,
}

impl FunctionTrace {
    /// A fresh lane for `function` at module position `lane`.
    pub fn new(function: &str, lane: u32) -> FunctionTrace {
        FunctionTrace { function: function.to_string(), lane, cursor: 0, events: Vec::new() }
    }

    /// The function this lane belongs to.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// Events recorded so far, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    fn push(&mut self, mut e: Event, dur: u64, wall_ns: u64) {
        e.function.clone_from(&self.function);
        e.lane = self.lane;
        e.ts = self.cursor;
        e.dur = dur;
        e.wall_ns = wall_ns;
        self.cursor += dur;
        self.events.push(e);
    }
}

impl Tracer for FunctionTrace {
    fn span(&mut self, pass: &str, dur: u64, wall_ns: u64, fields: Vec<(String, Value)>) {
        let mut e = Event::instant("span", "", pass);
        e.fields = fields;
        self.push(e, dur, wall_ns);
    }

    fn instant(&mut self, kind: &str, pass: &str, fields: Vec<(String, Value)>) {
        let mut e = Event::instant(kind, "", pass);
        e.fields = fields;
        self.push(e, 0, 0);
    }
}

/// A merged module-level trace: all lanes concatenated in module order
/// with dense global sequence numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The merged event stream, `seq`-ordered.
    pub events: Vec<Event>,
}

impl Trace {
    /// Merge per-function lanes, in the order given (the caller passes
    /// module order). Assigns dense `seq` numbers.
    pub fn from_lanes(lanes: Vec<FunctionTrace>) -> Trace {
        let mut t = Trace::default();
        for lane in lanes {
            t.append(lane.events);
        }
        t
    }

    /// A trace over pre-built events (harness adapters use this).
    /// Assigns dense `seq` numbers in the order given.
    pub fn from_events(events: Vec<Event>) -> Trace {
        let mut t = Trace::default();
        t.append(events);
        t
    }

    /// Append events, continuing the dense `seq` numbering.
    pub fn append(&mut self, events: Vec<Event>) {
        for (next, mut e) in (self.events.len() as u64..).zip(events) {
            e.seq = next;
            self.events.push(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lane(name: &str, idx: u32, passes: &[&str]) -> FunctionTrace {
        let mut t = FunctionTrace::new(name, idx);
        for p in passes {
            t.span(p, 5, 123, vec![("changed".into(), Value::Bool(true))]);
            t.instant("provenance", p, Vec::new());
        }
        t
    }

    #[test]
    fn lane_cursor_advances_only_on_spans() {
        let t = lane("f", 0, &["dce", "clean"]);
        let ts: Vec<u64> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(ts, [0, 5, 5, 10]);
        assert!(t.events().iter().all(|e| e.function == "f" && e.lane == 0));
    }

    #[test]
    fn merge_order_is_lane_order_not_completion_order() {
        let lanes = vec![lane("a", 0, &["dce"]), lane("b", 1, &["dce", "clean"])];
        let t = Trace::from_lanes(lanes);
        let seqs: Vec<u64> = t.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2, 3, 4, 5], "dense global sequence");
        assert_eq!(t.events[0].function, "a");
        assert_eq!(t.events[2].function, "b");
    }

    #[test]
    fn counter_sugar_emits_an_instant() {
        let mut t = FunctionTrace::new("f", 0);
        t.counter("pre", "edges_split", 2);
        assert_eq!(t.events()[0].kind, "counter");
        assert_eq!(t.events()[0].field_u64("edges_split"), Some(2));
    }

    #[test]
    fn null_tracer_records_nothing() {
        let mut n = NullTracer;
        n.span("dce", 1, 1, Vec::new());
        n.counter("dce", "x", 1);
    }
}
