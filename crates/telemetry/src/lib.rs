//! # epre-telemetry — structured tracing, provenance, and Table-1 metrics
//!
//! The paper's entire argument rests on *measurement* — dynamic ILOC
//! operation counts per optimization level (Table 1) — and this crate is
//! the one place all of the workspace's measurement shapes meet:
//!
//! * [`event`] — the flat, deterministic [`Event`] record every producer
//!   emits: pass spans, per-pass counters, cache statistics, provenance
//!   deltas, and harness fault/rollback/journal notices.
//! * [`trace`] — the [`Tracer`] sink API, the per-function
//!   [`FunctionTrace`] buffer (one per parallel worker lane), and the
//!   merged module-level [`Trace`] whose event order — and therefore its
//!   exported bytes — is identical at `--jobs 1/2/8`.
//! * [`export`] — JSON Lines and Chrome `trace_event` renderings of a
//!   trace (`epre opt --trace out.json --trace-format {jsonl,chrome}`).
//! * [`provenance`] — opcode-keyed eliminated/inserted ledgers
//!   ([`FunctionLedger`]) reconstructed from a trace, with the
//!   conservation law `ops_before − eliminated + inserted == ops_after`
//!   that `tests/provenance_conservation.rs` checks over the whole suite.
//! * [`table1`] — the paper's Table 1 (dynamic operation counts per
//!   level, % improvement vs baseline) as aligned text or JSON, backing
//!   `epre report`.
//! * [`metrics`] — the *live* side of observability: a lock-cheap
//!   [`MetricsRegistry`] of counters, gauges, and fixed-ladder latency
//!   histograms with Prometheus-style text and JSON renders, consumed by
//!   the serve daemon's `epre metrics` endpoint.
//!
//! ## Determinism rules
//!
//! Exported bytes never contain wall-clock readings. Spans carry a
//! *virtual* timestamp (a per-lane cursor advanced by a deterministic
//! duration derived from the pass's input size) so the same module at the
//! same level produces byte-identical JSONL and Chrome traces on any
//! machine and at any `--jobs` count. Real wall time is still recorded in
//! [`Event::wall_ns`] for the `--timings` report, but that field is
//! excluded from both export formats.
//!
//! The crate is dependency-free by design — it speaks plain strings and
//! integers, so every other workspace crate can depend on it without
//! cycles.

pub mod event;
pub mod export;
pub mod metrics;
pub mod provenance;
pub mod table1;
pub mod trace;

pub use event::{Event, PassCounters, Value};
pub use metrics::{
    quantile_le, Counter, Gauge, Histogram, MetricsRegistry, Snapshot, LATENCY_BUCKETS_US,
};
pub use provenance::{ledgers_from_trace, FunctionLedger, OpcodeDelta, PassProvenance};
pub use table1::{improvement, Table1, Table1Row};
pub use trace::{FunctionTrace, NullTracer, Trace, Tracer};
