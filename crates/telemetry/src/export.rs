//! Trace export: JSON Lines and Chrome `trace_event` renderings.
//!
//! Both formats are rendered from the merged [`Trace`] with hand-rolled
//! JSON (the workspace builds against an offline registry — no serde).
//! Neither rendering includes [`crate::Event::wall_ns`], so equal traces render
//! to byte-identical output regardless of machine load or `--jobs`.

use crate::event::Value;
use crate::trace::Trace;
use std::fmt::Write as _;

/// Escape `s` into `out` as JSON string *contents* (no surrounding
/// quotes).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn value_into(out: &mut String, v: &Value) {
    match v {
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
        Value::Map(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_into(out, k);
                let _ = write!(out, "\":{x}");
            }
            out.push('}');
        }
    }
}

fn fields_into(out: &mut String, fields: &[(String, Value)]) {
    for (k, v) in fields {
        out.push_str(",\"");
        escape_into(out, k);
        out.push_str("\":");
        value_into(out, v);
    }
}

impl Trace {
    /// Render as JSON Lines: one object per event, fixed key order
    /// (`seq`, `kind`, `function`, `pass`, `lane`, `ts`, `dur`, then the
    /// event's fields), trailing newline per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let _ = write!(out, "{{\"seq\":{},\"kind\":\"", e.seq);
            escape_into(&mut out, &e.kind);
            out.push_str("\",\"function\":\"");
            escape_into(&mut out, &e.function);
            out.push_str("\",\"pass\":\"");
            escape_into(&mut out, &e.pass);
            let _ = write!(out, "\",\"lane\":{},\"ts\":{},\"dur\":{}", e.lane, e.ts, e.dur);
            fields_into(&mut out, &e.fields);
            out.push_str("}\n");
        }
        out
    }

    /// Render in Chrome `trace_event` JSON (the object form with a
    /// `traceEvents` array), loadable in `about://tracing` / Perfetto.
    ///
    /// Each lane becomes a named thread (`tid = lane + 1`); spans render
    /// as complete (`"ph":"X"`) events and everything else as instants
    /// (`"ph":"i"`). Virtual timestamps are used as microseconds.
    pub fn to_chrome(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: &str, out: &mut String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(s);
        };

        // Thread-name metadata: one per distinct lane, in lane order.
        let mut named: Vec<u32> = Vec::new();
        let mut line = String::new();
        for e in &self.events {
            if named.contains(&e.lane) {
                continue;
            }
            named.push(e.lane);
            line.clear();
            let _ = write!(
                line,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"",
                e.lane + 1
            );
            escape_into(&mut line, &e.function);
            line.push_str("\"}}");
            emit(&line, &mut out);
        }

        for e in &self.events {
            line.clear();
            line.push_str("{\"name\":\"");
            escape_into(&mut line, &e.pass);
            line.push_str("\",\"cat\":\"");
            escape_into(&mut line, &e.kind);
            if e.kind == "span" {
                let _ = write!(
                    line,
                    "\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}",
                    e.lane + 1,
                    e.ts,
                    e.dur
                );
            } else {
                let _ = write!(
                    line,
                    "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{}",
                    e.lane + 1,
                    e.ts
                );
            }
            let _ = write!(line, ",\"args\":{{\"seq\":{},\"function\":\"", e.seq);
            escape_into(&mut line, &e.function);
            line.push('"');
            fields_into(&mut line, &e.fields);
            line.push_str("}}");
            emit(&line, &mut out);
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FunctionTrace, Tracer};

    fn sample() -> Trace {
        let mut lane = FunctionTrace::new("f\"1", 0);
        lane.span(
            "pre",
            7,
            999,
            vec![
                ("changed".into(), Value::Bool(true)),
                ("counters".into(), Value::Map(vec![("edges_split".into(), 2)])),
            ],
        );
        lane.instant("provenance", "pre", vec![("ops_before".into(), Value::U64(9))]);
        Trace::from_lanes(vec![lane])
    }

    #[test]
    fn jsonl_has_fixed_prefix_and_escapes() {
        let s = sample().to_jsonl();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with("{\"seq\":0,\"kind\":\"span\",\"function\":\"f\\\"1\",\"pass\":\"pre\""),
            "{}",
            lines[0]
        );
        assert!(lines[0].contains("\"counters\":{\"edges_split\":2}"));
        assert!(lines[1].contains("\"ops_before\":9"));
        assert!(!s.contains("999"), "wall_ns must not be exported");
    }

    #[test]
    fn chrome_has_metadata_span_and_instant() {
        let s = sample().to_chrome();
        assert!(s.starts_with("{\"traceEvents\":["));
        assert!(s.ends_with("]}\n"));
        assert!(s.contains("\"ph\":\"M\""));
        assert!(s.contains("\"ph\":\"X\""));
        assert!(s.contains("\"ph\":\"i\""));
        assert!(s.contains("\"tid\":1"));
        assert!(!s.contains("999"), "wall_ns must not be exported");
    }

    #[test]
    fn escaping_covers_control_chars() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
