//! The paper's Table 1: dynamic operation counts per optimization level,
//! with percentage improvements vs the baseline column.
//!
//! The collection side (compiling and interpreting the suite) lives in
//! the root crate's `report` module; this module only renders, so it
//! stays dependency-free and unit-testable with synthetic rows.

use std::fmt::Write as _;

/// The paper's percentage-improvement convention: `(old − new) / old`,
/// rendered like Table 1 — empty for no change, `0%`/`-0%` for changes
/// under half a percent.
pub fn improvement(old: u64, new: u64) -> String {
    if old == new {
        return String::new();
    }
    let pct = 100.0 * (old as f64 - new as f64) / old as f64;
    if pct.abs() < 0.5 {
        return if pct >= 0.0 { "0%".into() } else { "-0%".into() };
    }
    format!("{pct:.0}%")
}

/// One routine's row: dynamic operation counts, one per level, in the
/// same order as [`Table1::levels`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Routine name (the paper's Table 1 row label).
    pub name: String,
    /// Dynamic operation counts, one per level.
    pub counts: Vec<u64>,
}

/// The full table: level labels plus one row per routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1 {
    /// Level labels, column order (first column is the baseline).
    pub levels: Vec<String>,
    /// Rows in suite order.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Column totals (the paper's final row).
    pub fn totals(&self) -> Vec<u64> {
        let mut totals = vec![0u64; self.levels.len()];
        for row in &self.rows {
            for (t, c) in totals.iter_mut().zip(&row.counts) {
                *t += c;
            }
        }
        totals
    }

    /// Render as an aligned text table: a routine column, then per level
    /// a count column and (for non-baseline levels) a `%` column giving
    /// the improvement vs the baseline column, ending with a totals row.
    pub fn render_text(&self) -> String {
        let name_w = self
            .rows
            .iter()
            .map(|r| r.name.len())
            .chain(["routine".len(), "total".len()])
            .max()
            .unwrap_or(7);
        let mut out = String::new();
        let _ = write!(out, "{:<name_w$}", "routine");
        for (i, level) in self.levels.iter().enumerate() {
            let _ = write!(out, "  {level:>12}");
            if i > 0 {
                let _ = write!(out, " {:>5}", "%");
            }
        }
        out.push('\n');
        let body = |name: &str, counts: &[u64], out: &mut String| {
            let _ = write!(out, "{name:<name_w$}");
            let base = counts.first().copied().unwrap_or(0);
            for (i, c) in counts.iter().enumerate() {
                let _ = write!(out, "  {c:>12}");
                if i > 0 {
                    let _ = write!(out, " {:>5}", improvement(base, *c));
                }
            }
            out.push('\n');
        };
        for row in &self.rows {
            body(&row.name, &row.counts, &mut out);
        }
        body("total", &self.totals(), &mut out);
        out
    }

    /// Render as a single JSON object (hand-rolled; row names in the
    /// suite are plain identifiers, but they are escaped anyway).
    pub fn to_json(&self) -> String {
        fn escape(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut out = String::from("{\"bench\":\"table1\",\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", escape(l));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let base = row.counts.first().copied().unwrap_or(0);
            let _ = write!(out, "{{\"name\":\"{}\",\"counts\":[", escape(&row.name));
            for (j, c) in row.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push_str("],\"pct_vs_baseline\":[");
            for (j, c) in row.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape(&improvement(base, *c)));
            }
            out.push_str("]}");
        }
        out.push_str("],\"totals\":[");
        for (i, t) in self.totals().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{t}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table1 {
        Table1 {
            levels: vec!["baseline".into(), "partial".into(), "distribution".into()],
            rows: vec![
                Table1Row { name: "saxpy".into(), counts: vec![100, 80, 70] },
                Table1Row { name: "fold".into(), counts: vec![50, 50, 40] },
            ],
        }
    }

    #[test]
    fn improvement_formatting_matches_table1_conventions() {
        assert_eq!(improvement(100, 100), "");
        assert_eq!(improvement(1000, 999), "0%");
        assert_eq!(improvement(1000, 1001), "-0%");
        assert_eq!(improvement(100, 80), "20%");
        assert_eq!(improvement(100, 112), "-12%");
    }

    #[test]
    fn totals_sum_columns() {
        assert_eq!(sample().totals(), vec![150, 130, 110]);
    }

    #[test]
    fn text_rendering_is_aligned_and_totalled() {
        let text = sample().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        assert!(lines[0].contains("baseline") && lines[0].contains("distribution"));
        assert!(lines[1].starts_with("saxpy"));
        assert!(lines[3].starts_with("total"));
        assert!(lines[1].contains("20%"), "{text}");
        assert!(lines[2].contains("20%"), "50 -> 40 is 20%: {text}");
        let widths: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned: {widths:?}");
    }

    #[test]
    fn json_rendering_is_well_formed_enough() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"bench\":\"table1\",\"levels\":[\"baseline\""));
        assert!(json.contains("\"rows\":[{\"name\":\"saxpy\",\"counts\":[100,80,70]"));
        assert!(json.contains("\"pct_vs_baseline\":[\"\",\"20%\",\"30%\"]"));
        assert!(json.ends_with("\"totals\":[150,130,110]}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
