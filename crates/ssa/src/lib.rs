//! # epre-ssa — pruned SSA form for `epre-ir`
//!
//! The paper's rank computation, global reassociation and global value
//! numbering all work on **pruned SSA** (§3.1: "our first step is to build
//! the pruned SSA form of the routine"), with one twist the paper calls
//! out explicitly:
//!
//! > During the renaming step, we remove all copies, effectively folding
//! > them into φ-nodes. This approach simplifies the intermediate code by
//! > removing our dependence on the programmer's choice of variable names.
//!
//! This crate provides:
//!
//! * [`construct`] — pruned SSA construction (Cytron et al. φ-placement on
//!   iterated dominance frontiers, restricted to live variables; renaming
//!   with optional **copy folding**),
//! * [`destruct`] — SSA destruction: critical-edge splitting followed by
//!   φ-replacement with correctly sequentialized parallel copies,
//! * [`verify`] — an SSA verifier (single assignment + dominance of uses),
//!   used by tests and debug assertions throughout the pipeline.
//!
//! ```
//! use epre_ir::{FunctionBuilder, Ty, Const, BinOp, Inst};
//! use epre_ssa::{construct, destruct, verify};
//!
//! // x = 1; if (p) x = 2; return x   — needs a φ at the join.
//! let mut b = FunctionBuilder::new("join", Some(Ty::Int));
//! let p = b.param(Ty::Int);
//! let x = b.new_reg(Ty::Int);
//! let one = b.loadi(Const::Int(1));
//! b.copy_to(x, one);
//! let then_b = b.new_block();
//! let join_b = b.new_block();
//! b.branch(p, then_b, join_b);
//! b.switch_to(then_b);
//! let two = b.loadi(Const::Int(2));
//! b.copy_to(x, two);
//! b.jump(join_b);
//! b.switch_to(join_b);
//! b.ret(Some(x));
//! let mut f = b.finish();
//!
//! construct::build_ssa(&mut f, construct::SsaOptions { fold_copies: true });
//! verify::verify_ssa(&f).unwrap();
//! assert_eq!(f.block(join_b).phi_count(), 1);
//!
//! destruct::destroy_ssa(&mut f);
//! assert!(f.blocks.iter().all(|b| b.phi_count() == 0));
//! ```

pub mod construct;
pub mod destruct;
pub mod verify;

pub use construct::{build_ssa, SsaOptions};
pub use destruct::destroy_ssa;
pub use verify::{verify_ssa, verify_ssa_all, SsaError, SsaErrorKind};
