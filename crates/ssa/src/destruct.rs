//! SSA destruction: φ-nodes become copies in predecessor blocks.
//!
//! This is the conventional Briggs-style out-of-SSA translation:
//!
//! 1. split every critical edge (a φ input arriving along a critical edge
//!    would otherwise be copied on a path that doesn't reach the φ),
//! 2. for each block with φs and each predecessor, gather the *parallel*
//!    copy set `{dst_i <- arg_i}` and sequentialize it, inserting a cycle-
//!    breaking temporary when the copies permute registers (the classic
//!    "swap problem"),
//! 3. append the sequentialized copies to the predecessor, before its
//!    terminator, and delete the φs.
//!
//! The paper's forward-propagation step performs the same replacement as
//! its first action ("we first remove each φ-node x <- φ(y, z) by inserting
//! the copies x <- y and z <- z at the end of the appropriate predecessor
//! blocks", §3.1), so this module is shared between the reassociation pass
//! and the generic out-of-SSA epilogue used after SCCP, GVN, and DCE.

use std::collections::HashMap;

use epre_cfg::edit::split_critical_edges;
use epre_cfg::Cfg;
use epre_ir::{BlockId, Function, Inst, Reg};

/// Replace all φ-nodes of `f` with copies; on return the function contains
/// no φ-nodes and is executable by the interpreter.
pub fn destroy_ssa(f: &mut Function) {
    if f.blocks.iter().all(|b| b.phi_count() == 0) {
        return;
    }
    split_critical_edges(f);
    let cfg = Cfg::new(f);

    // Collect the parallel copy set per predecessor edge.
    let mut edge_copies: HashMap<BlockId, Vec<(Reg, Reg)>> = HashMap::new();
    for (bid, block) in f.iter_blocks() {
        for inst in block.phis() {
            if let Inst::Phi { dst, args } = inst {
                for &(pb, src) in args {
                    edge_copies.entry(pb).or_default().push((*dst, src));
                }
            }
        }
        let _ = bid;
        let _ = &cfg;
    }

    // Remove the φs.
    for block in &mut f.blocks {
        let n = block.phi_count();
        block.insts.drain(..n);
    }

    // Insert sequentialized copies at the end of each predecessor.
    for (pb, copies) in edge_copies {
        let seq = sequentialize(&copies, |ty_src| f.new_reg(f.ty_of(ty_src)));
        let block = f.block_mut(pb);
        for (dst, src) in seq {
            block.insts.push(Inst::Copy { dst, src });
        }
    }
}

/// Order a parallel copy set so sequential execution computes the parallel
/// semantics, inserting a temporary to break each register cycle.
///
/// `fresh(reg)` must return a new register with the same type as `reg`.
fn sequentialize(copies: &[(Reg, Reg)], mut fresh: impl FnMut(Reg) -> Reg) -> Vec<(Reg, Reg)> {
    // Drop no-op copies.
    let mut pending: Vec<(Reg, Reg)> = copies.iter().copied().filter(|(d, s)| d != s).collect();
    let mut out = Vec::new();
    // Current location of each original source value.
    let mut loc: HashMap<Reg, Reg> = HashMap::new();
    for &(_, s) in &pending {
        loc.insert(s, s);
    }

    while !pending.is_empty() {
        // A copy is safe when its destination is not a pending source.
        if let Some(i) = pending
            .iter()
            .position(|&(d, _)| !pending.iter().any(|&(_, s)| loc[&s] == d))
        {
            let (d, s) = pending.remove(i);
            out.push((d, loc[&s]));
            continue;
        }
        // Every destination is also a live source: a cycle. Break it by
        // parking one source in a temporary.
        let (_, s) = pending[0];
        let t = fresh(s);
        out.push((t, loc[&s]));
        loc.insert(s, t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_ssa, SsaOptions};
    use epre_ir::{BinOp, Const, FunctionBuilder, Terminator, Ty};

    #[test]
    fn sequentialize_acyclic() {
        // a <- b, c <- a must emit c <- a before a <- b.
        let a = Reg(0);
        let b = Reg(1);
        let c = Reg(2);
        let seq = sequentialize(&[(a, b), (c, a)], |_| unreachable!("no cycle"));
        assert_eq!(seq, vec![(c, a), (a, b)]);
    }

    #[test]
    fn sequentialize_swap_uses_temp() {
        // a <- b, b <- a: the swap problem.
        let a = Reg(0);
        let b = Reg(1);
        let t = Reg(9);
        let seq = sequentialize(&[(a, b), (b, a)], |_| t);
        // Must produce: t <- src; then the two copies reading the right
        // locations. Simulate to check semantics.
        let mut vals: HashMap<Reg, i64> = HashMap::from([(a, 1), (b, 2)]);
        for (d, s) in seq {
            let v = vals[&s];
            vals.insert(d, v);
        }
        assert_eq!(vals[&a], 2);
        assert_eq!(vals[&b], 1);
    }

    #[test]
    fn sequentialize_three_cycle() {
        // a <- b, b <- c, c <- a.
        let a = Reg(0);
        let b = Reg(1);
        let c = Reg(2);
        let mut next = 10;
        let seq = sequentialize(&[(a, b), (b, c), (c, a)], |_| {
            next += 1;
            Reg(next)
        });
        let mut vals: HashMap<Reg, i64> = HashMap::from([(a, 1), (b, 2), (c, 3)]);
        for (d, s) in seq {
            let v = vals[&s];
            vals.insert(d, v);
        }
        assert_eq!((vals[&a], vals[&b], vals[&c]), (2, 3, 1));
    }

    #[test]
    fn sequentialize_drops_noops() {
        let a = Reg(0);
        assert!(sequentialize(&[(a, a)], |_| unreachable!()).is_empty());
    }

    #[test]
    fn round_trip_through_ssa() {
        // x = 1; if p { x = 2 }; return x — build SSA then destroy it; the
        // result must be φ-free and verifier-clean.
        let mut b = FunctionBuilder::new("rt", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let x = b.new_reg(Ty::Int);
        let one = b.loadi(Const::Int(1));
        b.copy_to(x, one);
        let t = b.new_block();
        let j = b.new_block();
        b.branch(p, t, j);
        b.switch_to(t);
        let two = b.loadi(Const::Int(2));
        b.copy_to(x, two);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(x));
        let mut f = b.finish();
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        destroy_ssa(&mut f);
        assert!(f.verify().is_ok());
        assert!(f.blocks.iter().all(|b| b.phi_count() == 0));
        // The critical edge entry->join was split; copies landed there and
        // in the then-arm.
        let copies: usize = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Copy { .. }))
            .count();
        assert_eq!(copies, 2);
    }

    #[test]
    fn loop_round_trip() {
        // i = 0; while (i < n) i = i + 1; return i
        let mut b = FunctionBuilder::new("lrt", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let i = b.new_reg(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(i, z);
        b.jump(head);
        b.switch_to(head);
        let c = b.bin(BinOp::CmpLt, Ty::Int, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.loadi(Const::Int(1));
        let i2 = b.bin(BinOp::Add, Ty::Int, i, one);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        crate::verify::verify_ssa(&f).unwrap();
        destroy_ssa(&mut f);
        assert!(f.verify().is_ok());
        assert!(f.blocks.iter().all(|b| b.phi_count() == 0));
    }

    #[test]
    fn no_phis_is_a_noop() {
        let mut b = FunctionBuilder::new("n", Some(Ty::Int));
        let x = b.param(Ty::Int);
        b.ret(Some(x));
        let mut f = b.finish();
        let before = f.clone();
        destroy_ssa(&mut f);
        assert_eq!(f, before);
    }

    #[test]
    fn phi_swap_at_join_is_correct() {
        // Swapping φs at a loop header: a,b = b,a each iteration.
        // Build directly in SSA form.
        use epre_ir::Block;
        let mut f = Function::new("swap", None);
        let a0 = f.new_reg(Ty::Int);
        let b0 = f.new_reg(Ty::Int);
        let a1 = f.new_reg(Ty::Int);
        let b1 = f.new_reg(Ty::Int);
        let c = f.new_reg(Ty::Int);
        let mut entry = Block::new(Terminator::Jump { target: BlockId(1) });
        entry.insts.push(Inst::LoadI { dst: a0, value: Const::Int(1) });
        entry.insts.push(Inst::LoadI { dst: b0, value: Const::Int(2) });
        entry.insts.push(Inst::LoadI { dst: c, value: Const::Int(0) });
        f.add_block(entry);
        let mut head = Block::new(Terminator::Branch {
            cond: c,
            then_to: BlockId(1),
            else_to: BlockId(2),
        });
        head.insts.push(Inst::Phi { dst: a1, args: vec![(BlockId(0), a0), (BlockId(1), b1)] });
        head.insts.push(Inst::Phi { dst: b1, args: vec![(BlockId(0), b0), (BlockId(1), a1)] });
        f.add_block(head);
        f.add_block(Block::new(Terminator::Return { value: None }));
        assert!(f.verify().is_ok());
        destroy_ssa(&mut f);
        assert!(f.verify().is_ok());
        // The back-edge copy set {a1 <- b1, b1 <- a1} needed a temp: find 3
        // copies on the back-edge block.
        let max_copies = f.blocks.iter().map(|b| {
            b.insts.iter().filter(|i| matches!(i, Inst::Copy { .. })).count()
        }).max().unwrap();
        assert_eq!(max_copies, 3, "swap requires a cycle-breaking temp");
    }
}
