//! SSA verification: single assignment and dominance of uses.
//!
//! [`verify_ssa_all`] accumulates **every** violation (the lint engine's
//! preferred form); [`verify_ssa`] keeps the historical fail-fast `Result`
//! contract by returning the first accumulated error.

use std::collections::HashMap;
use std::fmt;

use epre_cfg::{Cfg, Dominators};
use epre_ir::{BlockId, Function, Inst, Reg};

/// Classification of an SSA invariant violation, so downstream tooling
/// (the lint engine) can map each error onto a stable rule code without
/// parsing the message text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SsaErrorKind {
    /// A register (or parameter) has more than one definition.
    MultipleDefinition,
    /// A use names a register with no reachable definition.
    UndefinedUse,
    /// A use is not dominated by its definition (for φ inputs: the
    /// definition does not reach the end of the named predecessor).
    UseNotDominated,
}

/// An SSA invariant violation found by [`verify_ssa`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsaError {
    /// Function name.
    pub function: String,
    /// Block where the violation was found (`None` for parameter errors).
    pub block: Option<BlockId>,
    /// Which invariant was broken.
    pub kind: SsaErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for SsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.function, self.message)
    }
}

impl std::error::Error for SsaError {}

/// Check that `f` is in SSA form:
///
/// * every register has at most one definition (params define once),
/// * every non-φ use is dominated by its definition,
/// * every φ use reaches the end of the corresponding predecessor block
///   (its definition dominates that predecessor).
///
/// Unreachable blocks are ignored (passes drop them independently).
///
/// # Errors
/// Returns the first violation found ([`verify_ssa_all`] collects all of
/// them).
pub fn verify_ssa(f: &Function) -> Result<(), SsaError> {
    match verify_ssa_all(f).into_iter().next() {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Check the SSA invariants of `f`, accumulating **every** violation
/// instead of stopping at the first. An empty vector means the function is
/// a well-formed SSA program.
///
/// On a multiple-definition violation the **first** definition stays in
/// force for the subsequent dominance checks, so one double definition
/// does not cascade into spurious dominance errors for every use of the
/// register.
pub fn verify_ssa_all(f: &Function) -> Vec<SsaError> {
    let mut errs: Vec<SsaError> = Vec::new();
    let fail = |errs: &mut Vec<SsaError>,
                    block: Option<BlockId>,
                    kind: SsaErrorKind,
                    message: String| {
        errs.push(SsaError { function: f.name.clone(), block, kind, message });
    };
    let cfg = Cfg::new(f);
    let dom = Dominators::new(f, &cfg);

    // Definition points: block + instruction index (params: entry, -1).
    // The first definition wins; later ones are reported, not recorded.
    let mut defs: HashMap<Reg, (BlockId, isize)> = HashMap::new();
    for &p in &f.params {
        match defs.entry(p) {
            std::collections::hash_map::Entry::Occupied(_) => fail(
                &mut errs,
                Some(BlockId::ENTRY),
                SsaErrorKind::MultipleDefinition,
                format!("parameter {p} defined twice"),
            ),
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert((BlockId::ENTRY, -1));
            }
        }
    }
    for (bid, block) in f.iter_blocks() {
        if !dom.is_reachable(bid) {
            continue;
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(d) = inst.dst() {
                match defs.entry(d) {
                    std::collections::hash_map::Entry::Occupied(_) => fail(
                        &mut errs,
                        Some(bid),
                        SsaErrorKind::MultipleDefinition,
                        format!("register {d} defined more than once"),
                    ),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert((bid, i as isize));
                    }
                }
            }
        }
    }

    // A definition at (db, di) dominates a use at (ub, ui) iff db strictly
    // dominates ub, or same block with di < ui.
    let dominates_use = |d: (BlockId, isize), u: (BlockId, isize)| -> bool {
        if d.0 == u.0 {
            d.1 < u.1
        } else {
            dom.strictly_dominates(d.0, u.0)
        }
    };

    for (bid, block) in f.iter_blocks() {
        if !dom.is_reachable(bid) {
            continue;
        }
        for (i, inst) in block.insts.iter().enumerate() {
            match inst {
                Inst::Phi { args, dst } => {
                    for &(pb, r) in args {
                        match defs.get(&r) {
                            None => fail(
                                &mut errs,
                                Some(bid),
                                SsaErrorKind::UndefinedUse,
                                format!("φ {dst} uses undefined register {r}"),
                            ),
                            Some(&d) => {
                                // Must reach the end of pred block pb.
                                let end = (pb, isize::MAX);
                                if !(d.0 == pb || dominates_use(d, end)) {
                                    fail(
                                        &mut errs,
                                        Some(bid),
                                        SsaErrorKind::UseNotDominated,
                                        format!(
                                            "φ {dst} input {r} from {pb} not dominated by its definition"
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
                _ => {
                    for r in inst.uses() {
                        match defs.get(&r) {
                            None => fail(
                                &mut errs,
                                Some(bid),
                                SsaErrorKind::UndefinedUse,
                                format!("`{inst}` uses undefined register {r}"),
                            ),
                            Some(&d) => {
                                if !dominates_use(d, (bid, i as isize)) {
                                    fail(
                                        &mut errs,
                                        Some(bid),
                                        SsaErrorKind::UseNotDominated,
                                        format!(
                                            "use of {r} in `{inst}` not dominated by its definition"
                                        ),
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
        for r in block.term.uses() {
            match defs.get(&r) {
                None => fail(
                    &mut errs,
                    Some(bid),
                    SsaErrorKind::UndefinedUse,
                    format!("terminator uses undefined register {r}"),
                ),
                Some(&d) => {
                    if !dominates_use(d, (bid, isize::MAX - 1)) {
                        fail(
                            &mut errs,
                            Some(bid),
                            SsaErrorKind::UseNotDominated,
                            format!("terminator use of {r} not dominated by its definition"),
                        );
                    }
                }
            }
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{Block, Const, FunctionBuilder, Terminator, Ty};

    #[test]
    fn accepts_ssa() {
        let mut b = FunctionBuilder::new("ok", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.loadi(Const::Int(1));
        let z = b.bin(epre_ir::BinOp::Add, Ty::Int, x, y);
        b.ret(Some(z));
        let f = b.finish();
        assert!(verify_ssa(&f).is_ok());
    }

    #[test]
    fn rejects_double_definition() {
        let mut b = FunctionBuilder::new("dd", Some(Ty::Int));
        let x = b.param(Ty::Int);
        b.copy_to(x, x); // redefines the parameter
        b.ret(Some(x));
        let f = b.finish();
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("defined"));
        assert_eq!(e.kind, SsaErrorKind::MultipleDefinition);
    }

    #[test]
    fn rejects_undominated_use() {
        // Two arms; use in one arm of a def from the other.
        let mut f = Function::new("u", Some(Ty::Int));
        let p = f.new_reg(Ty::Int);
        f.params.push(p);
        let x = f.new_reg(Ty::Int);
        let y = f.new_reg(Ty::Int);
        f.add_block(Block::new(Terminator::Branch {
            cond: p,
            then_to: BlockId(1),
            else_to: BlockId(2),
        }));
        let mut b1 = Block::new(Terminator::Return { value: Some(x) });
        b1.insts.push(Inst::LoadI { dst: x, value: Const::Int(1) });
        f.add_block(b1);
        // b2 uses x, which does not dominate it.
        let mut b2 = Block::new(Terminator::Return { value: Some(y) });
        b2.insts.push(Inst::Copy { dst: y, src: x });
        f.add_block(b2);
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("not dominated") || e.message.contains("undefined"));
    }

    #[test]
    fn rejects_undefined_use() {
        let mut f = Function::new("uu", Some(Ty::Int));
        let ghost = f.new_reg(Ty::Int);
        f.add_block(Block::new(Terminator::Return { value: Some(ghost) }));
        let e = verify_ssa(&f).unwrap_err();
        assert!(e.message.contains("undefined"));
        assert_eq!(e.kind, SsaErrorKind::UndefinedUse);
    }

    #[test]
    fn accepts_phi_with_back_edge_input() {
        // i0 = 0; head: i1 = φ(entry: i0, body: i2); body: i2 = i1; -> head
        let mut f = Function::new("l", None);
        let i0 = f.new_reg(Ty::Int);
        let i1 = f.new_reg(Ty::Int);
        let i2 = f.new_reg(Ty::Int);
        let c = f.new_reg(Ty::Int);
        let mut entry = Block::new(Terminator::Jump { target: BlockId(1) });
        entry.insts.push(Inst::LoadI { dst: i0, value: Const::Int(0) });
        entry.insts.push(Inst::LoadI { dst: c, value: Const::Int(1) });
        f.add_block(entry);
        let mut head = Block::new(Terminator::Branch {
            cond: c,
            then_to: BlockId(2),
            else_to: BlockId(3),
        });
        head.insts.push(Inst::Phi {
            dst: i1,
            args: vec![(BlockId(0), i0), (BlockId(2), i2)],
        });
        f.add_block(head);
        let mut body = Block::new(Terminator::Jump { target: BlockId(1) });
        body.insts.push(Inst::Copy { dst: i2, src: i1 });
        f.add_block(body);
        f.add_block(Block::new(Terminator::Return { value: None }));
        assert!(f.verify().is_ok());
        assert!(verify_ssa(&f).is_ok());
    }

    #[test]
    fn double_definition_does_not_cascade() {
        // The first definition stays in force, so the later (otherwise
        // well-placed) uses report nothing beyond the double definition.
        let mut b = FunctionBuilder::new("dd2", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let one = b.loadi(Const::Int(1));
        b.push(Inst::Bin { op: epre_ir::BinOp::Add, ty: Ty::Int, dst: one, lhs: x, rhs: x });
        b.ret(Some(one));
        let f = b.finish();
        let all = verify_ssa_all(&f);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].kind, SsaErrorKind::MultipleDefinition);
        assert_eq!(all[0].block, Some(BlockId::ENTRY));
    }
}
