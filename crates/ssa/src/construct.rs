//! Pruned SSA construction with copy folding.
//!
//! Three steps, following Cytron et al. (the paper's reference \[11\]) with
//! the pruning of Choi, Cytron & Ferrante (reference \[7\]):
//!
//! 1. collect the definition sites of every register,
//! 2. place φ-nodes on the iterated dominance frontier of each register's
//!    definition sites — but only in blocks where the register is **live
//!    in** (pruned SSA),
//! 3. rename along a dominator-tree walk, giving every definition a fresh
//!    register; with [`SsaOptions::fold_copies`] set, `x <- copy y` does not
//!    define a new name — the current name of `y` simply becomes the
//!    current name of `x` and the copy disappears, "effectively folding
//!    \[copies\] into φ-nodes" (§3.1).

use epre_analysis::Liveness;
use epre_cfg::{Cfg, Dominators};
use epre_ir::{BlockId, Function, Inst, Reg};

/// Options controlling SSA construction.
#[derive(Copy, Clone, Debug, Default)]
pub struct SsaOptions {
    /// Fold copies during renaming (the paper's variant). When false,
    /// copies are retained and their destinations get fresh names like any
    /// other definition.
    pub fold_copies: bool,
}

/// Rewrite `f` into pruned SSA form in place.
///
/// Every φ-node the pass inserts, and every renamed definition, uses a
/// fresh register; original registers survive only as the names of their
/// first (dominating) definitions where convenient. The function is left
/// verifier-clean and SSA-verifier-clean.
pub fn build_ssa(f: &mut Function, options: SsaOptions) {
    split_looping_entry(f);
    let cfg = Cfg::new(f);
    let dom = Dominators::new(f, &cfg);
    let live = Liveness::new(f, &cfg);

    let n_blocks = f.blocks.len();
    let n_regs = f.reg_count();

    // 1. Definition sites per register (params define at entry).
    let mut def_sites: Vec<Vec<BlockId>> = vec![Vec::new(); n_regs];
    for &p in &f.params {
        def_sites[p.index()].push(BlockId::ENTRY);
    }
    for (bid, block) in f.iter_blocks() {
        for inst in &block.insts {
            if let Some(d) = inst.dst() {
                if def_sites[d.index()].last() != Some(&bid) {
                    def_sites[d.index()].push(bid);
                }
            }
        }
    }

    // 2. φ-placement on iterated dominance frontiers, pruned by liveness.
    // phi_for[b] = registers needing a φ in b.
    let mut phi_for: Vec<Vec<Reg>> = vec![Vec::new(); n_blocks];
    for (r, sites) in def_sites.iter().enumerate().take(n_regs) {
        let reg = Reg(r as u32);
        if sites.is_empty() {
            continue;
        }
        let mut placed: Vec<bool> = vec![false; n_blocks];
        let mut on_work: Vec<bool> = vec![false; n_blocks];
        let mut work: Vec<BlockId> = Vec::new();
        for &b in sites {
            if !on_work[b.index()] {
                on_work[b.index()] = true;
                work.push(b);
            }
        }
        while let Some(b) = work.pop() {
            if !dom.is_reachable(b) {
                continue;
            }
            for &d in dom.frontier(b) {
                if !placed[d.index()] && live.live_in[d.index()].contains(reg.index()) {
                    placed[d.index()] = true;
                    phi_for[d.index()].push(reg);
                    if !on_work[d.index()] {
                        on_work[d.index()] = true;
                        work.push(d);
                    }
                }
            }
        }
    }

    // Insert φ skeletons (args filled during renaming). Unreachable
    // predecessors contribute no φ-input: the edge can never execute and
    // the renaming walk (dominator tree from the entry) never visits them.
    for (bi, regs) in phi_for.iter().enumerate() {
        let bid = BlockId(bi as u32);
        let preds: Vec<BlockId> =
            cfg.preds(bid).iter().copied().filter(|&p| dom.is_reachable(p)).collect();
        for &v in regs {
            let ty = f.ty_of(v);
            let dst = f.new_reg(ty);
            // Record the original variable in the args slot temporarily:
            // each pred maps to `v`, patched to the reaching name later.
            let args = preds.iter().map(|&p| (p, v)).collect();
            f.block_mut(bid).insts.insert(0, Inst::Phi { dst, args });
        }
    }

    // 3. Renaming. `phi_var[b]` remembers which original variable each φ in
    // b stands for (parallel to the φ prefix, in insertion order).
    // We reconstruct it from phi_for: φs were inserted in reverse order of
    // phi_for (each insert pushes to front), so the prefix order is the
    // reverse of phi_for[b].
    let mut phi_var: Vec<Vec<Reg>> = vec![Vec::new(); n_blocks];
    for (bi, regs) in phi_for.iter().enumerate() {
        phi_var[bi] = regs.iter().rev().copied().collect();
    }

    let mut renamer = Renamer {
        f,
        cfg: &cfg,
        dom: &dom,
        stacks: vec![Vec::new(); n_regs],
        phi_var: &phi_var,
        fold_copies: options.fold_copies,
        n_orig_regs: n_regs,
    };
    for &p in &renamer.f.params.clone() {
        renamer.stacks[p.index()].push(p);
    }
    renamer.rename_block(BlockId::ENTRY);
}

/// If the entry block has predecessors (a loop whose header is block 0),
/// move its body into a fresh block and leave block 0 as a plain jump.
/// Classic SSA construction and the renaming walk both assume the entry
/// dominates everything and receives no back edges; the front end never
/// produces such shapes but hand-built or generated IR can.
fn split_looping_entry(f: &mut Function) {
    let cfg = Cfg::new(f);
    if cfg.preds(BlockId::ENTRY).is_empty() {
        return;
    }
    let insts = std::mem::take(&mut f.blocks[BlockId::ENTRY.index()].insts);
    let term = std::mem::replace(
        &mut f.blocks[BlockId::ENTRY.index()].term,
        epre_ir::Terminator::Return { value: None },
    );
    let mut body = epre_ir::Block::new(term);
    body.insts = insts;
    let nb = f.add_block(body);
    // Every edge that targeted the entry now targets the body block —
    // including the body block's own edges (the old self-loop).
    for (id, block) in f.blocks.iter_mut().enumerate() {
        if id != BlockId::ENTRY.index() {
            block.term.retarget(BlockId::ENTRY, nb);
        }
    }
    f.blocks[BlockId::ENTRY.index()].term = epre_ir::Terminator::Jump { target: nb };
}

struct Renamer<'a> {
    f: &'a mut Function,
    cfg: &'a Cfg,
    dom: &'a Dominators,
    /// Current SSA name stack per original register.
    stacks: Vec<Vec<Reg>>,
    phi_var: &'a [Vec<Reg>],
    fold_copies: bool,
    /// Registers >= this are SSA names we created, not original variables.
    n_orig_regs: usize,
}

impl Renamer<'_> {
    fn current(&self, v: Reg) -> Reg {
        // A use of a never-defined register (possible in ill-formed input)
        // keeps its original name.
        self.stacks[v.index()].last().copied().unwrap_or(v)
    }

    fn rename_block(&mut self, b: BlockId) {
        // Track how many pushes to pop on exit, per original register.
        let mut pushed: Vec<Reg> = Vec::new();
        let mut removed: Vec<usize> = Vec::new();

        let phi_count = self.f.block(b).phi_count();
        for i in 0..self.f.block(b).insts.len() {
            let is_phi_slot = i < phi_count;
            let mut inst = self.f.block(b).insts[i].clone();
            if is_phi_slot {
                // φ definitions: dst is already a fresh register; it becomes
                // the current name of the original variable.
                let var = self.phi_var[b.index()][i];
                let dst = inst.dst().expect("φ defines");
                self.stacks[var.index()].push(dst);
                pushed.push(var);
                self.f.block_mut(b).insts[i] = inst;
                continue;
            }
            // Rewrite uses to current names.
            inst.map_uses(|r| self.current(r));
            // Copy folding: the copy's source name becomes the current name
            // of the destination variable, and the copy is dropped.
            if self.fold_copies {
                if let Inst::Copy { dst, src } = inst {
                    self.stacks[dst.index()].push(src);
                    pushed.push(dst);
                    removed.push(i);
                    continue;
                }
            }
            // Ordinary definition: fresh SSA name.
            if let Some(dst) = inst.dst() {
                let ty = self.f.ty_of(dst);
                let fresh = self.f.new_reg(ty);
                inst.set_dst(fresh);
                self.stacks[dst.index()].push(fresh);
                pushed.push(dst);
            }
            self.f.block_mut(b).insts[i] = inst;
        }
        // Terminator uses.
        let mut term = self.f.block(b).term.clone();
        term.map_uses(|r| self.current(r));
        self.f.block_mut(b).term = term;

        // Patch φ arguments of successors for the edge from b.
        for &s in self.cfg.succs(b) {
            for (i, inst) in self.f.blocks[s.index()].insts.iter_mut().enumerate() {
                match inst {
                    Inst::Phi { args, .. } => {
                        let var = self.phi_var[s.index()][i];
                        for (pb, val) in args.iter_mut() {
                            if *pb == b {
                                // The slot still holds the original var; the
                                // reaching name replaces it.
                                let cur = self.stacks[var.index()]
                                    .last()
                                    .copied()
                                    .unwrap_or(*val);
                                *val = cur;
                            }
                        }
                    }
                    _ => break,
                }
            }
        }

        // Recurse over dominator-tree children.
        for &c in self.dom.children(b) {
            self.rename_block(c);
        }

        // Remove folded copies (back to front to keep indices valid).
        for &i in removed.iter().rev() {
            self.f.block_mut(b).insts.remove(i);
        }
        for v in pushed {
            self.stacks[v.index()].pop();
        }
        let _ = self.n_orig_regs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_ssa;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    /// x = 1; if p { x = 2 }; return x
    fn join_fixture() -> (Function, BlockId) {
        let mut b = FunctionBuilder::new("j", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let x = b.new_reg(Ty::Int);
        let one = b.loadi(Const::Int(1));
        b.copy_to(x, one);
        let t = b.new_block();
        let j = b.new_block();
        b.branch(p, t, j);
        b.switch_to(t);
        let two = b.loadi(Const::Int(2));
        b.copy_to(x, two);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(x));
        (b.finish(), j)
    }

    #[test]
    fn places_phi_at_join() {
        let (mut f, j) = join_fixture();
        build_ssa(&mut f, SsaOptions { fold_copies: false });
        assert!(f.verify().is_ok());
        verify_ssa(&f).unwrap();
        assert_eq!(f.block(j).phi_count(), 1);
    }

    #[test]
    fn copy_folding_removes_copies() {
        let (mut f, j) = join_fixture();
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        assert!(f.verify().is_ok());
        verify_ssa(&f).unwrap();
        assert_eq!(f.block(j).phi_count(), 1);
        // All copies folded away.
        let copies = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Copy { .. }))
            .count();
        assert_eq!(copies, 0);
        // The φ's inputs are the two loadi results.
        match &f.block(j).insts[0] {
            Inst::Phi { args, .. } => {
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected φ, got {other}"),
        }
    }

    #[test]
    fn pruning_skips_dead_variables() {
        // x assigned in both arms but never used after the join: no φ.
        let mut b = FunctionBuilder::new("p", Some(Ty::Int));
        let p = b.param(Ty::Int);
        let x = b.new_reg(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        b.branch(p, t, e);
        b.switch_to(t);
        let one = b.loadi(Const::Int(1));
        b.copy_to(x, one);
        b.jump(j);
        b.switch_to(e);
        let two = b.loadi(Const::Int(2));
        b.copy_to(x, two);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(p));
        let mut f = b.finish();
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        verify_ssa(&f).unwrap();
        assert_eq!(f.block(j).phi_count(), 0, "pruned SSA places no dead φ");
    }

    #[test]
    fn loop_variable_gets_phi_at_header() {
        // i = 0; while (i < n) i = i + 1; return i
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let i = b.new_reg(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(i, z);
        b.jump(head);
        b.switch_to(head);
        let c = b.bin(BinOp::CmpLt, Ty::Int, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.loadi(Const::Int(1));
        let i2 = b.bin(BinOp::Add, Ty::Int, i, one);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        verify_ssa(&f).unwrap();
        assert_eq!(f.block(head).phi_count(), 1);
        // The parameter n needs no φ (single definition).
        match &f.block(head).insts[0] {
            Inst::Phi { args, .. } => assert_eq!(args.len(), 2),
            _ => panic!("expected φ"),
        }
    }

    #[test]
    fn straight_line_code_gets_no_phis() {
        let mut b = FunctionBuilder::new("s", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.bin(BinOp::Add, Ty::Int, x, x);
        let z = b.bin(BinOp::Mul, Ty::Int, y, x);
        b.ret(Some(z));
        let mut f = b.finish();
        let before = f.inst_count();
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        verify_ssa(&f).unwrap();
        assert_eq!(f.inst_count(), before);
        assert!(f.blocks.iter().all(|b| b.phi_count() == 0));
    }

    #[test]
    fn redefinition_in_same_block_renames() {
        // x = a; x = x + 1; return x
        let mut b = FunctionBuilder::new("r", Some(Ty::Int));
        let a = b.param(Ty::Int);
        let x = b.new_reg(Ty::Int);
        b.copy_to(x, a);
        let one = b.loadi(Const::Int(1));
        let t = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: t, lhs: x, rhs: one });
        b.copy_to(x, t);
        b.ret(Some(x));
        let mut f = b.finish();
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        verify_ssa(&f).unwrap();
        // After folding: loadi + add remain.
        assert_eq!(f.inst_count(), 2);
        // The add must read the parameter directly now.
        let add = f.blocks[0]
            .insts
            .iter()
            .find(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .unwrap();
        assert!(add.uses().contains(&a));
    }
}
