#![cfg(feature = "prop-tests")]
// Gated: requires the proptest dev-dependency, which the offline build
// environment cannot fetch. Restore it in Cargo.toml and build with
// `--features prop-tests` to run these.

//! Property tests for SSA construction/destruction on randomly shaped
//! CFGs with randomly interleaved definitions and uses of a small set of
//! variables.

use proptest::prelude::*;

use epre_ir::{BinOp, Block, BlockId, Const, Function, Inst, Reg, Terminator, Ty};
use epre_ssa::{build_ssa, destroy_ssa, verify_ssa, SsaOptions};

/// Build a function of `n` blocks whose terminators come from `seeds`,
/// with `k` integer variables assigned/used per the `actions` stream.
/// Variables are all initialized in the entry block so every use is
/// defined on every path.
fn build(n: usize, seeds: &[(usize, usize)], actions: &[(u8, u8, u8)]) -> Function {
    let nvars = 3usize;
    let mut f = Function::new("g", Some(Ty::Int));
    let vars: Vec<Reg> = (0..nvars).map(|_| f.new_reg(Ty::Int)).collect();
    let cond = f.new_reg(Ty::Int);

    for i in 0..n {
        let term = if i == n - 1 {
            Terminator::Return { value: Some(vars[0]) }
        } else {
            let (a, b) = seeds[i % seeds.len()];
            let t = BlockId((a % n) as u32);
            let e = BlockId((b % n) as u32);
            if t == e {
                Terminator::Jump { target: t }
            } else {
                Terminator::Branch { cond, then_to: t, else_to: e }
            }
        };
        let mut blk = Block::new(term);
        if i == 0 {
            blk.insts.push(Inst::LoadI { dst: cond, value: Const::Int(1) });
            for (vi, &v) in vars.iter().enumerate() {
                blk.insts.push(Inst::LoadI { dst: v, value: Const::Int(vi as i64) });
            }
        }
        // A few variable updates per block, drawn from the action stream.
        for (j, &(a, b, c)) in actions.iter().enumerate() {
            if j % n != i {
                continue;
            }
            let dst = vars[a as usize % nvars];
            let lhs = vars[b as usize % nvars];
            let rhs = vars[c as usize % nvars];
            blk.insts.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst, lhs, rhs });
        }
        f.add_block(blk);
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 192, .. ProptestConfig::default() })]

    /// Construction produces verified SSA; destruction returns verified,
    /// φ-free code. With and without copy folding.
    #[test]
    fn construct_destroy_round_trip(
        n in 2usize..10,
        seeds in prop::collection::vec((0usize..10, 0usize..10), 1..10),
        actions in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..20),
        fold in any::<bool>(),
    ) {
        let mut f = build(n, &seeds, &actions);
        prop_assert!(f.verify().is_ok());
        build_ssa(&mut f, SsaOptions { fold_copies: fold });
        prop_assert!(f.verify().is_ok(), "structural verify after build_ssa");
        prop_assert!(verify_ssa(&f).is_ok(), "SSA verify failed:\n{}", f);
        destroy_ssa(&mut f);
        prop_assert!(f.verify().is_ok(), "structural verify after destroy_ssa");
        prop_assert!(f.blocks.iter().all(|b| b.phi_count() == 0));
    }

    /// SSA construction is stable: building SSA twice (idempotence up to
    /// the φs already present is not expected, but the second build must
    /// still produce valid SSA after a destroy).
    #[test]
    fn rebuild_after_destroy_is_valid(
        n in 2usize..8,
        seeds in prop::collection::vec((0usize..8, 0usize..8), 1..8),
        actions in prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 0..12),
    ) {
        let mut f = build(n, &seeds, &actions);
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        destroy_ssa(&mut f);
        build_ssa(&mut f, SsaOptions { fold_copies: true });
        prop_assert!(verify_ssa(&f).is_ok());
        destroy_ssa(&mut f);
        prop_assert!(f.verify().is_ok());
    }
}
