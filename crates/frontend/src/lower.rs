//! Lowering: AST → ILOC.
//!
//! The lowering follows the paper's front-end conventions:
//!
//! * scalar variables live in dedicated registers (*variable names*);
//!   assignments end in a `copy` to the variable's register,
//! * array elements are addressed with explicit three-address arithmetic in
//!   FORTRAN column-major order — `a(i, j)` with dimensions `(d1, d2)`
//!   becomes `base + (i-1) + (j-1)*d1`, the exact "multi-dimensional array
//!   addressing computation" shape §2.1 calls out,
//! * local arrays are allocated statically in the module data segment,
//! * `DO` loops evaluate their bounds once and test at the top
//!   (FORTRAN-77 trip semantics with a constant step).
//!
//! Two register-naming disciplines are supported, selected by
//! [`NamingMode`]; see the crate docs for the contrast. The disciplined
//! mode maintains the §2.2 hash table from lexical expression to canonical
//! register and re-emits the computation into that register at every
//! occurrence, so expression names never cross block boundaries (the §5.1
//! correctness rule).

use std::collections::HashMap;

use epre_ir::{BinOp, Const, FunctionBuilder, Module, Reg, Ty, UnOp};

use crate::ast::{BinExpr, Decl, Expr, FunctionDef, Program, Stmt, TypeName};
use crate::FrontendError;

/// Register-naming discipline used by lowering (paper §2.2).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum NamingMode {
    /// Hash-table expression naming: each lexical expression (and each
    /// constant) has one canonical register; variables are copy targets.
    /// This is what PRE requires and what the paper's compiler does.
    #[default]
    Disciplined,
    /// A fresh temporary for every computed value, as in the paper's
    /// Figure 3. PRE finds far less under this naming; global value
    /// numbering repairs it.
    Simple,
}

/// Lower a parsed [`Program`] to an ILOC [`Module`].
///
/// # Errors
/// Returns the first semantic error (unknown names, arity mismatches,
/// subscript count mismatches, misplaced assumed-size dimensions, …).
pub fn lower_program(program: &Program, mode: NamingMode) -> Result<Module, FrontendError> {
    let mut module = Module::new();
    let mut data_words = 0usize;

    // Pass 1: signatures (param count + return type) for call checking.
    let mut sigs: HashMap<String, Signature> = HashMap::new();
    for f in &program.functions {
        if sigs.contains_key(&f.name) {
            return Err(FrontendError {
                line: f.line,
                message: format!("duplicate procedure `{}`", f.name),
            });
        }
        sigs.insert(f.name.clone(), signature_of(f));
    }

    // Pass 2: lower each function.
    for f in &program.functions {
        let lowered = FnLowerer::new(f, &sigs, mode, &mut data_words)?.lower()?;
        module.functions.push(lowered);
    }
    module.data_words = data_words;
    module.verify().map_err(|e| FrontendError {
        line: 0,
        message: format!("internal error: lowered module fails verification: {e}"),
    })?;
    Ok(module)
}

/// Callee information for call sites.
#[derive(Debug, Clone)]
struct Signature {
    /// Parameter kinds, in order: `None` for an array (address), or the
    /// scalar's type.
    params: Vec<Option<Ty>>,
    /// Return type (None for subroutines).
    ret: Option<Ty>,
}

/// FORTRAN implicit typing: names starting with `i`–`n` are integer.
fn implicit_ty(name: &str) -> Ty {
    match name.chars().next() {
        Some(c @ 'i'..='n') => {
            let _ = c;
            Ty::Int
        }
        _ => Ty::Float,
    }
}

fn decl_ty(ty: TypeName) -> Ty {
    match ty {
        TypeName::Integer => Ty::Int,
        TypeName::Real => Ty::Float,
    }
}

fn signature_of(f: &FunctionDef) -> Signature {
    let decl_of = |name: &str| f.decls.iter().find(|d| d.name == name);
    let params = f
        .params
        .iter()
        .map(|p| match decl_of(p) {
            Some(d) if !d.dims.is_empty() => None,
            Some(d) => Some(decl_ty(d.ty)),
            None => Some(implicit_ty(p)),
        })
        .collect();
    let ret = if f.returns_value {
        Some(match decl_of(&f.name) {
            Some(d) => decl_ty(d.ty),
            None => implicit_ty(&f.name),
        })
    } else {
        None
    };
    Signature { params, ret }
}

/// A name in scope.
#[derive(Debug, Clone)]
enum Sym {
    Scalar {
        reg: Reg,
        ty: Ty,
    },
    Array {
        /// Static base address, or the parameter register holding it.
        base: ArrayBase,
        /// Dimensions; a trailing 0 means assumed-size (parameter arrays).
        dims: Vec<i64>,
        elem_ty: Ty,
    },
}

#[derive(Debug, Clone, Copy)]
enum ArrayBase {
    Static(i64),
    Param(Reg),
}

struct FnLowerer<'a> {
    def: &'a FunctionDef,
    sigs: &'a HashMap<String, Signature>,
    mode: NamingMode,
    b: FunctionBuilder,
    syms: HashMap<String, Sym>,
    ret_ty: Option<Ty>,
    /// Disciplined-mode canonical names for expressions.
    expr_names: HashMap<ExprName, Reg>,
}

/// Hash key identifying a lexical expression for the naming discipline.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum ExprName {
    Bin(BinOp, Ty, Reg, Reg),
    Un(UnOp, Ty, Reg),
    Const(Const),
}

impl<'a> FnLowerer<'a> {
    fn new(
        def: &'a FunctionDef,
        sigs: &'a HashMap<String, Signature>,
        mode: NamingMode,
        data_words: &mut usize,
    ) -> Result<Self, FrontendError> {
        let sig = &sigs[&def.name];
        let ret_ty = sig.ret;
        let mut b = FunctionBuilder::new(def.name.clone(), ret_ty);
        let mut syms = HashMap::new();

        // Parameters first (register order must match call order).
        for (p, kind) in def.params.iter().zip(&sig.params) {
            match kind {
                Some(ty) => {
                    let reg = b.param(*ty);
                    syms.insert(p.clone(), Sym::Scalar { reg, ty: *ty });
                }
                None => {
                    let reg = b.param(Ty::Int); // array base address
                    let d = def.decls.iter().find(|d| d.name == *p).expect("array param decl");
                    validate_dims(d)?;
                    syms.insert(
                        p.clone(),
                        Sym::Array {
                            base: ArrayBase::Param(reg),
                            dims: d.dims.clone(),
                            elem_ty: decl_ty(d.ty),
                        },
                    );
                }
            }
        }
        // Declared locals.
        for d in &def.decls {
            if def.params.contains(&d.name) || d.name == def.name {
                continue; // parameter or function-name type declaration
            }
            if syms.contains_key(&d.name) {
                return Err(FrontendError {
                    line: d.line,
                    message: format!("`{}` declared twice", d.name),
                });
            }
            if d.dims.is_empty() {
                let ty = decl_ty(d.ty);
                let reg = b.new_reg(ty);
                syms.insert(d.name.clone(), Sym::Scalar { reg, ty });
            } else {
                validate_dims(d)?;
                if d.dims.contains(&0) {
                    return Err(FrontendError {
                        line: d.line,
                        message: format!("local array `{}` needs explicit dimensions", d.name),
                    });
                }
                let words: i64 = d.dims.iter().product();
                let base = *data_words as i64;
                *data_words += words as usize;
                syms.insert(
                    d.name.clone(),
                    Sym::Array {
                        base: ArrayBase::Static(base),
                        dims: d.dims.clone(),
                        elem_ty: decl_ty(d.ty),
                    },
                );
            }
        }
        Ok(FnLowerer { def, sigs, mode, b, syms, ret_ty, expr_names: HashMap::new() })
    }

    fn lower(mut self) -> Result<epre_ir::Function, FrontendError> {
        let returned = self.stmts(&self.def.body.clone())?;
        if !returned {
            // Implicit return at `end`.
            match self.ret_ty {
                None => self.b.ret(None),
                Some(ty) => {
                    // FORTRAN would return the (possibly unset) function
                    // variable; returning a deterministic zero keeps the
                    // interpreter's semantics reproducible.
                    let z = self.constant(match ty {
                        Ty::Int => Const::Int(0),
                        Ty::Float => Const::Float(0.0),
                    });
                    self.b.ret(Some(z));
                }
            }
        }
        Ok(self.b.finish())
    }

    // ---- naming discipline -------------------------------------------

    /// Emit a binary operation, honouring the naming mode.
    fn bin(&mut self, op: BinOp, ty: Ty, lhs: Reg, rhs: Reg) -> Reg {
        match self.mode {
            NamingMode::Simple => self.b.bin(op, ty, lhs, rhs),
            NamingMode::Disciplined => {
                // Canonicalize commutative operand order so `y+x` reuses
                // the name of `x+y`.
                let (l, r) = if op.is_commutative() && rhs < lhs { (rhs, lhs) } else { (lhs, rhs) };
                let key = ExprName::Bin(op, ty, l, r);
                match self.expr_names.get(&key) {
                    Some(&dst) => {
                        self.b.push(epre_ir::Inst::Bin { op, ty, dst, lhs: l, rhs: r });
                        dst
                    }
                    None => {
                        let dst = self.b.new_reg(op.result_ty(ty));
                        self.b.push(epre_ir::Inst::Bin { op, ty, dst, lhs: l, rhs: r });
                        self.expr_names.insert(key, dst);
                        dst
                    }
                }
            }
        }
    }

    /// Emit a unary operation, honouring the naming mode.
    fn un(&mut self, op: UnOp, ty: Ty, src: Reg) -> Reg {
        match self.mode {
            NamingMode::Simple => self.b.un(op, ty, src),
            NamingMode::Disciplined => {
                let key = ExprName::Un(op, ty, src);
                match self.expr_names.get(&key) {
                    Some(&dst) => {
                        self.b.push(epre_ir::Inst::Un { op, ty, dst, src });
                        dst
                    }
                    None => {
                        let dst = self.b.new_reg(op.result_ty(ty));
                        self.b.push(epre_ir::Inst::Un { op, ty, dst, src });
                        self.expr_names.insert(key, dst);
                        dst
                    }
                }
            }
        }
    }

    /// Materialize a constant, honouring the naming mode.
    fn constant(&mut self, c: Const) -> Reg {
        match self.mode {
            NamingMode::Simple => self.b.loadi(c),
            NamingMode::Disciplined => {
                let key = ExprName::Const(c);
                match self.expr_names.get(&key) {
                    Some(&dst) => {
                        self.b.push(epre_ir::Inst::LoadI { dst, value: c });
                        dst
                    }
                    None => {
                        let dst = self.b.new_reg(c.ty());
                        self.b.push(epre_ir::Inst::LoadI { dst, value: c });
                        self.expr_names.insert(key, dst);
                        dst
                    }
                }
            }
        }
    }

    /// Coerce `(reg, ty)` to `want`.
    fn coerce(&mut self, reg: Reg, ty: Ty, want: Ty) -> Reg {
        match (ty, want) {
            (Ty::Int, Ty::Float) => self.un(UnOp::I2F, Ty::Int, reg),
            (Ty::Float, Ty::Int) => self.un(UnOp::F2I, Ty::Float, reg),
            _ => reg,
        }
    }

    // ---- statements ---------------------------------------------------

    fn stmts(&mut self, body: &[Stmt]) -> Result<bool, FrontendError> {
        // Returns true if the statement list definitely terminated (ended
        // in `return` on every path through its tail).
        for (i, s) in body.iter().enumerate() {
            if self.stmt(s)? {
                // Unreachable trailing statements are a semantic error in
                // this front end (keeps lowering simple and honest).
                if i + 1 != body.len() {
                    return Err(FrontendError {
                        line: stmt_line(&body[i + 1]),
                        message: "unreachable statement after `return`".into(),
                    });
                }
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Lower one statement; returns true if it unconditionally returned.
    fn stmt(&mut self, s: &Stmt) -> Result<bool, FrontendError> {
        match s {
            Stmt::Assign { name, subs, value, line } => {
                self.assign(name, subs, value, *line)?;
                Ok(false)
            }
            Stmt::Return { value, line } => {
                match (self.ret_ty, value) {
                    (None, None) => self.b.ret(None),
                    (None, Some(_)) => {
                        return Err(FrontendError {
                            line: *line,
                            message: "subroutine cannot return a value".into(),
                        })
                    }
                    (Some(_), None) => {
                        return Err(FrontendError {
                            line: *line,
                            message: "function must return a value".into(),
                        })
                    }
                    (Some(want), Some(e)) => {
                        let (r, ty) = self.expr(e)?;
                        let r = self.coerce(r, ty, want);
                        self.b.ret(Some(r));
                    }
                }
                Ok(true)
            }
            Stmt::Call { name, args, line } => {
                let arg_regs = self.call_args(name, args, *line)?;
                let sig = self.sigs.get(name).ok_or_else(|| FrontendError {
                    line: *line,
                    message: format!("unknown subroutine `{name}`"),
                })?;
                if sig.ret.is_some() {
                    return Err(FrontendError {
                        line: *line,
                        message: format!("`{name}` is a function; call it in an expression"),
                    });
                }
                self.b.call_void(name.clone(), arg_regs);
                Ok(false)
            }
            Stmt::If { arms, otherwise, .. } => self.lower_if(arms, otherwise),
            Stmt::Do { var, from, to, step, body, line } => {
                self.lower_do(var, from, to, *step, body, *line)
            }
            Stmt::While { cond, body, .. } => self.lower_while(cond, body),
        }
    }

    fn assign(
        &mut self,
        name: &str,
        subs: &[Expr],
        value: &Expr,
        line: usize,
    ) -> Result<(), FrontendError> {
        let (vr, vty) = self.expr(value)?;
        if subs.is_empty() {
            let (reg, ty) = self.scalar_lvalue(name);
            let vr = self.coerce(vr, vty, ty);
            self.b.copy_to(reg, vr);
        } else {
            let (addr, elem_ty) = self.element_address(name, subs, line)?;
            let vr = self.coerce(vr, vty, elem_ty);
            self.b.store(elem_ty, addr, vr);
        }
        Ok(())
    }

    /// Resolve (creating on first assignment, FORTRAN-style) a scalar
    /// variable.
    fn scalar_lvalue(&mut self, name: &str) -> (Reg, Ty) {
        match self.syms.get(name) {
            Some(Sym::Scalar { reg, ty }) => (*reg, *ty),
            Some(Sym::Array { .. }) => {
                // Assigning to an array without subscripts: treat as an
                // implicit scalar shadow would be confusing; create a
                // scalar of the implicit type under a distinct key is
                // wrong, so fall through to implicit creation is NOT done.
                // Instead the caller reports via element_address when subs
                // are present; without subs this is an error in spirit,
                // but FORTRAN function-name assignment lands here too. We
                // allocate a scalar alias.
                let ty = implicit_ty(name);
                let reg = self.b.new_reg(ty);
                self.syms.insert(name.to_string(), Sym::Scalar { reg, ty });
                (reg, ty)
            }
            None => {
                let ty = implicit_ty(name);
                let reg = self.b.new_reg(ty);
                self.syms.insert(name.to_string(), Sym::Scalar { reg, ty });
                (reg, ty)
            }
        }
    }

    fn lower_if(
        &mut self,
        arms: &[(Expr, Vec<Stmt>)],
        otherwise: &[Stmt],
    ) -> Result<bool, FrontendError> {
        let join = self.b.new_block();
        let mut all_return = true;
        let mut joined = false;

        for (cond, body) in arms {
            let (c, cty) = self.expr(cond)?;
            let c = self.coerce(c, cty, Ty::Int);
            let then_b = self.b.new_block();
            let else_b = self.b.new_block();
            self.b.branch(c, then_b, else_b);
            self.b.switch_to(then_b);
            let returned = self.stmts(body)?;
            if !returned {
                self.b.jump(join);
                joined = true;
                all_return = false;
            }
            self.b.switch_to(else_b);
        }
        // Else arm (possibly empty) in the current block.
        let returned = self.stmts(otherwise)?;
        if !returned {
            self.b.jump(join);
            joined = true;
            all_return = false;
        }
        self.b.switch_to(join);
        if !joined {
            // Join unreachable; terminate it vacuously so the builder is
            // happy, then report "everything returned" to the caller. The
            // clean pass removes the dead block later.
            match self.ret_ty {
                None => self.b.ret(None),
                Some(ty) => {
                    let z = self.constant(match ty {
                        Ty::Int => Const::Int(0),
                        Ty::Float => Const::Float(0.0),
                    });
                    self.b.ret(Some(z));
                }
            }
        }
        Ok(all_return)
    }

    fn lower_do(
        &mut self,
        var: &str,
        from: &Expr,
        to: &Expr,
        step: i64,
        body: &[Stmt],
        _line: usize,
    ) -> Result<bool, FrontendError> {
        // FORTRAN-77 rotated loop shape, exactly the paper's Figure 3: a
        // zero-trip guard at the top, the test at the bottom. This is the
        // shape that lets PRE hoist loop invariants without lengthening
        // the zero-trip path (a top-test `while` shape would block it).
        let (iv, ivty) = self.scalar_lvalue(var);
        let (fr, frty) = self.expr(from)?;
        let fr = self.coerce(fr, frty, ivty);
        self.b.copy_to(iv, fr);
        // The limit is evaluated once, into a stable variable register.
        let (tr, trty) = self.expr(to)?;
        let tr = self.coerce(tr, trty, ivty);
        let limit = self.b.new_reg(ivty);
        self.b.copy_to(limit, tr);

        let body_b = self.b.new_block();
        let exit = self.b.new_block();
        // Guard: skip the loop entirely when the trip count is zero.
        let guard_cmp = if step > 0 { BinOp::CmpGt } else { BinOp::CmpLt };
        let g = self.bin(guard_cmp, ivty, iv, limit);
        self.b.branch(g, exit, body_b);
        self.b.switch_to(body_b);
        let returned = self.stmts(body)?;
        if !returned {
            let s = self.constant(match ivty {
                Ty::Int => Const::Int(step),
                Ty::Float => Const::Float(step as f64),
            });
            let next = self.bin(BinOp::Add, ivty, iv, s);
            self.b.copy_to(iv, next);
            let cmp = if step > 0 { BinOp::CmpLe } else { BinOp::CmpGe };
            let c = self.bin(cmp, ivty, iv, limit);
            self.b.branch(c, body_b, exit);
        }
        self.b.switch_to(exit);
        Ok(false)
    }

    fn lower_while(&mut self, cond: &Expr, body: &[Stmt]) -> Result<bool, FrontendError> {
        let head = self.b.new_block();
        let body_b = self.b.new_block();
        let exit = self.b.new_block();
        self.b.jump(head);
        self.b.switch_to(head);
        let (c, cty) = self.expr(cond)?;
        let c = self.coerce(c, cty, Ty::Int);
        self.b.branch(c, body_b, exit);
        self.b.switch_to(body_b);
        let returned = self.stmts(body)?;
        if !returned {
            self.b.jump(head);
        }
        self.b.switch_to(exit);
        Ok(false)
    }

    // ---- expressions ---------------------------------------------------

    /// Lower an expression; returns its register and type.
    fn expr(&mut self, e: &Expr) -> Result<(Reg, Ty), FrontendError> {
        match e {
            Expr::Int(v) => Ok((self.constant(Const::Int(*v)), Ty::Int)),
            Expr::Real(v) => Ok((self.constant(Const::Float(*v)), Ty::Float)),
            Expr::Var(name, line) => match self.syms.get(name) {
                Some(Sym::Scalar { reg, ty }) => Ok((*reg, *ty)),
                Some(Sym::Array { .. }) => Err(FrontendError {
                    line: *line,
                    message: format!("array `{name}` used without subscripts"),
                }),
                None => Err(FrontendError {
                    line: *line,
                    message: format!("`{name}` used before any assignment"),
                }),
            },
            Expr::Neg(inner, _) => {
                let (r, ty) = self.expr(inner)?;
                Ok((self.un(UnOp::Neg, ty, r), ty))
            }
            Expr::Not(inner, _) => {
                let (r, ty) = self.expr(inner)?;
                let r = self.coerce(r, ty, Ty::Int);
                let z = self.constant(Const::Int(0));
                Ok((self.bin(BinOp::CmpEq, Ty::Int, r, z), Ty::Int))
            }
            Expr::Bin { op, lhs, rhs, .. } => {
                let (lr, lt) = self.expr(lhs)?;
                let (rr, rt) = self.expr(rhs)?;
                // FORTRAN mixed-mode arithmetic: promote to float if either
                // side is float; logical ops stay integral.
                let (op, is_logic) = match op {
                    BinExpr::Add => (BinOp::Add, false),
                    BinExpr::Sub => (BinOp::Sub, false),
                    BinExpr::Mul => (BinOp::Mul, false),
                    BinExpr::Div => (BinOp::Div, false),
                    BinExpr::Eq => (BinOp::CmpEq, false),
                    BinExpr::Ne => (BinOp::CmpNe, false),
                    BinExpr::Lt => (BinOp::CmpLt, false),
                    BinExpr::Le => (BinOp::CmpLe, false),
                    BinExpr::Gt => (BinOp::CmpGt, false),
                    BinExpr::Ge => (BinOp::CmpGe, false),
                    BinExpr::And => (BinOp::And, true),
                    BinExpr::Or => (BinOp::Or, true),
                };
                let ty = if is_logic {
                    Ty::Int
                } else if lt == Ty::Float || rt == Ty::Float {
                    Ty::Float
                } else {
                    Ty::Int
                };
                let lr = self.coerce(lr, lt, ty);
                let rr = self.coerce(rr, rt, ty);
                Ok((self.bin(op, ty, lr, rr), op.result_ty(ty)))
            }
            Expr::Index { name, args, line } => self.index_or_call(name, args, *line),
        }
    }

    /// `name(args)`: array element, builtin, intrinsic or function call.
    fn index_or_call(
        &mut self,
        name: &str,
        args: &[Expr],
        line: usize,
    ) -> Result<(Reg, Ty), FrontendError> {
        if let Some(Sym::Array { elem_ty, .. }) = self.syms.get(name) {
            let elem_ty = *elem_ty;
            let (addr, _) = self.element_address(name, args, line)?;
            return Ok((self.load_element(elem_ty, addr), elem_ty));
        }
        // Builtins lowered to ILOC operations rather than calls.
        match name {
            "min" | "max" => {
                if args.len() < 2 {
                    return Err(FrontendError {
                        line,
                        message: format!("`{name}` needs at least two arguments"),
                    });
                }
                let op = if name == "min" { BinOp::Min } else { BinOp::Max };
                let mut vals = Vec::new();
                let mut ty = Ty::Int;
                for a in args {
                    let (r, t) = self.expr(a)?;
                    if t == Ty::Float {
                        ty = Ty::Float;
                    }
                    vals.push((r, t));
                }
                let mut acc = {
                    let (r, t) = vals[0];
                    self.coerce(r, t, ty)
                };
                for &(r, t) in &vals[1..] {
                    let r = self.coerce(r, t, ty);
                    acc = self.bin(op, ty, acc, r);
                }
                return Ok((acc, ty));
            }
            "float" | "real" => {
                if args.len() != 1 {
                    return Err(FrontendError {
                        line,
                        message: format!("`{name}` takes one argument"),
                    });
                }
                let (r, t) = self.expr(&args[0])?;
                return Ok((self.coerce(r, t, Ty::Float), Ty::Float));
            }
            "int" => {
                if args.len() != 1 {
                    return Err(FrontendError { line, message: "`int` takes one argument".into() });
                }
                let (r, t) = self.expr(&args[0])?;
                return Ok((self.coerce(r, t, Ty::Int), Ty::Int));
            }
            _ => {}
        }
        // Intrinsic library functions (opaque calls).
        if epre_is_intrinsic(name) {
            let mut regs = Vec::new();
            for a in args {
                let (r, t) = self.expr(a)?;
                // Polymorphic intrinsics keep their argument type; the
                // float-only ones coerce.
                let r = if matches!(name, "abs" | "sign" | "mod") {
                    r
                } else {
                    self.coerce(r, t, Ty::Float)
                };
                regs.push(r);
            }
            let ret_ty = if matches!(name, "abs" | "sign" | "mod") {
                // Type follows the first argument.
                self.b.ty_of(regs[0])
            } else {
                Ty::Float
            };
            let dst = self.b.call(name.to_string(), regs, ret_ty);
            return Ok((dst, ret_ty));
        }
        // User function call.
        let sig = self.sigs.get(name).cloned().ok_or_else(|| FrontendError {
            line,
            message: format!("unknown array or function `{name}`"),
        })?;
        let ret = sig.ret.ok_or_else(|| FrontendError {
            line,
            message: format!("subroutine `{name}` used as a function"),
        })?;
        let regs = self.call_args(name, args, line)?;
        let dst = self.b.call(name.to_string(), regs, ret);
        Ok((dst, ret))
    }

    /// Lower call arguments, checking against the callee's signature.
    /// Whole-array arguments pass their base address.
    fn call_args(
        &mut self,
        callee: &str,
        args: &[Expr],
        line: usize,
    ) -> Result<Vec<Reg>, FrontendError> {
        let sig = self.sigs.get(callee).cloned().ok_or_else(|| FrontendError {
            line,
            message: format!("unknown procedure `{callee}`"),
        })?;
        if sig.params.len() != args.len() {
            return Err(FrontendError {
                line,
                message: format!(
                    "`{callee}` expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
            });
        }
        let mut out = Vec::with_capacity(args.len());
        for (a, kind) in args.iter().zip(&sig.params) {
            match kind {
                None => {
                    // Array parameter: the argument must be an array name.
                    match a {
                        Expr::Var(n, l) => match self.syms.get(n) {
                            Some(Sym::Array { base, .. }) => {
                                let r = self.base_reg(*base);
                                out.push(r);
                            }
                            _ => {
                                return Err(FrontendError {
                                    line: *l,
                                    message: format!(
                                        "`{callee}` expects an array for this argument"
                                    ),
                                })
                            }
                        },
                        other => {
                            return Err(FrontendError {
                                line: other.line().max(line),
                                message: format!("`{callee}` expects an array argument"),
                            })
                        }
                    }
                }
                Some(want) => {
                    let (r, t) = self.expr(a)?;
                    out.push(self.coerce(r, t, *want));
                }
            }
        }
        Ok(out)
    }

    fn base_reg(&mut self, base: ArrayBase) -> Reg {
        match base {
            ArrayBase::Static(addr) => self.constant(Const::Int(addr)),
            ArrayBase::Param(reg) => reg,
        }
    }

    /// Compute the address of `name(subs...)` in column-major order.
    fn element_address(
        &mut self,
        name: &str,
        subs: &[Expr],
        line: usize,
    ) -> Result<(Reg, Ty), FrontendError> {
        let (base, dims, elem_ty) = match self.syms.get(name) {
            Some(Sym::Array { base, dims, elem_ty }) => (*base, dims.clone(), *elem_ty),
            _ => {
                return Err(FrontendError {
                    line,
                    message: format!("`{name}` is not an array"),
                })
            }
        };
        if subs.len() != dims.len() {
            return Err(FrontendError {
                line,
                message: format!(
                    "`{name}` has {} dimension(s), {} subscript(s) given",
                    dims.len(),
                    subs.len()
                ),
            });
        }
        // offset = (s1 - 1) + (s2 - 1)*d1 + (s3 - 1)*d1*d2 + ...
        let one = self.constant(Const::Int(1));
        let mut offset: Option<Reg> = None;
        let mut stride: i64 = 1;
        for (k, sub) in subs.iter().enumerate() {
            let (sr, st) = self.expr(sub)?;
            let sr = self.coerce(sr, st, Ty::Int);
            let adj = self.bin(BinOp::Sub, Ty::Int, sr, one);
            let term = if stride == 1 {
                adj
            } else {
                let s = self.constant(Const::Int(stride));
                self.bin(BinOp::Mul, Ty::Int, adj, s)
            };
            offset = Some(match offset {
                None => term,
                Some(acc) => self.bin(BinOp::Add, Ty::Int, acc, term),
            });
            if k < dims.len() - 1 {
                stride *= dims[k];
            }
        }
        let off = offset.expect("at least one subscript");
        let baser = self.base_reg(base);
        let addr = self.bin(BinOp::Add, Ty::Int, baser, off);
        Ok((addr, elem_ty))
    }

    fn load_element(&mut self, elem_ty: Ty, addr: Reg) -> Reg {
        self.b.load(elem_ty, addr)
    }
}

fn validate_dims(d: &Decl) -> Result<(), FrontendError> {
    // `*` (encoded 0) may appear only as the last dimension.
    for (i, &dim) in d.dims.iter().enumerate() {
        if dim == 0 && i + 1 != d.dims.len() {
            return Err(FrontendError {
                line: d.line,
                message: format!("`*` must be the last dimension of `{}`", d.name),
            });
        }
    }
    Ok(())
}

fn stmt_line(s: &Stmt) -> usize {
    match s {
        Stmt::Assign { line, .. }
        | Stmt::If { line, .. }
        | Stmt::Do { line, .. }
        | Stmt::While { line, .. }
        | Stmt::Call { line, .. }
        | Stmt::Return { line, .. } => *line,
    }
}

fn epre_is_intrinsic(name: &str) -> bool {
    matches!(
        name,
        "sqrt"
            | "exp"
            | "log"
            | "log10"
            | "sin"
            | "cos"
            | "tan"
            | "atan"
            | "atan2"
            | "pow"
            | "abs"
            | "sign"
            | "mod"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;
    use epre_ir::Inst;

    fn lower(src: &str, mode: NamingMode) -> Module {
        lower_program(&parse_program(src).unwrap(), mode).unwrap()
    }

    #[test]
    fn disciplined_naming_reuses_expression_names() {
        // x = y + z ; a = y ; b = a + z — the paper's §2.2 example.
        // Under the discipline, `y + z` and `a + z` have different names
        // (different operand names), but two occurrences of `y + z` share.
        let src = "subroutine s(y, z)\nreal y, z\nbegin\n\
                   x = y + z\n\
                   w = y + z\n\
                   end\n";
        let m = lower(src, NamingMode::Disciplined);
        let f = m.function("s").unwrap();
        let adds: Vec<&Inst> = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .collect();
        assert_eq!(adds.len(), 2);
        assert_eq!(adds[0].dst(), adds[1].dst(), "same lexical expression, same name");
    }

    #[test]
    fn simple_naming_gives_fresh_temps() {
        let src = "subroutine s(y, z)\nreal y, z\nbegin\n\
                   x = y + z\n\
                   w = y + z\n\
                   end\n";
        let m = lower(src, NamingMode::Simple);
        let f = m.function("s").unwrap();
        let adds: Vec<&Inst> = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .collect();
        assert_eq!(adds.len(), 2);
        assert_ne!(adds[0].dst(), adds[1].dst());
    }

    #[test]
    fn commuted_operands_share_a_name_when_disciplined() {
        let src = "subroutine s(y, z)\nreal y, z\nbegin\n\
                   x = y + z\n\
                   w = z + y\n\
                   end\n";
        let m = lower(src, NamingMode::Disciplined);
        let f = m.function("s").unwrap();
        let adds: Vec<&Inst> = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, .. }))
            .collect();
        assert_eq!(adds[0].dst(), adds[1].dst());
        assert_eq!(adds[0].uses(), adds[1].uses(), "operands canonicalized");
    }

    #[test]
    fn constants_get_canonical_names() {
        let src = "subroutine s()\nbegin\n\
                   i = 5\n\
                   j = 5\n\
                   end\n";
        let m = lower(src, NamingMode::Disciplined);
        let f = m.function("s").unwrap();
        let loadis: Vec<&Inst> = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::LoadI { .. }))
            .collect();
        assert_eq!(loadis.len(), 2);
        assert_eq!(loadis[0].dst(), loadis[1].dst());
    }

    #[test]
    fn implicit_typing_follows_fortran() {
        let src = "subroutine s()\nbegin\n\
                   i = 1\n\
                   x = 1.5\n\
                   end\n";
        let m = lower(src, NamingMode::Simple);
        let f = m.function("s").unwrap();
        // i gets Int, x gets Float: check the copies' destination types.
        let copies: Vec<&Inst> =
            f.blocks[0].insts.iter().filter(|i| matches!(i, Inst::Copy { .. })).collect();
        assert_eq!(f.ty_of(copies[0].dst().unwrap()), Ty::Int);
        assert_eq!(f.ty_of(copies[1].dst().unwrap()), Ty::Float);
    }

    #[test]
    fn array_addressing_is_column_major() {
        let src = "function f(i, j)\nreal m(10, 20)\nbegin\n\
                   m(i, j) = 1.0\n\
                   return m(i, j)\n\
                   end\n";
        let m = lower(src, NamingMode::Disciplined);
        assert_eq!(m.data_words, 200);
        let f = m.function("f").unwrap();
        // Address arithmetic: (i-1) + (j-1)*10 — a multiply by the leading
        // dimension must appear.
        let has_mul_by_10 = f.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(i, Inst::Bin { op: BinOp::Mul, .. })
        });
        assert!(has_mul_by_10);
        // Element type is float.
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Store { ty: Ty::Float, .. })));
    }

    #[test]
    fn arrays_allocate_disjoint_storage() {
        let src = "subroutine a()\nreal v(8)\nbegin\nv(1) = 0\nend\n\
                   subroutine b()\nreal w(8)\nbegin\nw(1) = 0\nend\n";
        let m = lower(src, NamingMode::Simple);
        assert_eq!(m.data_words, 16);
    }

    #[test]
    fn mixed_mode_arithmetic_promotes() {
        let src = "function f(i)\ninteger i\nbegin\nreturn i + 0.5\nend\n";
        let m = lower(src, NamingMode::Simple);
        let f = m.function("f").unwrap();
        assert!(f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Un { op: UnOp::I2F, .. })));
        assert_eq!(f.ret_ty, Some(Ty::Float));
    }

    #[test]
    fn function_return_type_from_name() {
        let m = lower("function ifoo()\nbegin\nreturn 1\nend\n", NamingMode::Simple);
        assert_eq!(m.function("ifoo").unwrap().ret_ty, Some(Ty::Int));
        let m = lower("function xfoo()\nbegin\nreturn 1.0\nend\n", NamingMode::Simple);
        assert_eq!(m.function("xfoo").unwrap().ret_ty, Some(Ty::Float));
        // Overridden by a declaration of the function name.
        let m = lower("function ifoo()\nreal ifoo\nbegin\nreturn 1.0\nend\n", NamingMode::Simple);
        assert_eq!(m.function("ifoo").unwrap().ret_ty, Some(Ty::Float));
    }

    #[test]
    fn errors_for_bad_programs() {
        let err = |src: &str| {
            lower_program(&parse_program(src).unwrap(), NamingMode::Simple).unwrap_err()
        };
        assert!(err("subroutine s()\nbegin\nreturn 1\nend\n").message.contains("subroutine"));
        assert!(err("function f()\nbegin\nreturn\nend\n").message.contains("must return"));
        assert!(err("subroutine s()\nbegin\nx = y\nend\n").message.contains("before any"));
        assert!(err("subroutine s()\nreal v(4)\nbegin\nx = v(1, 2)\nend\n")
            .message
            .contains("dimension"));
        assert!(err("subroutine s()\nbegin\ncall nosuch(1)\nend\n").message.contains("unknown"));
        assert!(err("subroutine s(x)\nreal x(*)\nbegin\ncall t(1)\nend\n\
                     subroutine t(v)\nreal v(*)\nbegin\nv(1)=0\nend\n")
            .message
            .contains("array"));
        assert!(err("subroutine s()\nreal v(*)\nbegin\nend\n").message.contains("explicit"));
        assert!(err("function f()\nbegin\nreturn 1\nx = 2\nend\n")
            .message
            .contains("unreachable"));
        assert!(err("function f()\nbegin\nreturn 1\nend\nfunction f()\nbegin\nreturn 2\nend\n")
            .message
            .contains("duplicate"));
    }

    #[test]
    fn do_loop_shape_matches_paper() {
        // Figure 3: enter, initialization, guarded loop.
        let src = "function foo(y, z)\nreal y, z, s, x\ninteger i\nbegin\n\
                   s = 0\n\
                   x = y + z\n\
                   do i = x, 100\n\
                     s = i + s + x\n\
                   enddo\n\
                   return s\nend\n";
        let m = lower(src, NamingMode::Simple);
        let f = m.function("foo").unwrap();
        // Figure 3 rotated shape: entry-with-guard + body + exit.
        assert_eq!(f.blocks.len(), 3);
        assert!(f.verify().is_ok());
        // Loop body adds i (int→float), s, x.
        let body_adds = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Add, ty: Ty::Float, .. }))
            .count();
        assert!(body_adds >= 3); // y+z, i+s, (i+s)+x
    }

    #[test]
    fn min_max_builtins_lower_to_ops() {
        let src = "function f(a, b, c)\nreal a, b, c\nbegin\nreturn max(a, b, c)\nend\n";
        let m = lower(src, NamingMode::Simple);
        let f = m.function("f").unwrap();
        let maxes = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Bin { op: BinOp::Max, .. }))
            .count();
        assert_eq!(maxes, 2);
        assert_eq!(f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i, Inst::Call { .. })).count(), 0);
    }

    #[test]
    fn intrinsics_lower_to_calls() {
        let src = "function f(a)\nreal a\nbegin\nreturn sqrt(a) + abs(a)\nend\n";
        let m = lower(src, NamingMode::Disciplined);
        let f = m.function("f").unwrap();
        let calls = f
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 2);
    }
}
