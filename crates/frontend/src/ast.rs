//! Abstract syntax of the mini-FORTRAN language.

/// A scalar type name.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TypeName {
    /// `integer`
    Integer,
    /// `real`
    Real,
}

/// A whole compilation unit: one or more procedures.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The procedures, in source order.
    pub functions: Vec<FunctionDef>,
}

/// A `function` (returns a value) or `subroutine` (does not).
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// Procedure name.
    pub name: String,
    /// Parameter names, in order.
    pub params: Vec<String>,
    /// True for `function`, false for `subroutine`.
    pub returns_value: bool,
    /// Declarations preceding `begin`.
    pub decls: Vec<Decl>,
    /// The body.
    pub body: Vec<Stmt>,
    /// Source line of the header.
    pub line: usize,
}

/// One declared name (possibly an array).
#[derive(Debug, Clone, PartialEq)]
pub struct Decl {
    /// Declared type.
    pub ty: TypeName,
    /// Name.
    pub name: String,
    /// Array dimensions: empty for scalars. A parameter array may use `*`
    /// as its last dimension (assumed size), encoded as 0.
    pub dims: Vec<i64>,
    /// Source line.
    pub line: usize,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `lhs = expr` or `a(i, j) = expr`
    Assign {
        /// Target variable or array name.
        name: String,
        /// Subscripts; empty for scalars.
        subs: Vec<Expr>,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: usize,
    },
    /// `if c then ... {elseif c then ...} [else ...] endif`
    If {
        /// `(condition, body)` for the `if` and each `elseif`, in order.
        arms: Vec<(Expr, Vec<Stmt>)>,
        /// The `else` body (empty when absent).
        otherwise: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `do v = lo, hi [, step] ... enddo` (step is a nonzero integer
    /// constant; FORTRAN trip-count semantics: bounds evaluated once).
    Do {
        /// Loop variable.
        var: String,
        /// Lower bound.
        from: Expr,
        /// Upper bound.
        to: Expr,
        /// Constant step (default 1).
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `while c do ... endwhile`
    While {
        /// Continuation condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: usize,
    },
    /// `call sub(args)`
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// `return [expr]`
    Return {
        /// The returned value (required in functions, absent in
        /// subroutines).
        value: Option<Expr>,
        /// Source line.
        line: usize,
    },
}

/// Binary operators of the surface language.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BinExpr {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.and.`
    And,
    /// `.or.`
    Or,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// An integer literal.
    Int(i64),
    /// A real literal.
    Real(f64),
    /// A scalar variable reference (or whole-array reference in a call
    /// argument position).
    Var(String, usize),
    /// An array element or a function/intrinsic call — disambiguated by
    /// the lowering phase using the symbol table, like FORTRAN.
    Index {
        /// Array or callee name.
        name: String,
        /// Subscripts or arguments.
        args: Vec<Expr>,
        /// Source line.
        line: usize,
    },
    /// A binary operation.
    Bin {
        /// Operator.
        op: BinExpr,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source line.
        line: usize,
    },
    /// Unary minus.
    Neg(Box<Expr>, usize),
    /// `.not.`
    Not(Box<Expr>, usize),
}

impl Expr {
    /// The source line of the expression (for error reporting).
    pub fn line(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Real(_) => 0,
            Expr::Var(_, l) => *l,
            Expr::Index { line, .. } => *line,
            Expr::Bin { line, .. } => *line,
            Expr::Neg(_, l) | Expr::Not(_, l) => *l,
        }
    }
}
