//! The lexer: source text → token stream.
//!
//! Newlines are significant (statement separators); `!` starts a comment
//! running to end of line; identifiers and keywords are case-insensitive
//! (normalized to lower case) as in FORTRAN.

use crate::FrontendError;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `.and.`
    And,
    /// `.or.`
    Or,
    /// `.not.`
    Not,
    /// `->` (unused in the surface language but reserved)
    Arrow,
    /// One or more newlines.
    Newline,
}

/// A token plus its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line number.
    pub line: usize,
}

/// Tokenize `source`.
///
/// # Errors
/// Returns a [`FrontendError`] on malformed numbers or stray characters.
pub fn lex(source: &str) -> Result<Vec<Spanned>, FrontendError> {
    let mut out: Vec<Spanned> = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let n = bytes.len();

    let err = |line: usize, m: String| FrontendError { line, message: m };

    while i < n {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '!' => {
                // `!=` is the not-equal operator; a lone `!` starts a
                // comment running to end of line.
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Spanned { tok: Tok::Ne, line });
                    i += 2;
                } else {
                    while i < n && bytes[i] != b'\n' {
                        i += 1;
                    }
                }
            }
            '\n' => {
                if !matches!(out.last(), Some(Spanned { tok: Tok::Newline, .. }) | None) {
                    out.push(Spanned { tok: Tok::Newline, line });
                }
                line += 1;
                i += 1;
            }
            '(' => {
                out.push(Spanned { tok: Tok::LParen, line });
                i += 1;
            }
            ')' => {
                out.push(Spanned { tok: Tok::RParen, line });
                i += 1;
            }
            ',' => {
                out.push(Spanned { tok: Tok::Comma, line });
                i += 1;
            }
            '+' => {
                out.push(Spanned { tok: Tok::Plus, line });
                i += 1;
            }
            '*' => {
                out.push(Spanned { tok: Tok::Star, line });
                i += 1;
            }
            '/' => {
                out.push(Spanned { tok: Tok::Slash, line });
                i += 1;
            }
            '-' => {
                if i + 1 < n && bytes[i + 1] == b'>' {
                    out.push(Spanned { tok: Tok::Arrow, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Minus, line });
                    i += 1;
                }
            }
            '=' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Spanned { tok: Tok::Eq, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Assign, line });
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Spanned { tok: Tok::Le, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Lt, line });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < n && bytes[i + 1] == b'=' {
                    out.push(Spanned { tok: Tok::Ge, line });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Gt, line });
                    i += 1;
                }
            }
            '.' => {
                // Either a dotted operator (.and. / .or. / .not.) or the
                // start of a real literal like `.5`.
                let rest = &source[i..];
                let lower = rest.to_ascii_lowercase();
                if lower.starts_with(".and.") {
                    out.push(Spanned { tok: Tok::And, line });
                    i += 5;
                } else if lower.starts_with(".or.") {
                    out.push(Spanned { tok: Tok::Or, line });
                    i += 4;
                } else if lower.starts_with(".not.") {
                    out.push(Spanned { tok: Tok::Not, line });
                    i += 5;
                } else if i + 1 < n && bytes[i + 1].is_ascii_digit() {
                    let (tok, len) = lex_number(&source[i..], line)?;
                    out.push(Spanned { tok, line });
                    i += len;
                } else {
                    return Err(err(line, format!("unexpected character `{c}`")));
                }
            }
            '0'..='9' => {
                let (tok, len) = lex_number(&source[i..], line)?;
                out.push(Spanned { tok, line });
                i += len;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < n
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = source[start..i].to_ascii_lowercase();
                out.push(Spanned { tok: Tok::Ident(word), line });
            }
            _ => return Err(err(line, format!("unexpected character `{c}`"))),
        }
    }
    out.push(Spanned { tok: Tok::Newline, line });
    Ok(out)
}

/// Lex a number starting at the head of `s`; returns the token and its
/// byte length. Accepts `123`, `1.5`, `.5`, `1e-3`, `2.5e+4`, `1d0`
/// (FORTRAN double exponent `d` treated as `e`).
fn lex_number(s: &str, line: usize) -> Result<(Tok, usize), FrontendError> {
    let bytes = s.as_bytes();
    let mut i = 0;
    let n = bytes.len();
    let mut is_real = false;
    while i < n && bytes[i].is_ascii_digit() {
        i += 1;
    }
    if i < n && bytes[i] == b'.' {
        // Not a dotted operator: require a digit or end after the dot.
        let after = &s[i + 1..].to_ascii_lowercase();
        if !(after.starts_with("and.") || after.starts_with("or.") || after.starts_with("not.")) {
            is_real = true;
            i += 1;
            while i < n && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    if i < n && matches!(bytes[i], b'e' | b'E' | b'd' | b'D') {
        let mut j = i + 1;
        if j < n && matches!(bytes[j], b'+' | b'-') {
            j += 1;
        }
        if j < n && bytes[j].is_ascii_digit() {
            is_real = true;
            i = j;
            while i < n && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = s[..i].to_ascii_lowercase().replace('d', "e");
    if is_real {
        text.parse::<f64>()
            .map(|v| (Tok::Real(v), i))
            .map_err(|_| FrontendError { line, message: format!("bad real literal `{text}`") })
    } else {
        text.parse::<i64>()
            .map(|v| (Tok::Int(v), i))
            .map_err(|_| FrontendError { line, message: format!("bad integer literal `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_idents_lowercase() {
        assert_eq!(
            toks("Function FOO"),
            vec![Tok::Ident("function".into()), Tok::Ident("foo".into()), Tok::Newline]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Newline]);
        assert_eq!(toks("1.5"), vec![Tok::Real(1.5), Tok::Newline]);
        assert_eq!(toks(".25"), vec![Tok::Real(0.25), Tok::Newline]);
        assert_eq!(toks("1e3"), vec![Tok::Real(1000.0), Tok::Newline]);
        assert_eq!(toks("2.5e-1"), vec![Tok::Real(0.25), Tok::Newline]);
        assert_eq!(toks("1d0"), vec![Tok::Real(1.0), Tok::Newline]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a <= b == c != d"),
            vec![
                Tok::Ident("a".into()),
                Tok::Le,
                Tok::Ident("b".into()),
                Tok::Eq,
                Tok::Ident("c".into()),
                Tok::Ne,
                Tok::Ident("d".into()),
                Tok::Newline
            ]
        );
    }

    #[test]
    fn dotted_operators_and_real_after_int() {
        assert_eq!(
            toks("a .and. b .or. .not. c"),
            vec![
                Tok::Ident("a".into()),
                Tok::And,
                Tok::Ident("b".into()),
                Tok::Or,
                Tok::Not,
                Tok::Ident("c".into()),
                Tok::Newline
            ]
        );
        // `1.and.2` lexes as Int(1) And Int(2), like FORTRAN.
        assert_eq!(toks("1.and.2"), vec![Tok::Int(1), Tok::And, Tok::Int(2), Tok::Newline]);
    }

    #[test]
    fn comments_and_newlines_collapse() {
        let t = toks("a ! comment\n\n\nb");
        assert_eq!(
            t,
            vec![Tok::Ident("a".into()), Tok::Newline, Tok::Ident("b".into()), Tok::Newline]
        );
    }

    #[test]
    fn line_numbers_track() {
        let s = lex("a\nb\n  c").unwrap();
        let find = |name: &str| s.iter().find(|t| t.tok == Tok::Ident(name.into())).unwrap().line;
        assert_eq!(find("a"), 1);
        assert_eq!(find("b"), 2);
        assert_eq!(find("c"), 3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("a # b").is_err());
        assert!(lex("@").is_err());
    }
}
