//! # epre-frontend — a mini-FORTRAN front end producing ILOC
//!
//! The paper's compiler "consumes FORTRAN and produces ILOC". This crate
//! plays that role for a small FORTRAN-77-flavoured language that is rich
//! enough to express the benchmark suite: typed scalars and column-major
//! arrays, `DO` loops, `IF`/`ELSEIF`/`ELSE`, `WHILE`, subroutines,
//! functions, intrinsic calls, and FORTRAN's implicit `i`–`n` integer
//! typing rule.
//!
//! ```text
//! function foo(y, z)
//!   real y, z
//!   real s, x
//!   integer i
//! begin
//!   s = 0
//!   x = y + z
//!   do i = x, 100
//!     s = i + s + x
//!   enddo
//!   return s
//! end
//! ```
//!
//! Differences from real FORTRAN (documented substitutions, see DESIGN.md):
//! scalars are passed **by value**; arrays are passed by reference (their
//! base address); local arrays live at fixed addresses in the module data
//! segment (no recursion, as in FORTRAN-77); `DO` steps must be integer
//! constants.
//!
//! ## Naming modes
//!
//! Lowering supports the two register-naming disciplines §2.2 of the paper
//! discusses:
//!
//! * [`NamingMode::Disciplined`] — the PL.8-style hash-table discipline:
//!   every lexical expression (including each constant) has one canonical
//!   *expression name*, re-computed into that name at every occurrence;
//!   variables are targets of copies only. PRE depends on this shape.
//! * [`NamingMode::Simple`] — naive per-occurrence temporaries, the shape
//!   the paper's Figure 3 shows ("this translation does not conform to the
//!   naming discipline"). Used to demonstrate how fragile plain PRE is and
//!   how global value numbering repairs the name space.
//!
//! ```
//! use epre_frontend::{compile, NamingMode};
//!
//! let src = "function inc(i)\nbegin\n  return i + 1\nend\n";
//! let module = compile(src, NamingMode::Disciplined).unwrap();
//! assert!(module.function("inc").is_some());
//! ```

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;

pub use ast::{BinExpr, Expr, Program, Stmt, TypeName};
pub use lower::{lower_program, NamingMode};
pub use parser::parse_program;

use epre_ir::Module;
use std::fmt;

/// An error from any front-end phase, with a 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// 1-based source line of the error.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for FrontendError {}

/// Compile mini-FORTRAN source to an ILOC [`Module`].
///
/// # Errors
/// Returns the first lexical, syntactic or semantic error.
pub fn compile(source: &str, mode: NamingMode) -> Result<Module, FrontendError> {
    let program = parse_program(source)?;
    lower_program(&program, mode)
}
