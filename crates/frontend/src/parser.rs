//! Recursive-descent parser: token stream → [`Program`].

use crate::ast::*;
use crate::lexer::{lex, Spanned, Tok};
use crate::FrontendError;

/// Parse a whole source file.
///
/// # Errors
/// Returns the first syntax error with its source line.
pub fn parse_program(source: &str) -> Result<Program, FrontendError> {
    let toks = lex(source)?;
    let mut p = Parser { toks, pos: 0 };
    p.skip_newlines();
    let mut functions = Vec::new();
    while !p.at_end() {
        functions.push(p.function()?);
        p.skip_newlines();
    }
    if functions.is_empty() {
        return Err(FrontendError { line: 1, message: "empty program".into() });
    }
    Ok(Program { functions })
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.pos)
    }

    fn line(&self) -> usize {
        self.peek().map_or_else(|| self.toks.last().map_or(1, |t| t.line), |t| t.line)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, FrontendError> {
        Err(FrontendError { line: self.line(), message: message.into() })
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.peek().map(|t| &t.tok) == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), FrontendError> {
        if self.eat(&tok) {
            Ok(())
        } else {
            self.err(format!("expected {what}"))
        }
    }

    fn skip_newlines(&mut self) {
        while self.eat(&Tok::Newline) {}
    }

    fn expect_newline(&mut self) -> Result<(), FrontendError> {
        if self.at_end() || self.eat(&Tok::Newline) {
            self.skip_newlines();
            Ok(())
        } else {
            self.err("expected end of statement")
        }
    }

    /// Consume an identifier (keyword or name).
    fn ident(&mut self, what: &str) -> Result<(String, usize), FrontendError> {
        match self.bump() {
            Some(Spanned { tok: Tok::Ident(s), line }) => Ok((s, line)),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err(format!("expected {what}"))
            }
        }
    }

    /// Is the next token the given keyword?
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Spanned { tok: Tok::Ident(s), .. }) if s == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn function(&mut self) -> Result<FunctionDef, FrontendError> {
        let line = self.line();
        let returns_value = if self.eat_keyword("function") {
            true
        } else if self.eat_keyword("subroutine") {
            false
        } else {
            return self.err("expected `function` or `subroutine`");
        };
        let (name, _) = self.ident("procedure name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                let (p, _) = self.ident("parameter name")?;
                params.push(p);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma, "`,` or `)`")?;
            }
        }
        self.expect_newline()?;

        // Declarations until `begin`.
        let mut decls = Vec::new();
        loop {
            if self.eat_keyword("begin") {
                self.expect_newline()?;
                break;
            }
            let dline = self.line();
            let ty = if self.eat_keyword("integer") {
                TypeName::Integer
            } else if self.eat_keyword("real") {
                TypeName::Real
            } else {
                return self.err("expected declaration or `begin`");
            };
            loop {
                let (name, _) = self.ident("declared name")?;
                let mut dims = Vec::new();
                if self.eat(&Tok::LParen) {
                    loop {
                        if self.eat(&Tok::Star) {
                            dims.push(0); // assumed-size parameter array
                        } else {
                            match self.bump() {
                                Some(Spanned { tok: Tok::Int(v), .. }) if v > 0 => dims.push(v),
                                _ => {
                                    self.pos = self.pos.saturating_sub(1);
                                    return self.err("array dimension must be a positive integer or `*`");
                                }
                            }
                        }
                        if self.eat(&Tok::RParen) {
                            break;
                        }
                        self.expect(Tok::Comma, "`,` or `)` in dimensions")?;
                    }
                }
                decls.push(Decl { ty, name, dims, line: dline });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect_newline()?;
        }

        let body = self.stmts(&["end"])?;
        self.expect_keyword("end")?;
        self.expect_newline()?;
        Ok(FunctionDef { name, params, returns_value, decls, body, line })
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), FrontendError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    /// Parse statements until one of the `stop` keywords (not consumed).
    fn stmts(&mut self, stop: &[&str]) -> Result<Vec<Stmt>, FrontendError> {
        let mut out = Vec::new();
        loop {
            self.skip_newlines();
            if self.at_end() {
                return self.err(format!("unexpected end of file, expected `{}`", stop[0]));
            }
            if stop.iter().any(|kw| self.at_keyword(kw)) {
                return Ok(out);
            }
            out.push(self.stmt()?);
        }
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        let line = self.line();
        if self.eat_keyword("if") {
            let mut arms = Vec::new();
            let cond = self.expr()?;
            self.expect_keyword("then")?;
            self.expect_newline()?;
            let body = self.stmts(&["elseif", "else", "endif"])?;
            arms.push((cond, body));
            let mut otherwise = Vec::new();
            loop {
                if self.eat_keyword("elseif") {
                    let c = self.expr()?;
                    self.expect_keyword("then")?;
                    self.expect_newline()?;
                    let b = self.stmts(&["elseif", "else", "endif"])?;
                    arms.push((c, b));
                } else if self.eat_keyword("else") {
                    self.expect_newline()?;
                    otherwise = self.stmts(&["endif"])?;
                    self.expect_keyword("endif")?;
                    break;
                } else if self.eat_keyword("endif") {
                    break;
                } else {
                    return self.err("expected `elseif`, `else` or `endif`");
                }
            }
            self.expect_newline()?;
            return Ok(Stmt::If { arms, otherwise, line });
        }
        if self.eat_keyword("do") {
            let (var, _) = self.ident("loop variable")?;
            self.expect(Tok::Assign, "`=`")?;
            let from = self.expr()?;
            self.expect(Tok::Comma, "`,`")?;
            let to = self.expr()?;
            let step = if self.eat(&Tok::Comma) {
                let neg = self.eat(&Tok::Minus);
                match self.bump() {
                    Some(Spanned { tok: Tok::Int(v), .. }) if v != 0 => {
                        if neg {
                            -v
                        } else {
                            v
                        }
                    }
                    _ => {
                        self.pos = self.pos.saturating_sub(1);
                        return self.err("DO step must be a nonzero integer constant");
                    }
                }
            } else {
                1
            };
            self.expect_newline()?;
            let body = self.stmts(&["enddo"])?;
            self.expect_keyword("enddo")?;
            self.expect_newline()?;
            return Ok(Stmt::Do { var, from, to, step, body, line });
        }
        if self.eat_keyword("while") {
            let cond = self.expr()?;
            self.expect_keyword("do")?;
            self.expect_newline()?;
            let body = self.stmts(&["endwhile"])?;
            self.expect_keyword("endwhile")?;
            self.expect_newline()?;
            return Ok(Stmt::While { cond, body, line });
        }
        if self.eat_keyword("call") {
            let (name, _) = self.ident("subroutine name")?;
            self.expect(Tok::LParen, "`(`")?;
            let mut args = Vec::new();
            if !self.eat(&Tok::RParen) {
                loop {
                    args.push(self.expr()?);
                    if self.eat(&Tok::RParen) {
                        break;
                    }
                    self.expect(Tok::Comma, "`,` or `)`")?;
                }
            }
            self.expect_newline()?;
            return Ok(Stmt::Call { name, args, line });
        }
        if self.eat_keyword("return") {
            let value = if self.at_end() || self.peek().map(|t| &t.tok) == Some(&Tok::Newline) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_newline()?;
            return Ok(Stmt::Return { value, line });
        }
        // Assignment.
        let (name, _) = self.ident("statement")?;
        let mut subs = Vec::new();
        if self.eat(&Tok::LParen) {
            loop {
                subs.push(self.expr()?);
                if self.eat(&Tok::RParen) {
                    break;
                }
                self.expect(Tok::Comma, "`,` or `)` in subscripts")?;
            }
        }
        self.expect(Tok::Assign, "`=`")?;
        let value = self.expr()?;
        self.expect_newline()?;
        Ok(Stmt::Assign { name, subs, value, line })
    }

    // Expression precedence (loosest to tightest):
    //   .or. | .and. | .not. | comparisons | + - | * / | unary - | primary
    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.and_expr()?;
        while self.peek().map(|t| &t.tok) == Some(&Tok::Or) {
            let line = self.line();
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Expr::Bin { op: BinExpr::Or, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.not_expr()?;
        while self.peek().map(|t| &t.tok) == Some(&Tok::And) {
            let line = self.line();
            self.pos += 1;
            let rhs = self.not_expr()?;
            lhs = Expr::Bin { op: BinExpr::And, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, FrontendError> {
        if self.peek().map(|t| &t.tok) == Some(&Tok::Not) {
            let line = self.line();
            self.pos += 1;
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner), line));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr, FrontendError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().map(|t| &t.tok) {
            Some(Tok::Eq) => BinExpr::Eq,
            Some(Tok::Ne) => BinExpr::Ne,
            Some(Tok::Lt) => BinExpr::Lt,
            Some(Tok::Le) => BinExpr::Le,
            Some(Tok::Gt) => BinExpr::Gt,
            Some(Tok::Ge) => BinExpr::Ge,
            _ => return Ok(lhs),
        };
        let line = self.line();
        self.pos += 1;
        let rhs = self.add_expr()?;
        Ok(Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line })
    }

    fn add_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Plus) => BinExpr::Add,
                Some(Tok::Minus) => BinExpr::Sub,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().map(|t| &t.tok) {
                Some(Tok::Star) => BinExpr::Mul,
                Some(Tok::Slash) => BinExpr::Div,
                _ => return Ok(lhs),
            };
            let line = self.line();
            self.pos += 1;
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin { op, lhs: Box::new(lhs), rhs: Box::new(rhs), line };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, FrontendError> {
        if self.peek().map(|t| &t.tok) == Some(&Tok::Minus) {
            let line = self.line();
            self.pos += 1;
            let inner = self.unary_expr()?;
            return Ok(Expr::Neg(Box::new(inner), line));
        }
        if self.peek().map(|t| &t.tok) == Some(&Tok::Plus) {
            self.pos += 1;
            return self.unary_expr();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        let line = self.line();
        match self.bump() {
            Some(Spanned { tok: Tok::Int(v), .. }) => Ok(Expr::Int(v)),
            Some(Spanned { tok: Tok::Real(v), .. }) => Ok(Expr::Real(v)),
            Some(Spanned { tok: Tok::LParen, .. }) => {
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Spanned { tok: Tok::Ident(name), .. }) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&Tok::RParen) {
                                break;
                            }
                            self.expect(Tok::Comma, "`,` or `)`")?;
                        }
                    }
                    Ok(Expr::Index { name, args, line })
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            _ => {
                self.pos = self.pos.saturating_sub(1);
                self.err("expected expression")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> FunctionDef {
        parse_program(src).unwrap().functions.remove(0)
    }

    #[test]
    fn parses_paper_example() {
        // Figure 2 of the paper.
        let src = "function foo(y, z)\n\
                   real y, z, s, x\n\
                   integer i\n\
                   begin\n\
                   s = 0\n\
                   x = y + z\n\
                   do i = x, 100\n\
                     s = i + s + x\n\
                   enddo\n\
                   return s\n\
                   end\n";
        let f = one(src);
        assert_eq!(f.name, "foo");
        assert_eq!(f.params, vec!["y", "z"]);
        assert!(f.returns_value);
        assert_eq!(f.decls.len(), 5);
        assert_eq!(f.body.len(), 4);
        match &f.body[2] {
            Stmt::Do { var, step, body, .. } => {
                assert_eq!(var, "i");
                assert_eq!(*step, 1);
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected DO, got {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let f = one("function f(a, b, c)\nbegin\nreturn a + b * c\nend\n");
        match &f.body[0] {
            Stmt::Return { value: Some(Expr::Bin { op: BinExpr::Add, rhs, .. }), .. } => {
                assert!(matches!(**rhs, Expr::Bin { op: BinExpr::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_cmp_over_logic() {
        let f = one("function f(a, b)\nbegin\nreturn a < b .and. b < a .or. a == b\nend\n");
        match &f.body[0] {
            Stmt::Return { value: Some(Expr::Bin { op: BinExpr::Or, .. }), .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn if_elseif_else_chain() {
        let src = "subroutine s(a)\nbegin\n\
                   if a > 0 then\n a = 1\n\
                   elseif a < 0 then\n a = 2\n\
                   else\n a = 3\n\
                   endif\n\
                   end\n";
        let f = one(src);
        match &f.body[0] {
            Stmt::If { arms, otherwise, .. } => {
                assert_eq!(arms.len(), 2);
                assert_eq!(otherwise.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!f.returns_value);
    }

    #[test]
    fn do_with_negative_step() {
        let f = one("subroutine s(n)\ninteger i, n\nbegin\ndo i = n, 1, -1\nenddo\nend\n");
        match &f.body[0] {
            Stmt::Do { step, .. } => assert_eq!(*step, -2 + 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn arrays_and_calls() {
        let src = "function f(v, n)\nreal v(*)\ninteger n\nreal m(10, 20)\nbegin\n\
                   m(1, 2) = v(n) + sqrt(v(1))\n\
                   call helper(m, n)\n\
                   return m(1, 2)\nend\n";
        let f = one(src);
        assert_eq!(f.decls[0].dims, vec![0]);
        assert_eq!(f.decls[2].dims, vec![10, 20]);
        match &f.body[0] {
            Stmt::Assign { name, subs, .. } => {
                assert_eq!(name, "m");
                assert_eq!(subs.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &f.body[1] {
            Stmt::Call { name, args, .. } => {
                assert_eq!(name, "helper");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn while_loop() {
        let f = one("subroutine s(a)\nbegin\nwhile a > 0 do\na = a - 1\nendwhile\nend\n");
        assert!(matches!(&f.body[0], Stmt::While { body, .. } if body.len() == 1));
    }

    #[test]
    fn multiple_functions() {
        let p = parse_program(
            "function a()\nbegin\nreturn 1\nend\n\nsubroutine b()\nbegin\nreturn\nend\n",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 2);
    }

    #[test]
    fn error_reports_line() {
        let e = parse_program("function f()\nbegin\nx = \nend\n").unwrap_err();
        assert_eq!(e.line, 3);
        let e = parse_program("function f()\nbegin\ndo i = 1, 10, 0\nenddo\nend\n").unwrap_err();
        assert!(e.message.contains("step"));
    }

    #[test]
    fn unary_minus_and_parens() {
        let f = one("function f(a)\nbegin\nreturn -(a + 1) * 2\nend\n");
        match &f.body[0] {
            Stmt::Return { value: Some(Expr::Bin { op: BinExpr::Mul, lhs, .. }), .. } => {
                assert!(matches!(**lhs, Expr::Neg(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
