//! Live-variable analysis.
//!
//! Used in three places in the pipeline: building **pruned** SSA (a φ for
//! `v` is placed only where `v` is live — §3.1 builds "the pruned SSA form
//! of the routine"), the interference computation behind Chaitin-style
//! coalescing, and dead-code sweeps.
//!
//! This analysis operates on φ-free code (the pipeline's passes run it
//! before SSA construction or after SSA destruction).

use crate::bitset::BitSet;
use crate::dataflow::{solve, Direction, Meet, Solution};
use epre_cfg::Cfg;
use epre_ir::{Function, Inst};

/// Per-block `LIVEIN`/`LIVEOUT` register sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Liveness {
    /// Registers live on entry to each block.
    pub live_in: Vec<BitSet>,
    /// Registers live on exit from each block.
    pub live_out: Vec<BitSet>,
}

impl Liveness {
    /// Compute liveness for `f`.
    ///
    /// # Panics
    /// Panics (debug) if `f` contains φ-nodes; φ-aware liveness is not
    /// needed anywhere in the pipeline.
    pub fn new(f: &Function, cfg: &Cfg) -> Self {
        let n = f.blocks.len();
        let cap = f.reg_count();
        let mut uses = vec![BitSet::new(cap); n]; // upward-exposed uses
        let mut defs = vec![BitSet::new(cap); n];

        for (bid, block) in f.iter_blocks() {
            let bi = bid.index();
            for inst in &block.insts {
                debug_assert!(
                    !matches!(inst, Inst::Phi { .. }),
                    "liveness expects φ-free code"
                );
                for u in inst.uses() {
                    if !defs[bi].contains(u.index()) {
                        uses[bi].insert(u.index());
                    }
                }
                if let Some(d) = inst.dst() {
                    defs[bi].insert(d.index());
                }
            }
            for u in block.term.uses() {
                if !defs[bi].contains(u.index()) {
                    uses[bi].insert(u.index());
                }
            }
        }

        let Solution { ins, outs } = solve(cfg, Direction::Backward, Meet::Union, &uses, &defs);
        Liveness { live_in: ins, live_out: outs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, BlockId, Const, FunctionBuilder, Ty};

    #[test]
    fn param_live_into_loop() {
        // s = 0; while (s < n) s = s + n; return s
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let s = b.new_reg(Ty::Int);
        let z = b.loadi(Const::Int(0));
        b.copy_to(s, z);
        b.jump(head);
        b.switch_to(head);
        let c = b.bin(BinOp::CmpLt, Ty::Int, s, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let s2 = b.bin(BinOp::Add, Ty::Int, s, n);
        b.copy_to(s, s2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(s));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::new(&f, &cfg);

        // n is live around the whole loop.
        assert!(lv.live_in[head.index()].contains(n.index()));
        assert!(lv.live_out[body.index()].contains(n.index()));
        // s is live everywhere after its definition.
        assert!(lv.live_in[head.index()].contains(s.index()));
        assert!(lv.live_in[exit.index()].contains(s.index()));
        // Nothing is live after the return.
        assert!(lv.live_out[exit.index()].is_empty());
        // n live into entry (it is a parameter used later).
        assert!(lv.live_in[BlockId::ENTRY.index()].contains(n.index()));
        // s is defined before use in entry, so not live into entry.
        assert!(!lv.live_in[BlockId::ENTRY.index()].contains(s.index()));
    }

    #[test]
    fn dead_definition_not_live() {
        let mut b = FunctionBuilder::new("d", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let dead = b.loadi(Const::Int(9));
        b.ret(Some(x));
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::new(&f, &cfg);
        assert!(!lv.live_in[0].contains(dead.index()));
        assert!(!lv.live_out[0].contains(dead.index()));
    }

    #[test]
    fn branch_condition_is_a_use() {
        let mut b = FunctionBuilder::new("c", None);
        let t = b.new_block();
        let c = b.loadi(Const::Int(1));
        b.branch(c, t, t);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::new(&f, &cfg);
        // c defined in entry before the branch use: not live-in.
        assert!(!lv.live_in[0].contains(c.index()));
        // Store/value uses through different blocks:
        let mut b = FunctionBuilder::new("c2", None);
        let cnd = b.param(Ty::Int);
        let t = b.new_block();
        b.jump(t);
        b.switch_to(t);
        b.branch(cnd, t, t);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let lv = Liveness::new(&f, &cfg);
        assert!(lv.live_in[0].contains(cnd.index()));
        assert!(lv.live_in[t.index()].contains(cnd.index()));
        assert!(lv.live_out[t.index()].contains(cnd.index())); // loop
    }
}
