//! The lexical expression universe — PRE's problem domain.
//!
//! PRE, as Morel and Renvoise defined it and as the paper uses it, works on
//! **lexically identical expressions**: occurrences of the same operator
//! applied to the same register names. Under the naming discipline of §2.2
//! every lexical expression also has a single canonical *expression name*
//! (its target register), which is what makes deletion and insertion simple
//! register operations.
//!
//! [`ExprUniverse`] enumerates the distinct pure expressions of a function
//! and assigns each a dense [`ExprId`] used to index PRE's bit sets.
//! Operands of commutative operators are stored in canonical (sorted)
//! order so `a + b` and `b + a` denote the same expression.

use std::collections::HashMap;

use epre_ir::{BinOp, Const, Function, Inst, Reg, Ty, UnOp};

/// Dense identifier of an expression in a function's [`ExprUniverse`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ExprId(pub u32);

impl ExprId {
    /// The id's dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A lexical expression: operator plus operand register names (or the
/// constant, for `loadi`). Constants are expressions too — the paper's
/// naming example treats `1` as the expression named `r1`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ExprKey {
    /// A binary expression. For commutative operators the operands are
    /// stored with `lhs <= rhs`.
    Bin {
        /// Operator.
        op: BinOp,
        /// Operand type.
        ty: Ty,
        /// Left operand (canonicalized).
        lhs: Reg,
        /// Right operand (canonicalized).
        rhs: Reg,
    },
    /// A unary expression.
    Un {
        /// Operator.
        op: UnOp,
        /// Operand type.
        ty: Ty,
        /// Operand.
        src: Reg,
    },
    /// A constant (`loadi`).
    Const(Const),
}

impl ExprKey {
    /// Build the canonical key for an instruction, or `None` if the
    /// instruction is not a pure expression (copy, φ, load, store, call).
    pub fn of_inst(inst: &Inst) -> Option<ExprKey> {
        match inst {
            Inst::Bin { op, ty, lhs, rhs, .. } => {
                let (lhs, rhs) = if op.is_commutative() && rhs < lhs {
                    (*rhs, *lhs)
                } else {
                    (*lhs, *rhs)
                };
                Some(ExprKey::Bin { op: *op, ty: *ty, lhs, rhs })
            }
            Inst::Un { op, ty, src, .. } => Some(ExprKey::Un { op: *op, ty: *ty, src: *src }),
            Inst::LoadI { value, .. } => Some(ExprKey::Const(*value)),
            _ => None,
        }
    }

    /// The register operands of the expression (empty for constants).
    pub fn operands(&self) -> Vec<Reg> {
        match self {
            ExprKey::Bin { lhs, rhs, .. } => vec![*lhs, *rhs],
            ExprKey::Un { src, .. } => vec![*src],
            ExprKey::Const(_) => vec![],
        }
    }
}

/// The set of distinct pure expressions of one function, densely numbered.
///
/// Also records, for each expression, the destination register of its first
/// occurrence. Under the §2.2 naming discipline every occurrence has the
/// same destination; [`ExprUniverse::is_disciplined`] reports whether that
/// held, and PRE refuses to transform expressions for which it did not.
#[derive(Debug, Clone, PartialEq)]
pub struct ExprUniverse {
    by_key: HashMap<ExprKey, ExprId>,
    keys: Vec<ExprKey>,
    /// Canonical destination register per expression.
    names: Vec<Reg>,
    /// Whether every occurrence of the expression targets `names[e]`.
    disciplined: Vec<bool>,
    /// For each register, the expressions that use it as an operand.
    used_by: HashMap<Reg, Vec<ExprId>>,
}

impl ExprUniverse {
    /// Scan `f` and build its expression universe.
    pub fn new(f: &Function) -> Self {
        let mut u = ExprUniverse {
            by_key: HashMap::new(),
            keys: Vec::new(),
            names: Vec::new(),
            disciplined: Vec::new(),
            used_by: HashMap::new(),
        };
        for (_, block) in f.iter_blocks() {
            for inst in &block.insts {
                if let Some(key) = ExprKey::of_inst(inst) {
                    let dst = inst.dst().expect("expressions define a register");
                    match u.by_key.get(&key) {
                        Some(&id) => {
                            if u.names[id.index()] != dst {
                                u.disciplined[id.index()] = false;
                            }
                        }
                        None => {
                            let id = ExprId(u.keys.len() as u32);
                            u.by_key.insert(key.clone(), id);
                            for r in key.operands() {
                                u.used_by.entry(r).or_default().push(id);
                            }
                            u.keys.push(key);
                            u.names.push(dst);
                            u.disciplined.push(true);
                        }
                    }
                }
            }
        }
        u
    }

    /// Number of distinct expressions.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the function contains no pure expressions.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Look up the id of an instruction's expression.
    pub fn id_of_inst(&self, inst: &Inst) -> Option<ExprId> {
        ExprKey::of_inst(inst).and_then(|k| self.by_key.get(&k).copied())
    }

    /// The key of expression `e`.
    pub fn key(&self, e: ExprId) -> &ExprKey {
        &self.keys[e.index()]
    }

    /// The canonical destination register of `e` (its *expression name*).
    pub fn name(&self, e: ExprId) -> Reg {
        self.names[e.index()]
    }

    /// Did every occurrence of `e` target the same register? PRE may only
    /// move disciplined expressions.
    pub fn is_disciplined(&self, e: ExprId) -> bool {
        self.disciplined[e.index()]
    }

    /// Expressions that read register `r`.
    pub fn used_by(&self, r: Reg) -> &[ExprId] {
        self.used_by.get(&r).map_or(&[], Vec::as_slice)
    }

    /// Iterate all `(id, key)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ExprId, &ExprKey)> {
        self.keys.iter().enumerate().map(|(i, k)| (ExprId(i as u32), k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::FunctionBuilder;

    #[test]
    fn commutative_operands_canonicalize() {
        let a = Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: Reg(2), lhs: Reg(1), rhs: Reg(0) };
        let b = Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: Reg(3), lhs: Reg(0), rhs: Reg(1) };
        assert_eq!(ExprKey::of_inst(&a), ExprKey::of_inst(&b));
        // Subtraction is not commutative.
        let c = Inst::Bin { op: BinOp::Sub, ty: Ty::Int, dst: Reg(2), lhs: Reg(1), rhs: Reg(0) };
        let d = Inst::Bin { op: BinOp::Sub, ty: Ty::Int, dst: Reg(2), lhs: Reg(0), rhs: Reg(1) };
        assert_ne!(ExprKey::of_inst(&c), ExprKey::of_inst(&d));
    }

    #[test]
    fn non_expressions_have_no_key() {
        assert_eq!(ExprKey::of_inst(&Inst::Copy { dst: Reg(0), src: Reg(1) }), None);
        assert_eq!(
            ExprKey::of_inst(&Inst::Load { ty: Ty::Int, dst: Reg(0), addr: Reg(1) }),
            None
        );
        assert_eq!(
            ExprKey::of_inst(&Inst::Call { dst: None, callee: "f".into(), args: vec![] }),
            None
        );
    }

    #[test]
    fn universe_enumerates_distinct_expressions() {
        let mut b = FunctionBuilder::new("u", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let s1 = b.bin(BinOp::Add, Ty::Int, x, y);
        let _s2 = b.bin(BinOp::Add, Ty::Int, y, x); // same expression, new name
        let p = b.bin(BinOp::Mul, Ty::Int, x, y);
        let _c = b.loadi(Const::Int(5));
        let q = b.bin(BinOp::Add, Ty::Int, s1, p);
        b.ret(Some(q));
        let f = b.finish();
        let u = ExprUniverse::new(&f);
        // add(x,y), mul(x,y), const 5, add(s1,p) — the commuted add merges.
        assert_eq!(u.len(), 4);
        assert!(!u.is_empty());
        // The commuted duplicate broke the naming discipline for add(x,y).
        let add_id = u
            .iter()
            .find(|(_, k)| matches!(k, ExprKey::Bin { op: BinOp::Add, lhs, .. } if *lhs == x))
            .unwrap()
            .0;
        assert!(!u.is_disciplined(add_id));
        assert_eq!(u.name(add_id), s1);
        // mul is disciplined (single occurrence).
        let mul_id =
            u.iter().find(|(_, k)| matches!(k, ExprKey::Bin { op: BinOp::Mul, .. })).unwrap().0;
        assert!(u.is_disciplined(mul_id));
    }

    #[test]
    fn used_by_maps_operands_to_expressions() {
        let mut b = FunctionBuilder::new("u", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let s = b.bin(BinOp::Add, Ty::Int, x, y);
        b.ret(Some(s));
        let f = b.finish();
        let u = ExprUniverse::new(&f);
        assert_eq!(u.used_by(x).len(), 1);
        assert_eq!(u.used_by(y).len(), 1);
        assert_eq!(u.used_by(s).len(), 0);
        let id = u.used_by(x)[0];
        assert_eq!(u.key(id).operands(), vec![x, y]);
    }

    #[test]
    fn id_of_inst_round_trips() {
        let mut b = FunctionBuilder::new("u", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let s = b.bin(BinOp::Add, Ty::Int, x, x);
        b.ret(Some(s));
        let f = b.finish();
        let u = ExprUniverse::new(&f);
        let inst = &f.block(epre_ir::BlockId::ENTRY).insts[0];
        let id = u.id_of_inst(inst).unwrap();
        assert_eq!(u.name(id), s);
    }
}
