//! Per-block local predicates for PRE: `TRANSP`, `ANTLOC`, `COMP`.
//!
//! For an expression *e* and block *b* (Morel–Renvoise, refined by
//! Drechsler–Stadel):
//!
//! * `TRANSP[b][e]` — *b* is transparent for *e*: no operand of *e* is
//!   (re)defined in *b*;
//! * `ANTLOC[b][e]` — *e* is locally anticipatable: *b* computes *e* before
//!   any operand of *e* is defined in *b* (upward-exposed occurrence);
//! * `COMP[b][e]` — *e* is locally available: *b* computes *e* and no
//!   operand of *e* is defined afterwards (downward-exposed occurrence).

use crate::bitset::BitSet;
use crate::exprs::ExprUniverse;
use epre_ir::Function;

/// The three local predicate vectors, one [`BitSet`] per block, each over
/// the function's [`ExprUniverse`].
#[derive(Debug, Clone)]
pub struct LocalPredicates {
    /// `TRANSP` per block.
    pub transp: Vec<BitSet>,
    /// `ANTLOC` per block.
    pub antloc: Vec<BitSet>,
    /// `COMP` per block.
    pub comp: Vec<BitSet>,
}

impl LocalPredicates {
    /// Compute the predicates for `f` over `universe`.
    pub fn new(f: &Function, universe: &ExprUniverse) -> Self {
        let n = f.blocks.len();
        let cap = universe.len();
        let mut transp = vec![BitSet::full(cap); n];
        let mut antloc = vec![BitSet::new(cap); n];
        let mut comp = vec![BitSet::new(cap); n];

        for (bid, block) in f.iter_blocks() {
            let bi = bid.index();
            // `killed[e]`: some operand of e has been defined so far in b.
            let mut killed = BitSet::new(cap);
            for inst in &block.insts {
                if let Some(e) = universe.id_of_inst(inst) {
                    if !killed.contains(e.index()) {
                        antloc[bi].insert(e.index());
                    }
                    // Downward exposure: mark computed; a later operand
                    // definition clears it again.
                    comp[bi].insert(e.index());
                }
                if let Some(d) = inst.dst() {
                    for &e in universe.used_by(d) {
                        killed.insert(e.index());
                        transp[bi].remove(e.index());
                        comp[bi].remove(e.index());
                    }
                }
            }
        }
        LocalPredicates { transp, antloc, comp }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, BlockId, Const, FunctionBuilder, Inst, Reg, Ty};

    /// One block: t1 = x+y ; x = 0 ; t2 = x+y
    /// The two x+y occurrences are distinct *lexical* occurrences of the
    /// same expression (same operand names).
    fn redefined_operand_block() -> (epre_ir::Function, Reg, Reg) {
        let mut b = FunctionBuilder::new("l", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let t1 = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: t1, lhs: x, rhs: y });
        let z = b.loadi(Const::Int(0));
        b.copy_to(x, z);
        let t2 = b.new_reg(Ty::Int);
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: t2, lhs: x, rhs: y });
        b.ret(Some(t2));
        (b.finish(), x, y)
    }

    #[test]
    fn antloc_comp_transp_with_redefinition() {
        let (f, x, _y) = redefined_operand_block();
        let u = ExprUniverse::new(&f);
        let lp = LocalPredicates::new(&f, &u);
        let add = u
            .iter()
            .find(|(_, k)| matches!(k, crate::exprs::ExprKey::Bin { op: BinOp::Add, .. }))
            .unwrap()
            .0;
        let b0 = BlockId::ENTRY.index();
        // First occurrence is upward exposed.
        assert!(lp.antloc[b0].contains(add.index()));
        // x is redefined between the occurrences, but the block recomputes
        // x+y afterwards, so it IS downward exposed.
        assert!(lp.comp[b0].contains(add.index()));
        // Not transparent: x (an operand) is defined in the block.
        assert!(!lp.transp[b0].contains(add.index()));
        // The constant 0 is computed and x's copy doesn't kill it.
        let c0 = u
            .iter()
            .find(|(_, k)| matches!(k, crate::exprs::ExprKey::Const(Const::Int(0))))
            .unwrap()
            .0;
        assert!(lp.comp[b0].contains(c0.index()));
        assert!(lp.antloc[b0].contains(c0.index()));
        let _ = x;
    }

    #[test]
    fn kill_after_compute_clears_comp() {
        // t1 = x+y ; x = 0  — x+y is upward but not downward exposed.
        let mut b = FunctionBuilder::new("k", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let t1 = b.bin(BinOp::Add, Ty::Int, x, y);
        let z = b.loadi(Const::Int(0));
        b.copy_to(x, z);
        b.ret(Some(t1));
        let f = b.finish();
        let u = ExprUniverse::new(&f);
        let lp = LocalPredicates::new(&f, &u);
        let add = u
            .iter()
            .find(|(_, k)| matches!(k, crate::exprs::ExprKey::Bin { op: BinOp::Add, .. }))
            .unwrap()
            .0;
        assert!(lp.antloc[0].contains(add.index()));
        assert!(!lp.comp[0].contains(add.index()));
        assert!(!lp.transp[0].contains(add.index()));
    }

    #[test]
    fn untouched_block_is_transparent() {
        let mut b = FunctionBuilder::new("t", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let nxt = b.new_block();
        let t1 = b.bin(BinOp::Add, Ty::Int, x, y);
        b.jump(nxt);
        b.switch_to(nxt);
        b.ret(Some(t1));
        let f = b.finish();
        let u = ExprUniverse::new(&f);
        let lp = LocalPredicates::new(&f, &u);
        let add = u.used_by(x)[0];
        assert!(lp.transp[nxt.index()].contains(add.index()));
        assert!(!lp.antloc[nxt.index()].contains(add.index()));
        assert!(!lp.comp[nxt.index()].contains(add.index()));
        assert!(lp.transp[0].contains(add.index())); // operands x,y never defined in b0
        assert!(lp.antloc[0].contains(add.index()));
        assert!(lp.comp[0].contains(add.index()));
    }

    #[test]
    fn self_referential_definition_kills() {
        // i = i + 1 — with the same register as dst and operand: the
        // computation defines its own operand, so it is upward exposed but
        // neither downward exposed nor transparent.
        let mut b = FunctionBuilder::new("s", Some(Ty::Int));
        let i = b.param(Ty::Int);
        let one = b.param(Ty::Int); // operand defined outside the block
        b.push(Inst::Bin { op: BinOp::Add, ty: Ty::Int, dst: i, lhs: i, rhs: one });
        b.ret(Some(i));
        let f = b.finish();
        let u = ExprUniverse::new(&f);
        let lp = LocalPredicates::new(&f, &u);
        let add = u
            .iter()
            .find(|(_, k)| matches!(k, crate::exprs::ExprKey::Bin { op: BinOp::Add, .. }))
            .unwrap()
            .0;
        assert!(lp.antloc[0].contains(add.index()));
        assert!(!lp.comp[0].contains(add.index()));
        assert!(!lp.transp[0].contains(add.index()));
    }
}
