//! Lazily-computed, memoized per-function analyses for the pass manager.
//!
//! Every pass in the paper's pipeline is "a Unix filter … including all the
//! required control-flow and data-flow analyses" — which, taken literally,
//! rebuilds the CFG and dominator tree from scratch at every pass boundary
//! and several times *within* passes like `sccp` and `clean`. The
//! [`AnalysisCache`] removes that cost without giving up the filter
//! structure: the pipeline owns one cache per function, passes request
//! analyses through it, and invalidation is driven by what each pass
//! *reports* ([`PreservedAnalyses`]) rather than by pessimistic
//! recomputation.
//!
//! The contract (enforced in debug builds by [`AnalysisCache::validate`]):
//!
//! * a pass that reports **no IR change** preserves every cached analysis;
//! * a pass that reports a change preserves exactly the set named by its
//!   `preserves()` declaration — everything else is dropped;
//! * a cached entry, when present, is always equal to what a fresh
//!   computation over the current function would produce.
//!
//! A pass that lies — mutating the CFG while claiming to preserve it —
//! is caught by `validate` and surfaced as a verifier-kind pass fault by
//! the pipeline.

use epre_cfg::{order, Cfg, Dominators};
use epre_ir::{BlockId, Function};

use crate::exprs::ExprUniverse;
use crate::liveness::Liveness;

/// The set of cached analyses a pass keeps valid when it changes the IR.
///
/// The flags are coarse on purpose, mirroring how the analyses depend on
/// each other: `cfg` covers the whole control-flow family (CFG, reverse
/// postorder, postorder, dominators), which is invalidated only by edits
/// to block structure or terminators; `universe` covers the lexical
/// expression universe, invalidated by any instruction edit; `liveness`
/// covers the per-block live-variable sets, invalidated by any edit that
/// adds, removes, or renames a definition or use (which in practice means
/// any instruction edit — CFG edits drop it transitively).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PreservedAnalyses {
    cfg: bool,
    universe: bool,
    liveness: bool,
}

impl PreservedAnalyses {
    /// Nothing survives — the safe default for a transforming pass.
    pub fn none() -> Self {
        PreservedAnalyses { cfg: false, universe: false, liveness: false }
    }

    /// Everything survives — what a pass reporting "no change" implies.
    pub fn all() -> Self {
        PreservedAnalyses { cfg: true, universe: true, liveness: true }
    }

    /// Builder: additionally preserve the control-flow family (CFG,
    /// traversal orders, dominators).
    pub fn with_cfg(mut self) -> Self {
        self.cfg = true;
        self
    }

    /// Builder: additionally preserve the expression universe.
    pub fn with_universe(mut self) -> Self {
        self.universe = true;
        self
    }

    /// Builder: additionally preserve the live-variable sets.
    pub fn with_liveness(mut self) -> Self {
        self.liveness = true;
        self
    }

    /// Does the set include the control-flow family?
    pub fn preserves_cfg(&self) -> bool {
        self.cfg
    }

    /// Does the set include the expression universe?
    pub fn preserves_universe(&self) -> bool {
        self.universe
    }

    /// Does the set include the live-variable sets?
    pub fn preserves_liveness(&self) -> bool {
        self.liveness
    }
}

/// Hit/miss counters for one [`AnalysisCache`] (or a whole run, via
/// [`CacheStats::merge`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to compute the analysis.
    pub misses: u64,
}

impl CacheStats {
    /// Fold another counter set into this one.
    pub fn merge(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// Memoized per-function analyses: CFG, traversal orders, dominators, and
/// the lexical expression universe.
///
/// ```
/// use epre_analysis::AnalysisCache;
/// use epre_ir::{FunctionBuilder, Ty};
///
/// let mut b = FunctionBuilder::new("f", Some(Ty::Int));
/// let x = b.param(Ty::Int);
/// b.ret(Some(x));
/// let f = b.finish();
///
/// let mut cache = AnalysisCache::new();
/// let n = cache.cfg(&f).len();      // computed
/// assert_eq!(cache.cfg(&f).len(), n); // cached
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct AnalysisCache {
    cfg: Option<Cfg>,
    rpo: Option<Vec<BlockId>>,
    postorder: Option<Vec<BlockId>>,
    doms: Option<Dominators>,
    universe: Option<ExprUniverse>,
    liveness: Option<Liveness>,
    stats: CacheStats,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    fn ensure_cfg(&mut self, f: &Function) {
        if self.cfg.is_none() {
            self.stats.misses += 1;
            self.cfg = Some(Cfg::new(f));
        } else {
            self.stats.hits += 1;
        }
    }

    /// The function's CFG, computed at most once per invalidation epoch.
    pub fn cfg(&mut self, f: &Function) -> &Cfg {
        self.ensure_cfg(f);
        self.cfg.as_ref().expect("just ensured")
    }

    /// Reverse postorder over the reachable blocks.
    pub fn rpo(&mut self, f: &Function) -> &[BlockId] {
        if self.rpo.is_none() {
            self.ensure_cfg(f);
            self.stats.misses += 1;
            self.rpo =
                Some(order::reverse_postorder(self.cfg.as_ref().expect("just ensured")));
        } else {
            self.stats.hits += 1;
        }
        self.rpo.as_ref().expect("just ensured")
    }

    /// Postorder over the reachable blocks.
    pub fn postorder(&mut self, f: &Function) -> &[BlockId] {
        if self.postorder.is_none() {
            self.ensure_cfg(f);
            self.stats.misses += 1;
            self.postorder = Some(order::postorder(self.cfg.as_ref().expect("just ensured")));
        } else {
            self.stats.hits += 1;
        }
        self.postorder.as_ref().expect("just ensured")
    }

    /// Immediate dominators, dominator tree, and dominance frontiers.
    pub fn dominators(&mut self, f: &Function) -> &Dominators {
        if self.doms.is_none() {
            self.ensure_cfg(f);
            self.stats.misses += 1;
            self.doms = Some(Dominators::new(f, self.cfg.as_ref().expect("just ensured")));
        } else {
            self.stats.hits += 1;
        }
        self.doms.as_ref().expect("just ensured")
    }

    /// The lexical expression universe of `f`.
    pub fn universe(&mut self, f: &Function) -> &ExprUniverse {
        if self.universe.is_none() {
            self.stats.misses += 1;
            self.universe = Some(ExprUniverse::new(f));
        } else {
            self.stats.hits += 1;
        }
        self.universe.as_ref().expect("just ensured")
    }

    /// Per-block live-variable sets (φ-free code only).
    ///
    /// The sets are the backbone of the incremental interference
    /// representation behind coalescing and of the dead-code sweeps:
    /// both passes run back to back at the tail of every level, so a
    /// quiesced `dce` hands its final liveness to `coalesce` for free.
    pub fn liveness(&mut self, f: &Function) -> &Liveness {
        if self.liveness.is_none() {
            self.ensure_cfg(f);
            self.stats.misses += 1;
            self.liveness = Some(Liveness::new(f, self.cfg.as_ref().expect("just ensured")));
        } else {
            self.stats.hits += 1;
        }
        self.liveness.as_ref().expect("just ensured")
    }

    /// CFG and dominators together (both borrows live simultaneously).
    pub fn cfg_and_dominators(&mut self, f: &Function) -> (&Cfg, &Dominators) {
        if self.doms.is_none() {
            // Route through the getter so stats are counted.
            let _ = self.dominators(f);
        } else {
            // Both present: two hits.
            self.stats.hits += 2;
        }
        (self.cfg.as_ref().expect("dominators imply cfg"), self.doms.as_ref().expect("just ensured"))
    }

    /// Drop every cached entry.
    pub fn invalidate_all(&mut self) {
        self.cfg = None;
        self.rpo = None;
        self.postorder = None;
        self.doms = None;
        self.universe = None;
        self.liveness = None;
    }

    /// Drop the control-flow family (CFG, traversal orders, dominators).
    /// Liveness is built on top of the CFG, so it falls with it.
    pub fn invalidate_cfg(&mut self) {
        self.cfg = None;
        self.rpo = None;
        self.postorder = None;
        self.doms = None;
        self.liveness = None;
    }

    /// Drop the expression universe.
    pub fn invalidate_universe(&mut self) {
        self.universe = None;
    }

    /// Drop the live-variable sets.
    pub fn invalidate_liveness(&mut self) {
        self.liveness = None;
    }

    /// Keep exactly the analyses in `preserved`, dropping the rest. This is
    /// what the pipeline applies after a pass reports an IR change.
    pub fn retain(&mut self, preserved: PreservedAnalyses) {
        if !preserved.preserves_cfg() {
            self.invalidate_cfg();
        }
        if !preserved.preserves_universe() {
            self.invalidate_universe();
        }
        if !preserved.preserves_liveness() {
            self.invalidate_liveness();
        }
    }

    /// Is a CFG currently cached? (Inspection hook for tests.)
    pub fn has_cfg(&self) -> bool {
        self.cfg.is_some()
    }

    /// Is an expression universe currently cached?
    pub fn has_universe(&self) -> bool {
        self.universe.is_some()
    }

    /// Are live-variable sets currently cached?
    pub fn has_liveness(&self) -> bool {
        self.liveness.is_some()
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Check every cached entry against a fresh computation over `f`.
    ///
    /// This is the cache-soundness oracle the pipeline runs in debug
    /// builds after each pass: a pass that mutated the IR while reporting
    /// "unchanged", or that broke an analysis its `preserves()` declaration
    /// claimed to keep, produces a mismatch here and is blamed by name.
    ///
    /// # Errors
    /// A human-readable description of the first stale entry found.
    pub fn validate(&self, f: &Function) -> Result<(), String> {
        if let Some(cached) = &self.cfg {
            let fresh = Cfg::new(f);
            if *cached != fresh {
                return Err("cached CFG is stale (control flow changed under a pass that claimed to preserve it)".into());
            }
            if let Some(rpo) = &self.rpo {
                if *rpo != order::reverse_postorder(&fresh) {
                    return Err("cached reverse postorder is stale".into());
                }
            }
            if let Some(po) = &self.postorder {
                if *po != order::postorder(&fresh) {
                    return Err("cached postorder is stale".into());
                }
            }
        }
        if let Some(cached) = &self.universe {
            if *cached != ExprUniverse::new(f) {
                return Err("cached expression universe is stale (instructions changed under a pass that claimed to preserve it)".into());
            }
        }
        if let Some(cached) = &self.liveness {
            // The CFG check above already caught structural drift; an
            // independent fresh CFG keeps this check self-contained even
            // when only liveness is cached.
            let cfg = Cfg::new(f);
            if *cached != Liveness::new(f, &cfg) {
                return Err("cached liveness is stale (defs/uses changed under a pass that claimed to preserve it)".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Terminator, Ty};

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let z = b.loadi(Const::Int(0));
        let c = b.bin(BinOp::CmpLt, Ty::Int, x, z);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn memoizes_and_counts() {
        let f = diamond();
        let mut cache = AnalysisCache::new();
        assert_eq!(cache.cfg(&f).len(), 4);
        assert_eq!(cache.cfg(&f).len(), 4);
        let _ = cache.rpo(&f);
        let _ = cache.rpo(&f);
        let _ = cache.dominators(&f);
        let _ = cache.universe(&f);
        let s = cache.stats();
        assert_eq!(s.misses, 4, "{s:?}"); // cfg, rpo, doms, universe
        assert!(s.hits >= 3, "{s:?}"); // repeat cfg/rpo + ensure_cfg hits
        assert!(cache.validate(&f).is_ok());
    }

    #[test]
    fn retain_follows_preserved_sets() {
        let f = diamond();
        let mut cache = AnalysisCache::new();
        let _ = cache.cfg(&f);
        let _ = cache.universe(&f);
        cache.retain(PreservedAnalyses::none().with_cfg());
        assert!(cache.has_cfg());
        assert!(!cache.has_universe());
        cache.retain(PreservedAnalyses::none());
        assert!(!cache.has_cfg());
        // all() keeps everything.
        let _ = cache.cfg(&f);
        cache.retain(PreservedAnalyses::all());
        assert!(cache.has_cfg());
    }

    #[test]
    fn validate_detects_stale_cfg_and_universe() {
        let mut f = diamond();
        let mut cache = AnalysisCache::new();
        let _ = cache.cfg(&f);
        let _ = cache.universe(&f);
        assert!(cache.validate(&f).is_ok());
        // Rewire the join to return via block 1: control flow changed.
        f.blocks[1].term = Terminator::Return { value: None };
        let err = cache.validate(&f).expect_err("stale CFG must be caught");
        assert!(err.contains("CFG"), "{err}");
        // A pure instruction edit with intact control flow: CFG fine,
        // universe stale.
        let mut f2 = diamond();
        let mut cache2 = AnalysisCache::new();
        let _ = cache2.cfg(&f2);
        let _ = cache2.universe(&f2);
        f2.blocks[0].insts.pop();
        // Removing the compare breaks the branch's use, but validate only
        // compares analyses; the universe check fires first.
        let err2 = cache2.validate(&f2).expect_err("stale universe must be caught");
        assert!(err2.contains("universe"), "{err2}");
    }

    #[test]
    fn liveness_is_cached_and_invalidated_with_cfg() {
        let f = diamond();
        let mut cache = AnalysisCache::new();
        let live_in_entry = cache.liveness(&f).live_in[0].clone();
        assert!(cache.has_liveness());
        let misses = cache.stats().misses;
        assert_eq!(cache.liveness(&f).live_in[0], live_in_entry); // hit
        assert_eq!(cache.stats().misses, misses);
        assert!(cache.validate(&f).is_ok());

        // CFG invalidation takes liveness down with it.
        cache.invalidate_cfg();
        assert!(!cache.has_liveness());

        // retain() honors the liveness flag; all() keeps it.
        let _ = cache.liveness(&f);
        cache.retain(PreservedAnalyses::all());
        assert!(cache.has_liveness());
        cache.retain(PreservedAnalyses::none().with_cfg().with_universe());
        assert!(!cache.has_liveness());
    }

    #[test]
    fn validate_detects_stale_liveness() {
        let mut f = diamond();
        let mut cache = AnalysisCache::new();
        let _ = cache.liveness(&f);
        assert!(cache.validate(&f).is_ok());
        // Dropping the compare changes upward-exposed uses (and the
        // universe, but only liveness is cached here).
        f.blocks[0].insts.pop();
        f.blocks[0].insts.pop();
        let err = cache.validate(&f).expect_err("stale liveness must be caught");
        assert!(err.contains("liveness"), "{err}");
    }

    #[test]
    fn cfg_and_dominators_borrow_together() {
        let f = diamond();
        let mut cache = AnalysisCache::new();
        let (cfg, doms) = cache.cfg_and_dominators(&f);
        assert_eq!(cfg.len(), 4);
        assert!(doms.is_reachable(epre_ir::BlockId::ENTRY));
        let (_, _) = cache.cfg_and_dominators(&f);
        assert!(cache.stats().hits >= 2);
    }
}
