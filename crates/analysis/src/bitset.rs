//! A dense, fixed-capacity bit set.

use std::fmt;

/// A fixed-capacity set of small integers, stored one bit per element.
///
/// All binary operations require both operands to have the same capacity;
/// data-flow facts over a common universe always do.
///
/// ```
/// use epre_analysis::BitSet;
/// let mut a = BitSet::new(100);
/// a.insert(3);
/// a.insert(64);
/// let mut b = BitSet::new(100);
/// b.insert(64);
/// a.intersect_with(&b);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![64]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// An empty set able to hold elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet { words: vec![0; capacity.div_ceil(64)], capacity }
    }

    /// A set containing every element `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet { words: vec![!0u64; capacity.div_ceil(64)], capacity };
        s.trim();
        s
    }

    fn trim(&mut self) {
        // Defensive form: never subtracts below zero and never shifts by 64,
        // so `capacity == 0` (empty-function universes from the reducer
        // corpus) and word-aligned capacities are both safe.
        self.words.truncate(self.capacity.div_ceil(64));
        let used = self.capacity % 64;
        if used != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0u64 >> (64 - used);
            }
        }
    }

    /// The capacity (universe size) of the set.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert `i`; returns true if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `i >= capacity`.
    pub fn insert(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of capacity {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Remove `i`; returns true if it was present.
    pub fn remove(&mut self, i: usize) -> bool {
        assert!(i < self.capacity, "bit {i} out of capacity {}", self.capacity);
        let (w, b) = (i / 64, i % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// Is `i` in the set?
    pub fn contains(&self, i: usize) -> bool {
        if i >= self.capacity {
            return false;
        }
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∪= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self ∩= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// `self −= other`; returns true if `self` changed.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, other.capacity);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a & !b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Overwrite `self` with the contents of `other`, reusing the existing
    /// word storage (no allocation when capacities match).
    ///
    /// ```
    /// use epre_analysis::BitSet;
    /// let mut scratch = BitSet::new(100);
    /// scratch.insert(7);
    /// let mut src = BitSet::new(100);
    /// src.insert(64);
    /// scratch.assign_from(&src);
    /// assert_eq!(scratch.iter().collect::<Vec<_>>(), vec![64]);
    /// ```
    ///
    /// # Panics
    /// Panics (debug) if the capacities differ.
    pub fn assign_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.capacity, other.capacity);
        self.words.copy_from_slice(&other.words);
    }

    /// `self ∪= (add − minus)` in one in-place sweep; returns true if
    /// `self` changed. This is the data-flow transfer step
    /// `out ∪= gen ∪ (in − kill)` without the intermediate clone.
    ///
    /// ```
    /// use epre_analysis::BitSet;
    /// let mut out = BitSet::new(8);
    /// let mut inn = BitSet::new(8);
    /// let mut kill = BitSet::new(8);
    /// inn.insert(1);
    /// inn.insert(2);
    /// kill.insert(2);
    /// assert!(out.union_with_minus(&inn, &kill));
    /// assert_eq!(out.iter().collect::<Vec<_>>(), vec![1]);
    /// assert!(!out.union_with_minus(&inn, &kill)); // already a fixed point
    /// ```
    ///
    /// # Panics
    /// Panics (debug) if the capacities differ.
    pub fn union_with_minus(&mut self, add: &BitSet, minus: &BitSet) -> bool {
        debug_assert_eq!(self.capacity, add.capacity);
        debug_assert_eq!(self.capacity, minus.capacity);
        let mut changed = false;
        for ((a, b), m) in self.words.iter_mut().zip(&add.words).zip(&minus.words) {
            let new = *a | (b & !m);
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Iterate the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, word: 0, bits: self.words.first().copied().unwrap_or(0) }
    }
}

/// Iterator over the elements of a [`BitSet`], produced by [`BitSet::iter`].
pub struct Iter<'a> {
    set: &'a BitSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.word * 64 + b);
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect into a set sized by the maximum element (+1).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_respects_capacity() {
        let s = BitSet::full(67);
        assert_eq!(s.len(), 67);
        assert!(s.contains(66));
        assert!(!s.contains(67));
        let e = BitSet::full(0);
        assert!(e.is_empty());
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(128);
        let mut b = BitSet::new(128);
        for i in [1, 5, 64, 100] {
            a.insert(i);
        }
        for i in [5, 64, 99] {
            b.insert(i);
        }
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 5, 64, 99, 100]);
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![5, 64]);
        let mut d = a.clone();
        assert!(d.difference_with(&b));
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 100]);
        // No-change operations report false.
        assert!(!u.union_with(&a));
        assert!(!i.intersect_with(&a));
    }

    #[test]
    fn full_and_trim_handle_zero_and_aligned_capacities() {
        // Regression: the old trim computed `words.len()*64 - capacity` and
        // shifted by it, which is shift-overflow-prone at the boundaries.
        for cap in [0usize, 1, 63, 64, 65, 127, 128] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "full({cap})");
            assert_eq!(s.capacity(), cap);
            if cap > 0 {
                assert!(s.contains(cap - 1));
            }
            assert!(!s.contains(cap));
        }
        let e = BitSet::full(0);
        assert!(e.is_empty());
        assert_eq!(e.iter().count(), 0);
        // Set algebra on the empty universe must not panic either.
        let mut a = BitSet::full(0);
        let b = BitSet::new(0);
        assert!(!a.union_with(&b));
        assert!(!a.union_with_minus(&b, &b));
        a.assign_from(&b);
        assert!(a.is_empty());
    }

    #[test]
    fn assign_from_and_union_with_minus() {
        let mut scratch = BitSet::new(130);
        scratch.insert(5);
        let mut src = BitSet::new(130);
        src.insert(129);
        scratch.assign_from(&src);
        assert_eq!(scratch.iter().collect::<Vec<_>>(), vec![129]);

        let mut out = BitSet::new(130);
        out.insert(0);
        let mut add = BitSet::new(130);
        let mut minus = BitSet::new(130);
        for i in [3, 64, 100] {
            add.insert(i);
        }
        minus.insert(64);
        assert!(out.union_with_minus(&add, &minus));
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![0, 3, 100]);
        // Equivalent to the clone-based formulation.
        let mut reference = add.clone();
        reference.difference_with(&minus);
        reference.insert(0);
        assert_eq!(out, reference);
        assert!(!out.union_with_minus(&add, &minus));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(1000));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn out_of_range_insert_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn from_iterator() {
        let s: BitSet = [3usize, 9, 1].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 3, 9]);
    }

    #[test]
    fn matches_hashset_model() {
        // Deterministic pseudo-random ops vs a HashSet reference model.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        let cap = 200;
        let mut bs = BitSet::new(cap);
        let mut hs: HashSet<usize> = HashSet::new();
        for _ in 0..2000 {
            let v = (rng() % cap as u64) as usize;
            match rng() % 3 {
                0 => {
                    assert_eq!(bs.insert(v), hs.insert(v));
                }
                1 => {
                    assert_eq!(bs.remove(v), hs.remove(&v));
                }
                _ => assert_eq!(bs.contains(v), hs.contains(&v)),
            }
            assert_eq!(bs.len(), hs.len());
        }
        let mut from_bs: Vec<usize> = bs.iter().collect();
        let mut from_hs: Vec<usize> = hs.into_iter().collect();
        from_bs.sort_unstable();
        from_hs.sort_unstable();
        assert_eq!(from_bs, from_hs);
    }

    #[test]
    fn clear_empties() {
        let mut s = BitSet::full(100);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn debug_format() {
        let s: BitSet = [2usize, 4].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{2, 4}");
    }
}
