//! A gen/kill data-flow solver over the CFG.
//!
//! Every global system in the pipeline is a classic "rapid" gen/kill
//! problem:
//!
//! | problem            | direction | meet | gen    | kill     |
//! |--------------------|-----------|------|--------|----------|
//! | available exprs    | forward   | ∩    | COMP   | ¬TRANSP  |
//! | anticipatable exprs| backward  | ∩    | ANTLOC | ¬TRANSP  |
//! | live variables     | backward  | ∪    | USE    | DEF      |
//!
//! The solver iterates `out = gen ∪ (in − kill)` (or the mirrored form for
//! backward problems) to a fixed point using a worklist seeded in reverse
//! postorder (postorder for backward problems), which converges in a few
//! sweeps for reducible FORTRAN-shaped CFGs.
//!
//! Boundary conditions: for ∩-problems the boundary block (entry for
//! forward, each exit for backward) starts from ∅ and interior blocks from
//! the full set; for ∪-problems everything starts from ∅.

use crate::bitset::BitSet;
use epre_cfg::{order, Cfg};
use epre_ir::BlockId;

/// Direction of a data-flow problem.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow from predecessors to successors (e.g. availability).
    Forward,
    /// Facts flow from successors to predecessors (e.g. liveness).
    Backward,
}

/// Meet operator combining facts at control-flow confluences.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Meet {
    /// Set union — "along *some* path" problems.
    Union,
    /// Set intersection — "along *every* path" problems.
    Intersection,
}

/// The fixed point of a gen/kill problem: one `(in, out)` pair per block.
///
/// For forward problems `ins[b]` is the meet over predecessors and
/// `outs[b] = gen[b] ∪ (ins[b] − kill[b])`. For backward problems the roles
/// mirror: `outs[b]` is the meet over successors and
/// `ins[b] = gen[b] ∪ (outs[b] − kill[b])`.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Fact at block entry.
    pub ins: Vec<BitSet>,
    /// Fact at block exit.
    pub outs: Vec<BitSet>,
}

/// Solve a gen/kill problem to its maximal (∩) or minimal (∪) fixed point.
///
/// `gen` and `kill` are indexed by block; all sets must share one capacity
/// (the universe size).
///
/// # Panics
/// Panics if `gen`/`kill` lengths disagree with the CFG block count.
pub fn solve(cfg: &Cfg, dir: Direction, meet: Meet, gen: &[BitSet], kill: &[BitSet]) -> Solution {
    let n = cfg.len();
    assert_eq!(gen.len(), n, "gen sets per block");
    assert_eq!(kill.len(), n, "kill sets per block");
    let universe = gen.first().map_or(0, BitSet::capacity);

    let empty = BitSet::new(universe);
    let top = match meet {
        Meet::Union => BitSet::new(universe),
        Meet::Intersection => BitSet::full(universe),
    };

    let mut ins = vec![top.clone(); n];
    let mut outs = vec![top.clone(); n];

    // Process order: RPO for forward, postorder for backward.
    let order: Vec<BlockId> = match dir {
        Direction::Forward => order::reverse_postorder(cfg),
        Direction::Backward => order::postorder(cfg),
    };

    // Unreachable blocks keep ⊤ (they impose no constraints); we simply
    // never visit them. The two scratch sets below are the only buffers the
    // whole fixed-point iteration touches: every sweep computes the meet and
    // the transfer in place and swaps, so no per-iteration allocation.
    let mut scratch_meet = BitSet::new(universe);
    let mut scratch_flow = BitSet::new(universe);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &order {
            let bi = b.index();
            let neighbors = match dir {
                Direction::Forward => cfg.preds(b),
                Direction::Backward => cfg.succs(b),
            };
            {
                let facts = match dir {
                    Direction::Forward => &outs,
                    Direction::Backward => &ins,
                };
                meet_into(&mut scratch_meet, neighbors, facts, meet, &empty);
            }
            // Transfer: flow = gen ∪ (meet − kill).
            scratch_flow.assign_from(&gen[bi]);
            scratch_flow.union_with_minus(&scratch_meet, &kill[bi]);
            let (block_in, block_out) = match dir {
                Direction::Forward => (&mut ins[bi], &mut outs[bi]),
                Direction::Backward => (&mut outs[bi], &mut ins[bi]),
            };
            if scratch_meet != *block_in || scratch_flow != *block_out {
                std::mem::swap(block_in, &mut scratch_meet);
                std::mem::swap(block_out, &mut scratch_flow);
                changed = true;
            }
        }
    }
    Solution { ins, outs }
}

/// Meet the neighbors' facts into `acc` (overwriting it) without
/// allocating. Boundary blocks (no neighbors in the meet direction) get ∅:
/// nothing is available on entry, nothing anticipated after an exit,
/// nothing live after an exit.
fn meet_into(
    acc: &mut BitSet,
    neighbors: &[BlockId],
    facts: &[BitSet],
    meet: Meet,
    empty: &BitSet,
) {
    let Some(&first) = neighbors.first() else {
        acc.assign_from(empty);
        return;
    };
    acc.assign_from(&facts[first.index()]);
    for &p in &neighbors[1..] {
        match meet {
            Meet::Union => {
                acc.union_with(&facts[p.index()]);
            }
            Meet::Intersection => {
                acc.intersect_with(&facts[p.index()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    /// Diamond: b0 -> {b1, b2} -> b3.
    fn diamond_cfg() -> Cfg {
        let mut b = FunctionBuilder::new("d", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let z = b.loadi(Const::Int(0));
        let c = b.bin(BinOp::CmpLt, Ty::Int, x, z);
        b.branch(c, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(x));
        Cfg::new(&b.finish())
    }

    fn set(cap: usize, elems: &[usize]) -> BitSet {
        let mut s = BitSet::new(cap);
        for &e in elems {
            s.insert(e);
        }
        s
    }

    #[test]
    fn forward_intersection_availability() {
        let cfg = diamond_cfg();
        let cap = 2;
        // Expression 0 computed in both arms; expression 1 only in b1.
        let gen = vec![set(cap, &[]), set(cap, &[0, 1]), set(cap, &[0]), set(cap, &[])];
        let kill = vec![BitSet::new(cap); 4];
        let sol = solve(&cfg, Direction::Forward, Meet::Intersection, &gen, &kill);
        // At the join, only expr 0 is available on every path.
        assert!(sol.ins[3].contains(0));
        assert!(!sol.ins[3].contains(1));
        assert!(sol.ins[0].is_empty()); // entry boundary
    }

    #[test]
    fn forward_kill_stops_facts() {
        let cfg = diamond_cfg();
        let cap = 1;
        let gen = vec![set(cap, &[0]), set(cap, &[]), set(cap, &[]), set(cap, &[])];
        // b2 kills expr 0.
        let kill = vec![set(cap, &[]), set(cap, &[]), set(cap, &[0]), set(cap, &[])];
        let sol = solve(&cfg, Direction::Forward, Meet::Intersection, &gen, &kill);
        assert!(sol.ins[1].contains(0));
        assert!(sol.ins[2].contains(0));
        assert!(sol.outs[2].is_empty());
        assert!(!sol.ins[3].contains(0)); // one path killed it
    }

    #[test]
    fn backward_union_liveness() {
        let cfg = diamond_cfg();
        let cap = 2;
        // Variable 0 used in b3; variable 1 used in b1; b0 defines 0.
        let gen = vec![set(cap, &[]), set(cap, &[1]), set(cap, &[]), set(cap, &[0])];
        let kill = vec![set(cap, &[0]), set(cap, &[]), set(cap, &[]), set(cap, &[])];
        let sol = solve(&cfg, Direction::Backward, Meet::Union, &gen, &kill);
        // 0 live out of both arms, killed across b0.
        assert!(sol.outs[0].contains(0));
        assert!(sol.outs[0].contains(1));
        assert!(!sol.ins[0].contains(0)); // defined in b0
        assert!(sol.ins[0].contains(1)); // 1 not defined anywhere upstream
        assert!(sol.outs[3].is_empty()); // exit boundary
    }

    #[test]
    fn backward_intersection_anticipability() {
        let cfg = diamond_cfg();
        let cap = 1;
        // Expr 0 anticipated in both arms -> anticipated at end of b0.
        let gen = vec![set(cap, &[]), set(cap, &[0]), set(cap, &[0]), set(cap, &[])];
        let kill = vec![BitSet::new(cap); 4];
        let sol = solve(&cfg, Direction::Backward, Meet::Intersection, &gen, &kill);
        assert!(sol.outs[0].contains(0));
        // If only one arm computes it, not anticipated.
        let gen2 = vec![set(cap, &[]), set(cap, &[0]), set(cap, &[]), set(cap, &[])];
        let sol2 = solve(&cfg, Direction::Backward, Meet::Intersection, &gen2, &kill);
        assert!(!sol2.outs[0].contains(0));
    }

    #[test]
    fn loop_fixed_point_converges() {
        // entry -> head; head -> {body, exit}; body -> head.
        let mut b = FunctionBuilder::new("l", None);
        let c = b.loadi(Const::Int(1));
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(head);
        b.switch_to(head);
        b.branch(c, body, exit);
        b.switch_to(body);
        b.jump(head);
        b.switch_to(exit);
        b.ret(None);
        let cfg = Cfg::new(&b.finish());
        let cap = 1;
        // Fact generated in body, never killed: available at head only via
        // the back edge, so NOT available at head (entry path lacks it).
        let gen = vec![set(cap, &[]), set(cap, &[]), set(cap, &[0]), set(cap, &[])];
        let kill = vec![BitSet::new(cap); 4];
        let sol = solve(&cfg, Direction::Forward, Meet::Intersection, &gen, &kill);
        assert!(!sol.ins[head.index()].contains(0));
        assert!(sol.ins[head.index()].is_empty());
        // But with gen in entry it IS available everywhere.
        let gen2 = vec![set(cap, &[0]), set(cap, &[]), set(cap, &[]), set(cap, &[])];
        let sol2 = solve(&cfg, Direction::Forward, Meet::Intersection, &gen2, &kill);
        assert!(sol2.ins[head.index()].contains(0));
        assert!(sol2.ins[exit.index()].contains(0));
    }
}
