//! # epre-analysis — data-flow analyses for the Effective PRE pipeline
//!
//! The paper's optimizer solves several global data-flow problems:
//! availability and anticipatability of *lexical expressions* for PRE
//! (Drechsler–Stadel formulation, §2 and §4), and live-variable analysis
//! for pruned SSA construction (§3.1) and Chaitin-style coalescing.
//!
//! This crate provides the shared machinery:
//!
//! * [`BitSet`] — a dense fixed-capacity bit set, the workhorse
//!   representation for all set-valued facts,
//! * [`dataflow`] — a small gen/kill solver over the CFG covering every
//!   union/intersection, forward/backward problem the pipeline needs,
//! * [`liveness`] — classic live-variable analysis,
//! * [`exprs`] — the **expression universe**: the set of distinct lexical
//!   three-address expressions of a function, the domain of PRE (the paper's
//!   naming discipline of §2.2 guarantees each has one canonical name),
//! * [`local`] — the per-block local predicates `TRANSP`, `ANTLOC`, `COMP`
//!   that seed PRE's global systems,
//! * [`cache`] — the [`AnalysisCache`]: lazily-memoized per-function
//!   CFG/orders/dominators/universe with pass-declared preservation, the
//!   backbone of the pass manager.

pub mod bitset;
pub mod cache;
pub mod dataflow;
pub mod exprs;
pub mod liveness;
pub mod local;

pub use bitset::BitSet;
pub use cache::{AnalysisCache, CacheStats, PreservedAnalyses};
pub use dataflow::{solve, Direction, Meet, Solution};
pub use exprs::{ExprId, ExprKey, ExprUniverse};
pub use liveness::Liveness;
pub use local::LocalPredicates;
