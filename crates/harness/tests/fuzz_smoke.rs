//! The fixed-seed fuzz smoke campaign (ISSUE acceptance): at least 200
//! deterministic mutants, each optimized at every level, with **zero**
//! uncontained faults — every injected fault must be caught by the lint
//! layer, rolled back by the sandbox, or flagged (and semantically rolled
//! back) by the differential oracle, and the pipeline must still emit a
//! runnable module. Phase 2 additionally splices the adversarial pass
//! models (non-terminating, quadratic growth) into the pipeline at every
//! level and demands the resource budget contains every one.

use epre::Budget;
use epre_frontend::{compile, NamingMode};
use epre_harness::{run_campaign, CampaignConfig, ALL_LEVELS};
use epre_ir::Module;

/// Small, varied base programs: a scalar loop, a branchy float function,
/// an array kernel (loads + stores), and a two-function module with a
/// call. Loop trip counts are kept tiny so oracle runs stay cheap.
fn bases() -> Vec<Module> {
    let srcs = [
        "function sloop(y, z)\n\
         integer y, z, s, i\n\
         begin\n\
         s = 0\n\
         do i = 1, 8\n\
           s = s + y * z + i\n\
         enddo\n\
         return s\nend\n",
        "function pick(a, b)\n\
         real a, b, x\n\
         begin\n\
         if a < b then\n\
           x = a * 2 + b\n\
         else\n\
           x = b * 2 + a\n\
         endif\n\
         return x\nend\n",
        "function ksum(k)\n\
         real m(6)\n\
         integer i, k\n\
         real s\n\
         begin\n\
         do i = 1, 6\n\
           m(i) = i * k\n\
         enddo\n\
         s = 0\n\
         do i = 1, 6\n\
           s = s + m(i)\n\
         enddo\n\
         return s\nend\n",
        "function sq(x)\n\
         integer x, sq\n\
         begin\n\
         return x * x\n\
         end\n\
         function twice(a, b)\n\
         integer a, b, twice\n\
         begin\n\
         return sq(a) + sq(b)\n\
         end\n",
    ];
    srcs.iter().map(|s| compile(s, NamingMode::Disciplined).unwrap()).collect()
}

#[test]
fn campaign_200_mutants_zero_uncontained() {
    let cfg = CampaignConfig {
        seed: 0xB1663C,
        iters: 210,
        fuel: 20_000,
        levels: ALL_LEVELS.to_vec(),
        budget: Budget::governed(),
        pass_fault_iters: 6,
    };
    let report = run_campaign(&bases(), &cfg);
    assert!(report.is_contained(), "containment failed:\n{report}");
    assert!(report.mutants >= 200, "only {} mutants generated", report.mutants);
    assert_eq!(report.runs, report.mutants * ALL_LEVELS.len());
    // The tally must be complete: every run classified exactly once.
    assert_eq!(
        report.rolled_back + report.oracle_caught + report.ingress_lint + report.benign,
        report.runs,
    );
    // A campaign that never catches anything proves nothing: the injector
    // must be producing real faults that the stack visibly contains.
    assert!(
        report.ingress_lint + report.rolled_back + report.oracle_caught > report.runs / 10,
        "suspiciously few faults caught:\n{report}"
    );
    // Phase 2: both adversarial pass models, spliced at every level, all
    // stopped by the budget.
    assert_eq!(report.pass_fault_runs, 6 * ALL_LEVELS.len());
    assert_eq!(
        report.budget_contained, report.pass_fault_runs,
        "a pass-fault model escaped the budget:\n{report}"
    );
}

#[test]
fn campaign_is_deterministic_across_repeats() {
    let cfg = CampaignConfig {
        seed: 0x5EED,
        iters: 30,
        fuel: 20_000,
        levels: ALL_LEVELS.to_vec(),
        budget: Budget::governed(),
        pass_fault_iters: 2,
    };
    let a = run_campaign(&bases(), &cfg);
    let b = run_campaign(&bases(), &cfg);
    assert_eq!(a.mutants, b.mutants);
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.rolled_back, b.rolled_back);
    assert_eq!(a.oracle_caught, b.oracle_caught);
    assert_eq!(a.ingress_lint, b.ingress_lint);
    assert_eq!(a.benign, b.benign);
    assert_eq!(a.pass_fault_runs, b.pass_fault_runs);
    assert_eq!(a.budget_contained, b.budget_contained);
    assert_eq!(a.uncontained, b.uncontained);
}

#[test]
fn different_seeds_explore_different_mutants() {
    let mk = |seed| CampaignConfig {
        seed,
        iters: 30,
        fuel: 20_000,
        levels: ALL_LEVELS.to_vec(),
        budget: Budget::governed(),
        pass_fault_iters: 0,
    };
    let a = run_campaign(&bases(), &mk(1));
    let b = run_campaign(&bases(), &mk(2));
    assert!(a.is_contained() && b.is_contained());
    // Tallies almost surely differ across seeds; equality of *all four*
    // would mean the seed is being ignored.
    assert!(
        (a.rolled_back, a.oracle_caught, a.ingress_lint, a.benign)
            != (b.rolled_back, b.oracle_caught, b.ingress_lint, b.benign),
        "seed appears to have no effect"
    );
}
