! Promoted from tests/equivalence_prop.proptest-regressions: proptest
! shrank a random program to this nested pair of DO loops sharing the
! index variable k1 — the inner loop clobbers the outer loop's counter
! (the outer loop therefore never terminates), which once exposed a
! divergence between optimization levels. Kept as a deterministic corpus
! case: every level must exhaust an identical fuel budget with an
! identical OutOfFuel error (args of interest: all zeros), and the
! differential oracle must report no conclusive divergence.
function f(v0, v1, v2, v3)
integer f, v0, v1, v2, v3, k0, k1, k2
begin
do k1 = 1, 5
  do k1 = 1, 2
    v0 = v0
  enddo
enddo
return v0 + 2 * v1 + 3 * v2 + 5 * v3
end
