//! The checked-in repro corpus: every `tests/repros/*.f` source must
//! compile and agree with its unoptimized self at **every** optimization
//! level under the differential oracle (these files are shrunk former
//! failures — the cheapest regression net there is), and every
//! `tests/repros/*.iloc` module must parse and provoke the failure its
//! header documents.

use epre::Optimizer;
use epre_frontend::{compile, NamingMode};
use epre_harness::{compare_modules, FailureSpec, ALL_LEVELS};
use epre_harness::oracle::OracleConfig;
use epre_interp::{ExecError, Interpreter, Value};
use epre_ir::parse_module;

fn repro_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repros")
}

fn read_corpus(ext: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(repro_dir()).expect("repros directory exists") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) == Some(ext) {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            out.push((name, std::fs::read_to_string(&path).unwrap()));
        }
    }
    out.sort();
    assert!(!out.is_empty(), "no .{ext} repros found");
    out
}

#[test]
fn fortran_repros_agree_at_every_level() {
    for (name, src) in read_corpus("f") {
        let m = compile(&src, NamingMode::Disciplined)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        for level in ALL_LEVELS {
            let opt = Optimizer::new(level).optimize(&m);
            let d = compare_modules(&m, &opt, &OracleConfig::default());
            assert!(d.is_empty(), "{name} at {}: {}", level.label(), d[0]);
        }
    }
}

/// The historical failure case recorded alongside the proptest
/// regression: the shadowed-index program with all-zero arguments. The
/// inner loop clobbers the outer counter, so the program never
/// terminates — the equivalence claim is that every level exhausts the
/// *same* fuel budget with the *same* error, exactly.
#[test]
fn nested_do_shadowed_index_exact_case() {
    let (_, src) = read_corpus("f")
        .into_iter()
        .find(|(n, _)| n == "nested_do_shadowed_index.f")
        .expect("promoted regression present");
    let m = compile(&src, NamingMode::Disciplined).unwrap();
    let args = [Value::Int(0), Value::Int(0), Value::Int(0), Value::Int(0)];
    let budget = 10_000u64;
    let reference: Result<Option<Value>, ExecError> =
        Interpreter::new(&m).with_fuel(budget).run("f", &args);
    assert_eq!(reference, Err(ExecError::OutOfFuel { budget }), "loop is non-terminating");
    for level in ALL_LEVELS {
        let opt = Optimizer::new(level).optimize(&m);
        let got = Interpreter::new(&opt).with_fuel(budget).run("f", &args);
        assert_eq!(got, reference, "level {}", level.label());
    }
}

#[test]
fn iloc_repros_parse_and_provoke_their_failure() {
    for (name, text) in read_corpus("iloc") {
        let m = parse_module(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        // Convention: an iloc repro's failure is named in its filename,
        // e.g. `use_before_def_min.iloc` provokes L020.
        if name.starts_with("use_before_def") {
            let spec = FailureSpec::LintCode { code: "L020".into() };
            assert!(spec.holds(&m), "{name}: no longer provokes L020");
        }
    }
}
