//! Reducer acceptance (ISSUE): a seeded multi-function failing module
//! must shrink by at least 80% of its instructions while the failure
//! predicate keeps holding — and the shrunk repro, checked in under
//! `tests/repros/`, must stay minimal and still provoke the failure.

use epre_frontend::{compile, NamingMode};
use epre_harness::{reduce, FailureSpec, SplitMix64};
use epre_ir::{parse_module, Inst, Module, Ty};

/// A multi-function module built from several compiled routines.
fn big_module() -> Module {
    let srcs = [
        "function sloop(y, z)\n\
         integer y, z, s, i\n\
         begin\n\
         s = 0\n\
         do i = 1, 8\n\
           s = s + y * z + i\n\
         enddo\n\
         return s\nend\n",
        "function pick(a, b)\n\
         real a, b, x\n\
         begin\n\
         if a < b then\n\
           x = a * 2 + b\n\
         else\n\
           x = b * 2 + a\n\
         endif\n\
         return x\nend\n",
        "function ksum(k)\n\
         real m(6)\n\
         integer i, k\n\
         real s\n\
         begin\n\
         do i = 1, 6\n\
           m(i) = i * k\n\
         enddo\n\
         s = 0\n\
         do i = 1, 6\n\
           s = s + m(i)\n\
         enddo\n\
         return s\nend\n",
    ];
    let mut out = Module::new();
    for s in srcs {
        let m = compile(s, NamingMode::Disciplined).unwrap();
        out.data_words = out.data_words.max(m.data_words);
        out.functions.extend(m.functions);
    }
    out
}

/// Inject a use-before-def (rule L020) into a seeded function: a copy
/// whose source register is never defined.
fn inject_ghost_use(m: &mut Module, seed: u64) {
    let mut rng = SplitMix64::new(seed);
    let fi = rng.below(m.functions.len());
    let f = &mut m.functions[fi];
    let dst = f.new_reg(Ty::Int);
    let ghost = f.new_reg(Ty::Int);
    let b = rng.below(f.blocks.len());
    let at = rng.below(f.blocks[b].insts.len() + 1);
    f.blocks[b].insts.insert(at, Inst::Copy { dst, src: ghost });
}

#[test]
fn reducer_shrinks_multi_function_module_by_80_percent() {
    let mut m = big_module();
    inject_ghost_use(&mut m, 0xD15EA5E);
    let spec = FailureSpec::LintCode { code: "L020".into() };
    assert!(spec.holds(&m), "seeded module must provoke L020");

    let initial = m.functions.iter().map(|f| f.inst_count()).sum::<usize>();
    let (small, stats) = reduce(&m, &|cand| spec.holds(cand));
    assert!(stats.held);
    assert!(spec.holds(&small), "reduction lost the failure");
    assert_eq!(stats.initial_insts, initial);
    assert!(
        stats.reduction() >= 0.8,
        "only {:.0}% reduced ({} -> {} insts)",
        stats.reduction() * 100.0,
        stats.initial_insts,
        stats.final_insts
    );
    assert_eq!(stats.final_functions, 1, "one function suffices for L020");
}

#[test]
fn reduction_is_deterministic() {
    let mut m = big_module();
    inject_ghost_use(&mut m, 0xD15EA5E);
    let spec = FailureSpec::LintCode { code: "L020".into() };
    let (a, _) = reduce(&m, &|cand| spec.holds(cand));
    let (b, _) = reduce(&m, &|cand| spec.holds(cand));
    assert_eq!(format!("{a}"), format!("{b}"));
}

/// The checked-in shrunk repro still provokes L020 and is already
/// minimal: re-running the reducer removes nothing further.
#[test]
fn checked_in_repro_is_minimal_and_still_fails() {
    let text = include_str!("repros/use_before_def_min.iloc");
    let m = parse_module(text).unwrap();
    let spec = FailureSpec::LintCode { code: "L020".into() };
    assert!(spec.holds(&m), "checked-in repro no longer provokes L020");
    let (small, stats) = reduce(&m, &|cand| spec.holds(cand));
    assert!(stats.held);
    assert_eq!(
        stats.final_insts, stats.initial_insts,
        "checked-in repro is not minimal; reducer got it to:\n{small}"
    );
}
