//! Delta-debugging IR reducer: shrink a failing module while a failure
//! predicate keeps holding.
//!
//! The reducer is ddmin (Zeller & Hildebrandt) specialized to ILOC
//! structure, applied coarse-to-fine and iterated to a fixpoint:
//!
//! 1. **functions** — drop whole functions,
//! 2. **instructions** — per function, ddmin over instruction sites,
//! 3. **blocks** — degrade branches to jumps, then compact unreachable
//!    blocks (with `BlockId` remapping and φ-argument cleanup),
//! 4. **operands** — canonicalize register uses toward the lowest
//!    same-typed register, collapsing the def-use web.
//!
//! Every candidate is accepted only when the predicate still holds, so
//! the final module provokes the *same* failure as the input, just with
//! (typically far) fewer instructions.

use std::cell::Cell;

use epre::{OptLevel, Optimizer};
use epre_ir::{BlockId, Function, Inst, Module, Terminator};
use epre_lint::{lint_function, LintOptions};

use crate::oracle::{compare_modules, OracleConfig};
use crate::sandbox::catch_quiet;

/// A reusable failure predicate: "the interesting thing still happens".
#[derive(Debug, Clone)]
pub enum FailureSpec {
    /// Optimizing at `level` panics (or trips a debug verify fault) with a
    /// message containing `needle`. An empty needle matches any panic.
    PanicContains {
        /// Level whose pipeline must fail.
        level: OptLevel,
        /// Substring the panic/fault message must contain.
        needle: String,
    },
    /// Some function lints with this rule code (invariant rules only).
    LintCode {
        /// The rule code, e.g. `"L020"`.
        code: String,
    },
    /// Optimizing at `level` succeeds but the result diverges from the
    /// input under the differential oracle.
    OracleMismatch {
        /// Level whose output must diverge.
        level: OptLevel,
        /// Oracle settings used for the comparison.
        oracle: OracleConfig,
    },
}

impl FailureSpec {
    /// Does the failure hold on `m`?
    pub fn holds(&self, m: &Module) -> bool {
        match self {
            FailureSpec::PanicContains { level, needle } => {
                match catch_quiet(|| Optimizer::new(*level).try_optimize(m)) {
                    Err(panic_msg) => panic_msg.contains(needle.as_str()),
                    Ok(Err(fault)) => fault.to_string().contains(needle.as_str()),
                    Ok(Ok(_)) => false,
                }
            }
            FailureSpec::LintCode { code } => {
                let opts = LintOptions::invariants_only();
                m.functions
                    .iter()
                    .any(|f| lint_function(f, &opts).codes().contains(&code.as_str()))
            }
            FailureSpec::OracleMismatch { level, oracle } => {
                match catch_quiet(|| Optimizer::new(*level).try_optimize(m)) {
                    Ok(Ok(opt)) => !compare_modules(m, &opt, oracle).is_empty(),
                    _ => false,
                }
            }
        }
    }
}

/// What the reducer accomplished.
#[derive(Debug, Clone, Default)]
pub struct ReduceStats {
    /// Whether the predicate held on the input at all. When `false` the
    /// input is returned unchanged.
    pub held: bool,
    /// Instructions in the input module.
    pub initial_insts: usize,
    /// Instructions in the reduced module.
    pub final_insts: usize,
    /// Functions in the input module.
    pub initial_functions: usize,
    /// Functions in the reduced module.
    pub final_functions: usize,
    /// Predicate evaluations performed.
    pub tests: usize,
}

impl ReduceStats {
    /// Fraction of instructions removed, in `[0, 1]`.
    pub fn reduction(&self) -> f64 {
        if self.initial_insts == 0 {
            0.0
        } else {
            1.0 - self.final_insts as f64 / self.initial_insts as f64
        }
    }
}

fn total_insts(m: &Module) -> usize {
    m.functions.iter().map(Function::inst_count).sum()
}

fn total_blocks(m: &Module) -> usize {
    m.functions.iter().map(|f| f.blocks.len()).sum()
}

/// Classic ddmin over `items`: returns a (locally) 1-minimal sublist on
/// which `test` still returns true. Assumes `test` holds on the full list.
fn ddmin_list<T: Clone>(items: Vec<T>, test: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur = items;
    let mut n = 2usize;
    while cur.len() >= 2 {
        let chunk = cur.len().div_ceil(n);
        let mut progressed = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let complement: Vec<T> = cur[..start]
                .iter()
                .chain(&cur[end..])
                .cloned()
                .collect();
            if test(&complement) {
                cur = complement;
                n = n.saturating_sub(1).max(2);
                progressed = true;
                break;
            }
            start = end;
        }
        if !progressed {
            if n >= cur.len() {
                break;
            }
            n = (n * 2).min(cur.len());
        }
    }
    cur
}

/// Phase 1: ddmin over whole functions.
fn reduce_functions(m: &Module, pred: &dyn Fn(&Module) -> bool, tests: &Cell<usize>) -> Module {
    let kept = ddmin_list(m.functions.clone(), &mut |fns: &[Function]| {
        let mut cand = m.clone();
        cand.functions = fns.to_vec();
        tests.set(tests.get() + 1);
        pred(&cand)
    });
    let mut out = m.clone();
    out.functions = kept;
    out
}

/// Phase 2: per function, ddmin over instruction sites.
fn reduce_instructions(m: &Module, pred: &dyn Fn(&Module) -> bool, tests: &Cell<usize>) -> Module {
    let mut cur = m.clone();
    for fi in 0..cur.functions.len() {
        let sites: Vec<(usize, usize)> = cur.functions[fi]
            .blocks
            .iter()
            .enumerate()
            .flat_map(|(b, blk)| (0..blk.insts.len()).map(move |i| (b, i)))
            .collect();
        let build = |base: &Module, keep: &[(usize, usize)]| -> Module {
            let mut cand = base.clone();
            let f = &mut cand.functions[fi];
            for (b, blk) in f.blocks.iter_mut().enumerate() {
                let mut idx = 0;
                blk.insts.retain(|_| {
                    let keep_it = keep.contains(&(b, idx));
                    idx += 1;
                    keep_it
                });
            }
            cand
        };
        let base = cur.clone();
        let kept = ddmin_list(sites, &mut |keep: &[(usize, usize)]| {
            tests.set(tests.get() + 1);
            pred(&build(&base, keep))
        });
        cur = build(&base, &kept);
    }
    cur
}

/// Remove blocks unreachable from the entry, remapping `BlockId`s and
/// dropping φ-arguments whose predecessor vanished.
fn drop_unreachable(f: &mut Function) {
    if f.blocks.is_empty() {
        return;
    }
    let mut reachable = vec![false; f.blocks.len()];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if reachable[b] {
            continue;
        }
        reachable[b] = true;
        for s in f.blocks[b].term.successors() {
            stack.push(s.index());
        }
    }
    if reachable.iter().all(|&r| r) {
        return;
    }
    let mut remap = vec![None; f.blocks.len()];
    let mut next = 0u32;
    for (b, &r) in reachable.iter().enumerate() {
        if r {
            remap[b] = Some(BlockId(next));
            next += 1;
        }
    }
    let mut blocks = Vec::with_capacity(next as usize);
    for (b, blk) in std::mem::take(&mut f.blocks).into_iter().enumerate() {
        if !reachable[b] {
            continue;
        }
        let mut blk = blk;
        for inst in &mut blk.insts {
            if let Inst::Phi { args, .. } = inst {
                args.retain_mut(|(p, _)| match remap[p.index()] {
                    Some(new) => {
                        *p = new;
                        true
                    }
                    None => false,
                });
            }
        }
        match &mut blk.term {
            Terminator::Jump { target } => {
                *target = remap[target.index()].expect("reachable successor");
            }
            Terminator::Branch { then_to, else_to, .. } => {
                *then_to = remap[then_to.index()].expect("reachable successor");
                *else_to = remap[else_to.index()].expect("reachable successor");
            }
            Terminator::Return { .. } => {}
        }
        blocks.push(blk);
    }
    f.blocks = blocks;
}

/// Phase 3: degrade branches to jumps where the predicate allows, then
/// compact away unreachable blocks (reverted if compaction loses the
/// failure — e.g. it lived in an unreachable block).
fn reduce_blocks(m: &Module, pred: &dyn Fn(&Module) -> bool, tests: &Cell<usize>) -> Module {
    let mut cur = m.clone();
    for fi in 0..cur.functions.len() {
        for b in 0..cur.functions[fi].blocks.len() {
            let Terminator::Branch { then_to, else_to, .. } = cur.functions[fi].blocks[b].term
            else {
                continue;
            };
            for target in [then_to, else_to] {
                let mut cand = cur.clone();
                cand.functions[fi].blocks[b].term = Terminator::Jump { target };
                tests.set(tests.get() + 1);
                if pred(&cand) {
                    cur = cand;
                    break;
                }
            }
        }
    }
    let mut compacted = cur.clone();
    for f in &mut compacted.functions {
        drop_unreachable(f);
    }
    tests.set(tests.get() + 1);
    if pred(&compacted) {
        compacted
    } else {
        cur
    }
}

/// Phase 4: rewrite register uses toward the lowest same-typed register,
/// collapsing the def-use web one accepted substitution at a time.
fn reduce_operands(m: &Module, pred: &dyn Fn(&Module) -> bool, tests: &Cell<usize>) -> Module {
    let mut cur = m.clone();
    for fi in 0..cur.functions.len() {
        let nblocks = cur.functions[fi].blocks.len();
        for b in 0..nblocks {
            let ninsts = cur.functions[fi].blocks[b].insts.len();
            for i in 0..ninsts {
                let uses = cur.functions[fi].blocks[b].insts[i].uses();
                for u in uses {
                    let lowest = {
                        let f = &cur.functions[fi];
                        (0..f.reg_count())
                            .map(|r| epre_ir::Reg(r as u32))
                            .find(|&r| f.ty_of(r) == f.ty_of(u))
                    };
                    let Some(lowest) = lowest else {
                        continue;
                    };
                    if lowest == u {
                        continue;
                    }
                    let mut cand = cur.clone();
                    cand.functions[fi].blocks[b].insts[i]
                        .map_uses(|r| if r == u { lowest } else { r });
                    tests.set(tests.get() + 1);
                    if pred(&cand) {
                        cur = cand;
                    }
                }
            }
        }
    }
    cur
}

/// Shrink `input` while `pred` keeps holding.
///
/// When `pred` does not hold on the input, the input is returned
/// unchanged with [`ReduceStats::held`]` == false`.
pub fn reduce(input: &Module, pred: &dyn Fn(&Module) -> bool) -> (Module, ReduceStats) {
    let mut stats = ReduceStats {
        initial_insts: total_insts(input),
        initial_functions: input.functions.len(),
        ..ReduceStats::default()
    };
    let tests = Cell::new(0usize);
    tests.set(1);
    if !pred(input) {
        stats.final_insts = stats.initial_insts;
        stats.final_functions = stats.initial_functions;
        stats.tests = tests.get();
        return (input.clone(), stats);
    }
    stats.held = true;
    let mut cur = input.clone();
    loop {
        let metric = (cur.functions.len(), total_insts(&cur), total_blocks(&cur));
        cur = reduce_functions(&cur, pred, &tests);
        cur = reduce_instructions(&cur, pred, &tests);
        cur = reduce_blocks(&cur, pred, &tests);
        cur = reduce_operands(&cur, pred, &tests);
        if (cur.functions.len(), total_insts(&cur), total_blocks(&cur)) == metric {
            break;
        }
    }
    stats.final_insts = total_insts(&cur);
    stats.final_functions = cur.functions.len();
    stats.tests = tests.get();
    (cur, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_frontend::{compile, NamingMode};
    use epre_ir::Ty;

    const SRC: &str = "function foo(y, z)\n\
                       integer y, z, s, i\n\
                       begin\n\
                       s = 0\n\
                       do i = 1, 10\n\
                         s = s + y * z + i\n\
                       enddo\n\
                       return s\nend\n";

    #[test]
    fn ddmin_finds_single_culprit() {
        // The predicate: "contains the number 13".
        let items: Vec<u32> = (0..50).collect();
        let out = ddmin_list(items, &mut |xs| xs.contains(&13));
        assert_eq!(out, vec![13]);
    }

    #[test]
    fn ddmin_finds_pair() {
        let items: Vec<u32> = (0..32).collect();
        let out = ddmin_list(items, &mut |xs| xs.contains(&3) && xs.contains(&29));
        assert_eq!(out, vec![3, 29]);
    }

    #[test]
    fn lint_predicate_reduction_shrinks_hard() {
        let mut m = compile(SRC, NamingMode::Disciplined).unwrap();
        // Inject a use of a never-defined register: rule L020.
        {
            let f = &mut m.functions[0];
            let dst = f.new_reg(Ty::Int);
            let ghost = f.new_reg(Ty::Int);
            let last = f.blocks.len() - 1;
            f.blocks[last].insts.push(Inst::Copy { dst, src: ghost });
        }
        let spec = FailureSpec::LintCode { code: "L020".into() };
        assert!(spec.holds(&m));
        let (small, stats) = reduce(&m, &|cand| spec.holds(cand));
        assert!(stats.held);
        assert!(spec.holds(&small), "reduced module lost the failure");
        assert!(
            stats.final_insts <= 2,
            "L020 needs only the ghost copy; got {} insts",
            stats.final_insts
        );
        assert!(stats.reduction() >= 0.8, "only {:.0}% reduced", stats.reduction() * 100.0);
    }

    #[test]
    fn unreduced_input_is_returned_when_predicate_fails() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let spec = FailureSpec::LintCode { code: "L020".into() };
        let (out, stats) = reduce(&m, &|cand| spec.holds(cand));
        assert!(!stats.held);
        assert_eq!(format!("{out}"), format!("{m}"));
    }

    #[test]
    fn drop_unreachable_remaps_terminators() {
        let mut m = compile(SRC, NamingMode::Disciplined).unwrap();
        let f = &mut m.functions[0];
        // Append a floating block nothing jumps to.
        f.add_block(epre_ir::Block::new(Terminator::Return { value: None }));
        let before = f.blocks.len();
        drop_unreachable(f);
        assert_eq!(f.blocks.len(), before - 1);
        assert!(f.verify().is_ok());
    }
}
