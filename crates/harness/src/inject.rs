//! Seeded fault injection: deterministic IR mutations and adversarial
//! *pass* models for the fuzz campaign.
//!
//! Each IR mutation models a realistic *optimizer bug* rather than random
//! bit noise: dropping an instruction (over-eager DCE), duplicating one
//! (botched code motion), swapping operands (commutativity applied to a
//! non-commutative operator), retargeting a branch (CFG surgery gone
//! wrong), corrupting a φ-argument (SSA repair bug), and clobbering a def
//! (rename collision). The containment stack — lint, sandbox, oracle —
//! must catch or tolerate every one of them.
//!
//! The [`PassFaultModel`]s are a different axis: instead of damaging the
//! IR, they splice a *misbehaving pass* into the pipeline — one that
//! never reaches its fixed point, and one whose output grows without
//! bound. Neither panics and neither emits invalid ILOC, so the panic and
//! lint layers are blind to them; only the resource [`Budget`] can stop
//! them, which is exactly what the campaign proves.

use epre::Budget;
use epre_analysis::AnalysisCache;
use epre_ir::{BlockId, Const, Function, Inst, Module, Terminator, Ty};
use epre_passes::{BudgetExceeded, Pass};

use crate::rng::SplitMix64;

/// The kinds of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Delete one instruction (models over-eager dead-code elimination).
    DropInst,
    /// Duplicate one instruction in place (models botched code motion —
    /// the second def redefines the register).
    DupInst,
    /// Swap the operands of a binary instruction (models commutativity
    /// applied where it does not hold; benign on `add`, wrong on `sub`).
    SwapOperands,
    /// Redirect one edge of a branch or jump to a random block (models
    /// CFG surgery gone wrong).
    RetargetBranch,
    /// Replace one φ-argument's register with a random register (models
    /// an SSA-repair bug). Falls back to another mutation when the
    /// function holds no φs (frontend output is not in SSA form).
    CorruptPhi,
    /// Redirect an instruction's def to a register that is live for
    /// another purpose (models a renaming collision).
    ClobberDef,
}

impl MutationKind {
    /// All kinds, in selection order.
    pub const ALL: [MutationKind; 6] = [
        MutationKind::DropInst,
        MutationKind::DupInst,
        MutationKind::SwapOperands,
        MutationKind::RetargetBranch,
        MutationKind::CorruptPhi,
        MutationKind::ClobberDef,
    ];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            MutationKind::DropInst => "drop-inst",
            MutationKind::DupInst => "dup-inst",
            MutationKind::SwapOperands => "swap-operands",
            MutationKind::RetargetBranch => "retarget-branch",
            MutationKind::CorruptPhi => "corrupt-phi",
            MutationKind::ClobberDef => "clobber-def",
        }
    }
}

/// A record of one applied mutation.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// What was done.
    pub kind: MutationKind,
    /// Function mutated.
    pub function: String,
    /// Block mutated.
    pub block: BlockId,
    /// Instruction index within the block, when instruction-level.
    pub inst: Option<usize>,
}

impl std::fmt::Display for Mutation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} in `{}` at b{}", self.kind.label(), self.function, self.block.0)?;
        if let Some(i) = self.inst {
            write!(f, ".{i}")?;
        }
        Ok(())
    }
}

/// Try to apply one mutation of `kind` to `f`. Returns the record on
/// success, `None` when the function offers no site for this kind.
fn apply(f: &mut Function, kind: MutationKind, rng: &mut SplitMix64) -> Option<Mutation> {
    let name = f.name.clone();
    match kind {
        MutationKind::DropInst => {
            let sites: Vec<(usize, usize)> = inst_sites(f, |_| true);
            let &(b, i) = pick(&sites, rng)?;
            f.blocks[b].insts.remove(i);
            Some(Mutation { kind, function: name, block: BlockId(b as u32), inst: Some(i) })
        }
        MutationKind::DupInst => {
            // Duplicating a φ would put a φ below a non-φ and be caught
            // trivially; target real instructions.
            let sites: Vec<(usize, usize)> = inst_sites(f, |i| !matches!(i, Inst::Phi { .. }));
            let &(b, i) = pick(&sites, rng)?;
            let dup = f.blocks[b].insts[i].clone();
            f.blocks[b].insts.insert(i + 1, dup);
            Some(Mutation { kind, function: name, block: BlockId(b as u32), inst: Some(i) })
        }
        MutationKind::SwapOperands => {
            let sites: Vec<(usize, usize)> = inst_sites(f, |i| matches!(i, Inst::Bin { .. }));
            let &(b, i) = pick(&sites, rng)?;
            if let Inst::Bin { lhs, rhs, .. } = &mut f.blocks[b].insts[i] {
                std::mem::swap(lhs, rhs);
            }
            Some(Mutation { kind, function: name, block: BlockId(b as u32), inst: Some(i) })
        }
        MutationKind::RetargetBranch => {
            if f.blocks.len() < 2 {
                return None;
            }
            let branchy: Vec<usize> = f
                .blocks
                .iter()
                .enumerate()
                .filter(|(_, blk)| !matches!(blk.term, Terminator::Return { .. }))
                .map(|(b, _)| b)
                .collect();
            let &b = pick(&branchy, rng)?;
            let new_target = BlockId(rng.below(f.blocks.len()) as u32);
            match &mut f.blocks[b].term {
                Terminator::Jump { target } => *target = new_target,
                Terminator::Branch { then_to, else_to, .. } => {
                    if rng.below(2) == 0 {
                        *then_to = new_target;
                    } else {
                        *else_to = new_target;
                    }
                }
                Terminator::Return { .. } => unreachable!(),
            }
            Some(Mutation { kind, function: name, block: BlockId(b as u32), inst: None })
        }
        MutationKind::CorruptPhi => {
            if f.reg_count() == 0 {
                return None;
            }
            let sites: Vec<(usize, usize)> = inst_sites(f, |i| matches!(i, Inst::Phi { .. }));
            let &(b, i) = pick(&sites, rng)?;
            let junk = epre_ir::Reg(rng.below(f.reg_count()) as u32);
            if let Inst::Phi { args, .. } = &mut f.blocks[b].insts[i] {
                let k = rng.below(args.len().max(1)).min(args.len().saturating_sub(1));
                if let Some((_, r)) = args.get_mut(k) {
                    *r = junk;
                }
            }
            Some(Mutation { kind, function: name, block: BlockId(b as u32), inst: Some(i) })
        }
        MutationKind::ClobberDef => {
            if f.reg_count() == 0 {
                return None;
            }
            let sites: Vec<(usize, usize)> = inst_sites(f, |i| i.dst().is_some());
            let &(b, i) = pick(&sites, rng)?;
            let victim = epre_ir::Reg(rng.below(f.reg_count()) as u32);
            // Keep the register type consistent so the fault is a *live
            // range* collision, not a trivially-typed one the lint layer
            // would flag before anything interesting happens.
            let old = f.blocks[b].insts[i].dst().expect("site has a def");
            if f.ty_of(victim) != f.ty_of(old) {
                return None;
            }
            f.blocks[b].insts[i].set_dst(victim);
            Some(Mutation { kind, function: name, block: BlockId(b as u32), inst: Some(i) })
        }
    }
}

/// `(block, inst)` indices of instructions satisfying `want`.
fn inst_sites(f: &Function, want: impl Fn(&Inst) -> bool) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (b, blk) in f.blocks.iter().enumerate() {
        for (i, inst) in blk.insts.iter().enumerate() {
            if want(inst) {
                out.push((b, i));
            }
        }
    }
    out
}

fn pick<'a, T>(xs: &'a [T], rng: &mut SplitMix64) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.below(xs.len())])
    }
}

/// Apply one seeded mutation to a clone of `module`.
///
/// Draws `(function, kind)` pairs until a mutation applies, bounded by a
/// fixed attempt budget so a degenerate module (e.g. all-empty functions)
/// cannot loop forever. Returns `None` only when the budget is exhausted.
pub fn mutate_module(module: &Module, rng: &mut SplitMix64) -> Option<(Module, Mutation)> {
    if module.functions.is_empty() {
        return None;
    }
    for _ in 0..24 {
        let mut out = module.clone();
        let fi = rng.below(out.functions.len());
        let kind = MutationKind::ALL[rng.below(MutationKind::ALL.len())];
        if let Some(m) = apply(&mut out.functions[fi], kind, rng) {
            return Some((out, m));
        }
    }
    None
}

/// The adversarial pass models: optimizer bugs that only a resource
/// budget can contain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassFaultModel {
    /// A fixed-point pass that never converges: it ticks its meter
    /// forever without changing the function. Contained by the iteration
    /// cap (or the deadline).
    NonTerminating,
    /// A pass whose every round appends another copy's worth of
    /// instructions — code growth with no fixed point. Contained by the
    /// growth cap.
    QuadraticGrowth,
}

impl PassFaultModel {
    /// Both models, in selection order.
    pub const ALL: [PassFaultModel; 2] =
        [PassFaultModel::NonTerminating, PassFaultModel::QuadraticGrowth];

    /// The injected pass's `Pass::name`.
    pub fn pass_name(self) -> &'static str {
        match self {
            PassFaultModel::NonTerminating => "nonterminating",
            PassFaultModel::QuadraticGrowth => "quadratic-growth",
        }
    }

    /// Build the adversarial pass object.
    pub fn build(self) -> Box<dyn Pass> {
        match self {
            PassFaultModel::NonTerminating => Box::new(NonTerminatingPass),
            PassFaultModel::QuadraticGrowth => Box::new(QuadraticGrowthPass),
        }
    }
}

/// A cooperative but divergent fixed-point pass: every "iteration" ticks
/// the meter and converges on nothing.
///
/// Under an unbudgeted (or iteration/deadline-unbounded) invocation it
/// self-caps so test harnesses terminate; under a real budget the cap is
/// what stops it, and that containment is the point.
#[derive(Debug, Clone, Copy, Default)]
pub struct NonTerminatingPass;

/// Self-cap for unbudgeted invocations: large enough to dwarf any real
/// pass's iteration count, small enough to finish in a test run.
const NONTERMINATING_SELF_CAP: u64 = 1_000_000;

impl Pass for NonTerminatingPass {
    fn name(&self) -> &'static str {
        "nonterminating"
    }

    fn run(&self, _f: &mut Function) -> bool {
        for spin in 0..NONTERMINATING_SELF_CAP {
            std::hint::black_box(spin);
        }
        false
    }

    fn run_budgeted(
        &self,
        f: &mut Function,
        _cache: &mut AnalysisCache,
        budget: &Budget,
    ) -> Result<bool, BudgetExceeded> {
        if budget.max_iters.is_none() && budget.deadline.is_none() {
            return Ok(self.run(f));
        }
        let mut meter = budget.start(f);
        loop {
            meter.tick(f)?;
        }
    }
}

/// A pass with unbounded code growth: each round appends another batch of
/// (valid, dead) constant materializations, so the function's static size
/// races past any ratio of its entry size.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadraticGrowthPass;

/// Self-cap for unbudgeted invocations, in static operations.
const GROWTH_SELF_CAP_OPS: usize = 1 << 16;

impl QuadraticGrowthPass {
    /// Append one round of growth: as many dead `loadi`s as the entry
    /// block currently holds instructions (at least 16), keeping the IR
    /// perfectly lint-clean — the damage is *size*, nothing else.
    fn grow_round(f: &mut Function) {
        let batch = f.blocks[0].insts.len().max(16);
        for _ in 0..batch {
            let dst = f.new_reg(Ty::Int);
            f.blocks[0].insts.push(Inst::LoadI { dst, value: Const::Int(0) });
        }
    }
}

impl Pass for QuadraticGrowthPass {
    fn name(&self) -> &'static str {
        "quadratic-growth"
    }

    fn run(&self, f: &mut Function) -> bool {
        if f.blocks.is_empty() {
            return false;
        }
        while f.static_op_count() < GROWTH_SELF_CAP_OPS {
            Self::grow_round(f);
        }
        true
    }

    fn run_budgeted(
        &self,
        f: &mut Function,
        _cache: &mut AnalysisCache,
        budget: &Budget,
    ) -> Result<bool, BudgetExceeded> {
        if f.blocks.is_empty() {
            return Ok(false);
        }
        if !budget.is_limited() {
            return Ok(self.run(f));
        }
        let mut meter = budget.start(f);
        loop {
            meter.tick(f)?;
            Self::grow_round(f);
            // A budget limited only in wall-clock could let growth run far
            // past the self-cap; hold the line there too.
            if f.static_op_count() >= GROWTH_SELF_CAP_OPS {
                return Ok(true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre::BudgetKind;
    use epre_frontend::{compile, NamingMode};

    const SRC: &str = "function foo(y, z)\n\
                       integer y, z, s, i\n\
                       begin\n\
                       s = 0\n\
                       do i = 1, 10\n\
                         s = s + y * z\n\
                       enddo\n\
                       return s\nend\n";

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let (m1, mu1) = mutate_module(&m, &mut SplitMix64::new(42)).unwrap();
        let (m2, mu2) = mutate_module(&m, &mut SplitMix64::new(42)).unwrap();
        assert_eq!(mu1.kind, mu2.kind);
        assert_eq!(format!("{m1}"), format!("{m2}"));
    }

    #[test]
    fn mutations_actually_change_the_module() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let mut changed = 0;
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            let (mutant, _) = mutate_module(&m, &mut rng).unwrap();
            if format!("{mutant}") != format!("{m}") {
                changed += 1;
            }
        }
        // SwapOperands on a commutative op can be textually identical-in-
        // effect but still textually different; require most to differ.
        assert!(changed >= 45, "only {changed}/50 mutants differ");
    }

    #[test]
    fn every_kind_applies_somewhere() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let mut seen = std::collections::HashSet::new();
        let mut rng = SplitMix64::new(3);
        for _ in 0..400 {
            if let Some((_, mu)) = mutate_module(&m, &mut rng) {
                seen.insert(mu.kind.label());
            }
        }
        // CorruptPhi cannot apply (frontend output has no φs); everything
        // else must occur.
        for kind in MutationKind::ALL {
            if kind == MutationKind::CorruptPhi {
                continue;
            }
            assert!(seen.contains(kind.label()), "{} never applied", kind.label());
        }
    }

    #[test]
    fn nonterminating_pass_is_contained_by_the_iteration_cap() {
        use crate::sandbox::{run_passes_governed, FaultPolicy};
        use epre_lint::LintOptions;

        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let mut f = m.functions[0].clone();
        let before = format!("{f}");
        let passes = vec![PassFaultModel::NonTerminating.build()];
        let rep = run_passes_governed(
            &mut f,
            &passes,
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
            &Budget { max_iters: Some(10_000), ..Budget::UNLIMITED },
            None,
        )
        .unwrap();
        assert_eq!(rep.faults.len(), 1, "{:?}", rep.faults);
        assert_eq!(rep.retries, 0, "best-effort records the fault and moves on");
        for ft in &rep.faults {
            assert_eq!(ft.kind_label(), "budget", "{ft:?}");
            match &ft.kind {
                epre::fault::FaultKind::Budget(b) => assert_eq!(b.kind, BudgetKind::Iterations),
                other => panic!("expected budget fault, got {other:?}"),
            }
        }
        assert_eq!(format!("{f}"), before, "rollback must restore the input");
    }

    #[test]
    fn quadratic_growth_pass_is_contained_by_the_growth_cap() {
        use crate::sandbox::{run_passes_governed, FaultPolicy};
        use epre_lint::LintOptions;

        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let mut f = m.functions[0].clone();
        let before = format!("{f}");
        let passes = vec![PassFaultModel::QuadraticGrowth.build()];
        let rep = run_passes_governed(
            &mut f,
            &passes,
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
            &Budget { max_growth: Some(4.0), ..Budget::UNLIMITED },
            None,
        )
        .unwrap();
        assert_eq!(rep.faults.len(), 1, "{:?}", rep.faults);
        for ft in &rep.faults {
            match &ft.kind {
                epre::fault::FaultKind::Budget(b) => assert_eq!(b.kind, BudgetKind::Growth),
                other => panic!("expected budget fault, got {other:?}"),
            }
        }
        assert_eq!(format!("{f}"), before, "rollback must restore the input");
    }

    #[test]
    fn models_self_cap_without_any_budget() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        for model in PassFaultModel::ALL {
            let mut f = m.functions[0].clone();
            let pass = model.build();
            pass.run(&mut f); // must terminate on its own
            assert_eq!(pass.name(), model.pass_name());
        }
    }
}
