//! The fuzz campaign: seeded fault injection driving the full containment
//! stack, with a machine-checkable "zero uncontained faults" verdict.
//!
//! Phase 1 mutates a base module ([`crate::inject`]), then runs the
//! hardened pipeline ([`crate::harden`]) over the mutant at every
//! configured [`OptLevel`]. A run is *contained* when the emitted module
//! is still runnable and still agrees with the mutant (the harness's
//! reference) on the oracle's test vectors — i.e. whatever the injected
//! fault provoked, the stack either rolled it back, caught it, or proved
//! it harmless.
//!
//! Phase 2 attacks from the other axis: it splices an adversarial
//! [`PassFaultModel`] — a pass that never converges, or one whose output
//! grows without bound — into the real pipeline at a seeded position and
//! demands that the resource [`Budget`] (and nothing else: these models
//! neither panic nor emit invalid ILOC) stops it, rolls the function
//! back, and leaves a budget-kind fault on the record. Anything else is
//! recorded as uncontained and fails the campaign.

use epre::fault::FaultKind;
use epre::{Budget, OptLevel, Optimizer};
use epre_ir::Module;
use epre_lint::{lint_function, LintOptions};

use crate::breaker::CircuitBreaker;
use crate::harden::Harness;
use crate::inject::{mutate_module, PassFaultModel};
use crate::oracle::{compare_modules, OracleConfig};
use crate::rng::SplitMix64;
use crate::sandbox::{catch_quiet, run_module_governed, FaultPolicy};

/// Every optimization level, the paper's four plus the LVN extension.
pub const ALL_LEVELS: [OptLevel; 5] = [
    OptLevel::Baseline,
    OptLevel::Partial,
    OptLevel::Reassociation,
    OptLevel::Distribution,
    OptLevel::DistributionLvn,
];

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; fixes the entire campaign.
    pub seed: u64,
    /// Number of mutants generated.
    pub iters: usize,
    /// Fuel per oracle execution.
    pub fuel: u64,
    /// Levels each mutant is optimized at.
    pub levels: Vec<OptLevel>,
    /// Resource budget governing phase 2 (and proving containment of the
    /// adversarial pass models).
    pub budget: Budget,
    /// Phase-2 iterations: each splices one seeded [`PassFaultModel`]
    /// into the pipeline at every configured level.
    pub pass_fault_iters: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xF00D,
            iters: 200,
            fuel: 200_000,
            levels: ALL_LEVELS.to_vec(),
            budget: Budget::governed(),
            pass_fault_iters: 10,
        }
    }
}

/// How one (mutant, level) run was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Containment {
    /// A pass faulted (panic or new lint error) and was rolled back by
    /// the sandbox.
    RolledBack,
    /// The oracle saw divergence and the function was rolled back to the
    /// mutant's version.
    OracleCaught,
    /// The mutant arrived with lint errors: the damage was visible to the
    /// ingress lint before any pass ran.
    IngressLint,
    /// The mutation changed nothing observable; the pipeline ran clean.
    Benign,
}

impl Containment {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Containment::RolledBack => "rolled-back",
            Containment::OracleCaught => "oracle-caught",
            Containment::IngressLint => "ingress-lint",
            Containment::Benign => "benign",
        }
    }
}

/// The campaign's tally.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Mutants generated.
    pub mutants: usize,
    /// (mutant, level) runs performed.
    pub runs: usize,
    /// Runs where a pass fault was contained by sandbox rollback.
    pub rolled_back: usize,
    /// Runs where the oracle caught divergence and rolled the function back.
    pub oracle_caught: usize,
    /// Runs where the mutant was already lint-broken on arrival (and the
    /// pipeline still emitted a runnable module).
    pub ingress_lint: usize,
    /// Runs where the mutation was harmless.
    pub benign: usize,
    /// Phase-2 (model, level) runs performed.
    pub pass_fault_runs: usize,
    /// Phase-2 runs where the budget stopped the adversarial pass and the
    /// rollback held.
    pub budget_contained: usize,
    /// Descriptions of uncontained faults. Must be empty for the campaign
    /// to pass.
    pub uncontained: Vec<String>,
}

impl CampaignReport {
    /// Did the containment stack hold everywhere?
    pub fn is_contained(&self) -> bool {
        self.uncontained.is_empty()
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fuzz campaign: {} mutants, {} runs", self.mutants, self.runs)?;
        writeln!(f, "  rolled back (sandbox):   {}", self.rolled_back)?;
        writeln!(f, "  oracle caught:           {}", self.oracle_caught)?;
        writeln!(f, "  ingress lint:            {}", self.ingress_lint)?;
        writeln!(f, "  benign:                  {}", self.benign)?;
        writeln!(f, "  pass-fault runs:         {}", self.pass_fault_runs)?;
        writeln!(f, "  budget contained:        {}", self.budget_contained)?;
        if self.uncontained.is_empty() {
            write!(f, "  uncontained:             0 — containment held")
        } else {
            writeln!(f, "  UNCONTAINED:             {}", self.uncontained.len())?;
            for u in &self.uncontained {
                writeln!(f, "    {u}")?;
            }
            write!(f, "containment FAILED")
        }
    }
}

/// Does any function of `m` carry error-severity invariant violations?
fn has_lint_errors(m: &Module) -> bool {
    let opts = LintOptions::invariants_only();
    m.functions.iter().any(|f| lint_function(f, &opts).has_errors())
}

/// Run the campaign over `bases` under `cfg`.
///
/// Deterministic: equal `(bases, cfg)` produce equal reports. The
/// hardened pipeline runs under [`FaultPolicy::BestEffort`] — the policy
/// whose containment the campaign is designed to prove.
pub fn run_campaign(bases: &[Module], cfg: &CampaignConfig) -> CampaignReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut report = CampaignReport::default();
    if bases.is_empty() {
        return report;
    }
    let oracle = OracleConfig { fuel: cfg.fuel, seed: cfg.seed, ..OracleConfig::default() };
    for _ in 0..cfg.iters {
        let base = &bases[rng.below(bases.len())];
        let Some((mutant, mutation)) = mutate_module(base, &mut rng) else {
            continue;
        };
        report.mutants += 1;
        let ingress_broken = has_lint_errors(&mutant);
        for &level in &cfg.levels {
            report.runs += 1;
            let harness =
                Harness::new(level, FaultPolicy::BestEffort).with_oracle(oracle);
            // The whole hardened run is itself guarded: a panic escaping
            // the harness would be the worst possible containment failure.
            let outcome = catch_quiet(|| harness.optimize(&mutant));
            let out = match outcome {
                Err(panic_msg) => {
                    report.uncontained.push(format!(
                        "[{}] {}: panic escaped the harness: {panic_msg}",
                        level.label(),
                        mutation
                    ));
                    continue;
                }
                // BestEffort never returns Err.
                Ok(Err(fault)) => {
                    report.uncontained.push(format!(
                        "[{}] {}: unexpected fail-fast fault: {fault}",
                        level.label(),
                        mutation
                    ));
                    continue;
                }
                Ok(Ok(out)) => out,
            };
            // Containment proof, part 1: the emitted module must still
            // agree with the mutant — the harness's reference — on the
            // oracle's vectors (rollback restored anything that diverged).
            let residual =
                catch_quiet(|| compare_modules(&mutant, &out.module, &oracle));
            match residual {
                Err(panic_msg) => {
                    report.uncontained.push(format!(
                        "[{}] {}: interpreter panicked on emitted module: {panic_msg}",
                        level.label(),
                        mutation
                    ));
                    continue;
                }
                Ok(divs) if !divs.is_empty() => {
                    report.uncontained.push(format!(
                        "[{}] {}: emitted module still diverges: {}",
                        level.label(),
                        mutation,
                        divs[0]
                    ));
                    continue;
                }
                Ok(_) => {}
            }
            // Containment proof, part 2: the emitted module must lint no
            // worse than the mutant itself.
            if !ingress_broken && has_lint_errors(&out.module) {
                report.uncontained.push(format!(
                    "[{}] {}: pipeline introduced lint errors into a clean mutant",
                    level.label(),
                    mutation
                ));
                continue;
            }
            // Classify the contained run.
            let class = if !out.faults.is_empty() {
                Containment::RolledBack
            } else if !out.divergences.is_empty() {
                Containment::OracleCaught
            } else if ingress_broken {
                Containment::IngressLint
            } else {
                Containment::Benign
            };
            match class {
                Containment::RolledBack => report.rolled_back += 1,
                Containment::OracleCaught => report.oracle_caught += 1,
                Containment::IngressLint => report.ingress_lint += 1,
                Containment::Benign => report.benign += 1,
            }
        }
    }
    // Phase 2: adversarial pass models. Splice one misbehaving pass into
    // the real pipeline at a seeded slot and run it at every level; only
    // the budget can stop these, so only a budget-kind fault counts as
    // contained.
    let opts = LintOptions::invariants_only();
    for _ in 0..cfg.pass_fault_iters {
        if cfg.levels.is_empty() {
            break;
        }
        let base = &bases[rng.below(bases.len())];
        let model = PassFaultModel::ALL[rng.below(PassFaultModel::ALL.len())];
        let slot_seed = rng.next_u64() as usize;
        for &level in &cfg.levels {
            report.pass_fault_runs += 1;
            let pos = slot_seed % (Optimizer::new(level).passes().len() + 1);
            let tag =
                format!("[{}] injected `{}` at slot {pos}", level.label(), model.pass_name());
            let passes_for = move || {
                let mut ps = Optimizer::new(level).passes();
                let at = pos.min(ps.len());
                ps.insert(at, model.build());
                ps
            };
            let outcome = catch_quiet(|| {
                run_module_governed(
                    base,
                    &passes_for,
                    FaultPolicy::BestEffort,
                    &opts,
                    &cfg.budget,
                    CircuitBreaker::DEFAULT_THRESHOLD,
                    1,
                )
            });
            let (out, rep) = match outcome {
                Err(panic_msg) => {
                    report
                        .uncontained
                        .push(format!("{tag}: panic escaped the governed run: {panic_msg}"));
                    continue;
                }
                Ok(Err(fault)) => {
                    report
                        .uncontained
                        .push(format!("{tag}: unexpected fail-fast fault: {fault}"));
                    continue;
                }
                Ok(Ok(pair)) => pair,
            };
            let model_faults: Vec<_> =
                rep.faults.iter().filter(|ft| ft.pass == model.pass_name()).collect();
            if model_faults.is_empty() {
                report.uncontained.push(format!(
                    "{tag}: escaped the budget — no fault recorded for the model pass"
                ));
                continue;
            }
            if let Some(ft) =
                model_faults.iter().find(|ft| !matches!(ft.kind, FaultKind::Budget(_)))
            {
                report.uncontained.push(format!(
                    "{tag}: stopped by the wrong layer ({}) — the budget was blind to it",
                    ft.kind_label()
                ));
                continue;
            }
            // Residual checks, identical in spirit to phase 1: the emitted
            // module must still agree with the base and lint clean.
            match catch_quiet(|| compare_modules(base, &out, &oracle)) {
                Err(panic_msg) => {
                    report.uncontained.push(format!(
                        "{tag}: interpreter panicked on emitted module: {panic_msg}"
                    ));
                    continue;
                }
                Ok(divs) if !divs.is_empty() => {
                    report.uncontained.push(format!(
                        "{tag}: emitted module diverges after rollback: {}",
                        divs[0]
                    ));
                    continue;
                }
                Ok(_) => {}
            }
            if has_lint_errors(&out) {
                report
                    .uncontained
                    .push(format!("{tag}: pipeline emitted lint errors after rollback"));
                continue;
            }
            report.budget_contained += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_frontend::{compile, NamingMode};

    fn bases() -> Vec<Module> {
        let srcs = [
            "function foo(y, z)\n\
             integer y, z, s, i\n\
             begin\n\
             s = 0\n\
             do i = 1, 8\n\
               s = s + y * z + i\n\
             enddo\n\
             return s\nend\n",
            "function bar(a, b)\n\
             real a, b, x\n\
             begin\n\
             if a < b then\n\
               x = a * 2 + b\n\
             else\n\
               x = b * 2 + a\n\
             endif\n\
             return x\nend\n",
        ];
        srcs.iter().map(|s| compile(s, NamingMode::Disciplined).unwrap()).collect()
    }

    #[test]
    fn small_campaign_is_contained_and_deterministic() {
        let bases = bases();
        let cfg =
            CampaignConfig { iters: 20, pass_fault_iters: 2, ..CampaignConfig::default() };
        let r1 = run_campaign(&bases, &cfg);
        assert!(r1.is_contained(), "{r1}");
        assert_eq!(r1.mutants, 20);
        assert_eq!(r1.runs, 20 * ALL_LEVELS.len());
        assert_eq!(r1.pass_fault_runs, 2 * ALL_LEVELS.len());
        assert_eq!(r1.budget_contained, r1.pass_fault_runs);
        let r2 = run_campaign(&bases, &cfg);
        assert_eq!(r1.rolled_back, r2.rolled_back);
        assert_eq!(r1.oracle_caught, r2.oracle_caught);
        assert_eq!(r1.ingress_lint, r2.ingress_lint);
        assert_eq!(r1.benign, r2.benign);
        assert_eq!(r1.budget_contained, r2.budget_contained);
    }

    #[test]
    fn campaign_actually_exercises_the_stack() {
        let bases = bases();
        let cfg =
            CampaignConfig { iters: 40, pass_fault_iters: 2, ..CampaignConfig::default() };
        let r = run_campaign(&bases, &cfg);
        assert!(r.is_contained(), "{r}");
        // A campaign where nothing was ever caught isn't testing anything.
        assert!(
            r.ingress_lint + r.oracle_caught + r.rolled_back > 0,
            "no fault was ever caught: {r}"
        );
        assert!(r.budget_contained > 0, "phase 2 never ran: {r}");
    }
}
