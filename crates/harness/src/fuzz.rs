//! The fuzz campaign: seeded fault injection driving the full containment
//! stack, with a machine-checkable "zero uncontained faults" verdict.
//!
//! Every iteration mutates a base module ([`crate::inject`]), then runs
//! the hardened pipeline ([`crate::harden`]) over the mutant at every
//! configured [`OptLevel`]. A run is *contained* when the emitted module
//! is still runnable and still agrees with the mutant (the harness's
//! reference) on the oracle's test vectors — i.e. whatever the injected
//! fault provoked, the stack either rolled it back, caught it, or proved
//! it harmless. Anything else is recorded as uncontained and fails the
//! campaign.

use epre::OptLevel;
use epre_ir::Module;
use epre_lint::{lint_function, LintOptions};

use crate::harden::Harness;
use crate::inject::mutate_module;
use crate::oracle::{compare_modules, OracleConfig};
use crate::rng::SplitMix64;
use crate::sandbox::{catch_quiet, FaultPolicy};

/// Every optimization level, the paper's four plus the LVN extension.
pub const ALL_LEVELS: [OptLevel; 5] = [
    OptLevel::Baseline,
    OptLevel::Partial,
    OptLevel::Reassociation,
    OptLevel::Distribution,
    OptLevel::DistributionLvn,
];

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; fixes the entire campaign.
    pub seed: u64,
    /// Number of mutants generated.
    pub iters: usize,
    /// Fuel per oracle execution.
    pub fuel: u64,
    /// Levels each mutant is optimized at.
    pub levels: Vec<OptLevel>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            seed: 0xF00D,
            iters: 200,
            fuel: 200_000,
            levels: ALL_LEVELS.to_vec(),
        }
    }
}

/// How one (mutant, level) run was handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Containment {
    /// A pass faulted (panic or new lint error) and was rolled back by
    /// the sandbox.
    RolledBack,
    /// The oracle saw divergence and the function was rolled back to the
    /// mutant's version.
    OracleCaught,
    /// The mutant arrived with lint errors: the damage was visible to the
    /// ingress lint before any pass ran.
    IngressLint,
    /// The mutation changed nothing observable; the pipeline ran clean.
    Benign,
}

impl Containment {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Containment::RolledBack => "rolled-back",
            Containment::OracleCaught => "oracle-caught",
            Containment::IngressLint => "ingress-lint",
            Containment::Benign => "benign",
        }
    }
}

/// The campaign's tally.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Mutants generated.
    pub mutants: usize,
    /// (mutant, level) runs performed.
    pub runs: usize,
    /// Runs where a pass fault was contained by sandbox rollback.
    pub rolled_back: usize,
    /// Runs where the oracle caught divergence and rolled the function back.
    pub oracle_caught: usize,
    /// Runs where the mutant was already lint-broken on arrival (and the
    /// pipeline still emitted a runnable module).
    pub ingress_lint: usize,
    /// Runs where the mutation was harmless.
    pub benign: usize,
    /// Descriptions of uncontained faults. Must be empty for the campaign
    /// to pass.
    pub uncontained: Vec<String>,
}

impl CampaignReport {
    /// Did the containment stack hold everywhere?
    pub fn is_contained(&self) -> bool {
        self.uncontained.is_empty()
    }
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fuzz campaign: {} mutants, {} runs", self.mutants, self.runs)?;
        writeln!(f, "  rolled back (sandbox):   {}", self.rolled_back)?;
        writeln!(f, "  oracle caught:           {}", self.oracle_caught)?;
        writeln!(f, "  ingress lint:            {}", self.ingress_lint)?;
        writeln!(f, "  benign:                  {}", self.benign)?;
        if self.uncontained.is_empty() {
            write!(f, "  uncontained:             0 — containment held")
        } else {
            writeln!(f, "  UNCONTAINED:             {}", self.uncontained.len())?;
            for u in &self.uncontained {
                writeln!(f, "    {u}")?;
            }
            write!(f, "containment FAILED")
        }
    }
}

/// Does any function of `m` carry error-severity invariant violations?
fn has_lint_errors(m: &Module) -> bool {
    let opts = LintOptions::invariants_only();
    m.functions.iter().any(|f| lint_function(f, &opts).has_errors())
}

/// Run the campaign over `bases` under `cfg`.
///
/// Deterministic: equal `(bases, cfg)` produce equal reports. The
/// hardened pipeline runs under [`FaultPolicy::BestEffort`] — the policy
/// whose containment the campaign is designed to prove.
pub fn run_campaign(bases: &[Module], cfg: &CampaignConfig) -> CampaignReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut report = CampaignReport::default();
    if bases.is_empty() {
        return report;
    }
    let oracle = OracleConfig { fuel: cfg.fuel, seed: cfg.seed, ..OracleConfig::default() };
    for _ in 0..cfg.iters {
        let base = &bases[rng.below(bases.len())];
        let Some((mutant, mutation)) = mutate_module(base, &mut rng) else {
            continue;
        };
        report.mutants += 1;
        let ingress_broken = has_lint_errors(&mutant);
        for &level in &cfg.levels {
            report.runs += 1;
            let harness =
                Harness::new(level, FaultPolicy::BestEffort).with_oracle(oracle);
            // The whole hardened run is itself guarded: a panic escaping
            // the harness would be the worst possible containment failure.
            let outcome = catch_quiet(|| harness.optimize(&mutant));
            let out = match outcome {
                Err(panic_msg) => {
                    report.uncontained.push(format!(
                        "[{}] {}: panic escaped the harness: {panic_msg}",
                        level.label(),
                        mutation
                    ));
                    continue;
                }
                // BestEffort never returns Err.
                Ok(Err(fault)) => {
                    report.uncontained.push(format!(
                        "[{}] {}: unexpected fail-fast fault: {fault}",
                        level.label(),
                        mutation
                    ));
                    continue;
                }
                Ok(Ok(out)) => out,
            };
            // Containment proof, part 1: the emitted module must still
            // agree with the mutant — the harness's reference — on the
            // oracle's vectors (rollback restored anything that diverged).
            let residual =
                catch_quiet(|| compare_modules(&mutant, &out.module, &oracle));
            match residual {
                Err(panic_msg) => {
                    report.uncontained.push(format!(
                        "[{}] {}: interpreter panicked on emitted module: {panic_msg}",
                        level.label(),
                        mutation
                    ));
                    continue;
                }
                Ok(divs) if !divs.is_empty() => {
                    report.uncontained.push(format!(
                        "[{}] {}: emitted module still diverges: {}",
                        level.label(),
                        mutation,
                        divs[0]
                    ));
                    continue;
                }
                Ok(_) => {}
            }
            // Containment proof, part 2: the emitted module must lint no
            // worse than the mutant itself.
            if !ingress_broken && has_lint_errors(&out.module) {
                report.uncontained.push(format!(
                    "[{}] {}: pipeline introduced lint errors into a clean mutant",
                    level.label(),
                    mutation
                ));
                continue;
            }
            // Classify the contained run.
            let class = if !out.faults.is_empty() {
                Containment::RolledBack
            } else if !out.divergences.is_empty() {
                Containment::OracleCaught
            } else if ingress_broken {
                Containment::IngressLint
            } else {
                Containment::Benign
            };
            match class {
                Containment::RolledBack => report.rolled_back += 1,
                Containment::OracleCaught => report.oracle_caught += 1,
                Containment::IngressLint => report.ingress_lint += 1,
                Containment::Benign => report.benign += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_frontend::{compile, NamingMode};

    fn bases() -> Vec<Module> {
        let srcs = [
            "function foo(y, z)\n\
             integer y, z, s, i\n\
             begin\n\
             s = 0\n\
             do i = 1, 8\n\
               s = s + y * z + i\n\
             enddo\n\
             return s\nend\n",
            "function bar(a, b)\n\
             real a, b, x\n\
             begin\n\
             if a < b then\n\
               x = a * 2 + b\n\
             else\n\
               x = b * 2 + a\n\
             endif\n\
             return x\nend\n",
        ];
        srcs.iter().map(|s| compile(s, NamingMode::Disciplined).unwrap()).collect()
    }

    #[test]
    fn small_campaign_is_contained_and_deterministic() {
        let bases = bases();
        let cfg = CampaignConfig { iters: 20, ..CampaignConfig::default() };
        let r1 = run_campaign(&bases, &cfg);
        assert!(r1.is_contained(), "{r1}");
        assert_eq!(r1.mutants, 20);
        assert_eq!(r1.runs, 20 * ALL_LEVELS.len());
        let r2 = run_campaign(&bases, &cfg);
        assert_eq!(r1.rolled_back, r2.rolled_back);
        assert_eq!(r1.oracle_caught, r2.oracle_caught);
        assert_eq!(r1.ingress_lint, r2.ingress_lint);
        assert_eq!(r1.benign, r2.benign);
    }

    #[test]
    fn campaign_actually_exercises_the_stack() {
        let bases = bases();
        let cfg = CampaignConfig { iters: 40, ..CampaignConfig::default() };
        let r = run_campaign(&bases, &cfg);
        assert!(r.is_contained(), "{r}");
        // A campaign where nothing was ever caught isn't testing anything.
        assert!(
            r.ingress_lint + r.oracle_caught + r.rolled_back > 0,
            "no fault was ever caught: {r}"
        );
    }
}
