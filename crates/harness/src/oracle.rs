//! Differential execution oracle: run the unoptimized and optimized
//! modules on the same seeded inputs under bounded fuel and compare.
//!
//! The lint layer catches *structural* damage; the oracle catches
//! *semantic* damage — a module that is perfectly well-formed ILOC but
//! computes the wrong answer. Divergence in either the returned value or
//! the error variant is reported as a [`Divergence`] (a miscompile from
//! the harness's point of view). Fuel exhaustion on either side is
//! deliberately inconclusive: optimized code retires fewer operations, so
//! under a shared budget the two sides may exhaust at different points of
//! the same (possibly infinite) computation. Inconclusive comparisons are
//! *counted*, never silently dropped — an oracle whose every vector runs
//! out of fuel has proven nothing, and [`OracleOutcome::inconclusive`]
//! makes that visible to the harness and the CLI.

use epre_interp::{ExecError, Interpreter, Value};
use epre_ir::{Module, Ty};

use crate::rng::{fingerprint64, SplitMix64};

/// Relative tolerance for float comparison. Reassociation and distribution
/// legitimately reorder float arithmetic, so bit-equality is the wrong
/// question; answers must agree to within rounding noise.
pub const FLOAT_TOLERANCE: f64 = 1e-9;

/// Configuration for a differential run.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Fuel budget per execution. Kept modest: the oracle's job is to
    /// compare many runs cheaply, not to finish long-running programs.
    pub fuel: u64,
    /// Seed for argument generation. Equal seeds generate equal vectors.
    pub seed: u64,
    /// Number of argument vectors tried per function.
    pub vectors: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig { fuel: 200_000, seed: 0xE9_7E, vectors: 3 }
    }
}

/// One observed behaviour of one execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Observed {
    /// Ran to completion with this return value.
    Returned(Option<Value>),
    /// Failed with this error.
    Failed(ExecError),
}

impl std::fmt::Display for Observed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Observed::Returned(Some(v)) => write!(f, "returned {v}"),
            Observed::Returned(None) => write!(f, "returned (void)"),
            Observed::Failed(e) => write!(f, "failed: {e}"),
        }
    }
}

/// A behavioural difference between reference and candidate modules —
/// the oracle's report of a miscompile.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The function whose behaviour differs.
    pub function: String,
    /// The argument vector that exposes the difference.
    pub args: Vec<Value>,
    /// What the reference (unoptimized) module did.
    pub reference: Observed,
    /// What the candidate (optimized) module did.
    pub candidate: Observed,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "`{}`(", self.function)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, "): reference {} but candidate {}", self.reference, self.candidate)
    }
}

/// Whether two optional return values agree, with relative float
/// tolerance.
fn values_agree(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(Value::Int(x)), Some(Value::Int(y))) => x == y,
        (Some(Value::Float(x)), Some(Value::Float(y))) => {
            if x == y || (x.is_nan() && y.is_nan()) {
                return true;
            }
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= FLOAT_TOLERANCE * scale
        }
        _ => false,
    }
}

/// The oracle's three-way verdict on one comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agreement {
    /// Both sides observably computed the same thing.
    Agree,
    /// Fuel ran out on at least one side: the vector proved nothing.
    Inconclusive,
    /// A genuine behavioural difference — a miscompile.
    Diverge,
}

/// Classify one reference/candidate behaviour pair.
///
/// Fuel exhaustion on *either* side makes the comparison
/// [`Agreement::Inconclusive`] — never a miscompile, but not evidence of
/// agreement either; callers tally it separately.
pub fn classify(reference: &Observed, candidate: &Observed) -> Agreement {
    if matches!(reference, Observed::Failed(ExecError::OutOfFuel { .. }))
        || matches!(candidate, Observed::Failed(ExecError::OutOfFuel { .. }))
    {
        return Agreement::Inconclusive;
    }
    let agree = match (reference, candidate) {
        (Observed::Returned(a), Observed::Returned(b)) => values_agree(a, b),
        (Observed::Failed(a), Observed::Failed(b)) => a.same_variant(b),
        _ => false,
    };
    if agree {
        Agreement::Agree
    } else {
        Agreement::Diverge
    }
}

/// Whether two behaviours count as equivalent for the oracle
/// (inconclusive counts as "not divergent"). See [`classify`] for the
/// three-way verdict.
pub fn behaviors_agree(reference: &Observed, candidate: &Observed) -> bool {
    classify(reference, candidate) != Agreement::Diverge
}

/// Seeded argument vector for a parameter list. Small magnitudes keep
/// loop trip counts (and thus fuel consumption) reasonable while still
/// exercising sign and zero cases.
fn gen_args(rng: &mut SplitMix64, param_tys: &[Ty]) -> Vec<Value> {
    param_tys
        .iter()
        .map(|ty| match ty {
            Ty::Int => Value::Int(rng.range_i64(-4, 12)),
            Ty::Float => Value::Float(rng.range_i64(-40, 120) as f64 / 10.0),
        })
        .collect()
}

/// Execute `module::name(args)` once under `fuel`.
pub fn observe(module: &Module, name: &str, args: &[Value], fuel: u64) -> Observed {
    let mut interp = Interpreter::new(module).with_fuel(fuel);
    match interp.run(name, args) {
        Ok(v) => Observed::Returned(v),
        Err(e) => Observed::Failed(e),
    }
}

/// The full tally of one differential comparison between two modules.
#[derive(Debug, Clone, Default)]
pub struct OracleOutcome {
    /// Every observed divergence (miscompiles).
    pub divergences: Vec<Divergence>,
    /// Comparisons where fuel ran out on at least one side — proved
    /// nothing, counted rather than silently dropped.
    pub inconclusive: usize,
    /// Total (function, vector) comparisons performed.
    pub comparisons: usize,
}

/// Differentially execute every function of `reference` against
/// `candidate` on seeded inputs, returning divergences plus the
/// inconclusive (out-of-fuel) tally.
///
/// Functions present in only one module are skipped (the pass pipeline
/// never adds or removes functions; the fault injector can, and such
/// damage is the lint layer's to catch).
pub fn compare_modules_detailed(
    reference: &Module,
    candidate: &Module,
    cfg: &OracleConfig,
) -> OracleOutcome {
    let mut outcome = OracleOutcome::default();
    for f in &reference.functions {
        if candidate.function(&f.name).is_none() {
            continue;
        }
        // Per-function generator: a divergence report for function `g`
        // stays stable when unrelated functions are added or removed.
        let mut rng = SplitMix64::new(cfg.seed ^ fingerprint64(&f.name));
        let param_tys: Vec<Ty> = f.params.iter().map(|&r| f.ty_of(r)).collect();
        for _ in 0..cfg.vectors {
            let args = gen_args(&mut rng, &param_tys);
            let obs_ref = observe(reference, &f.name, &args, cfg.fuel);
            let obs_cand = observe(candidate, &f.name, &args, cfg.fuel);
            outcome.comparisons += 1;
            match classify(&obs_ref, &obs_cand) {
                Agreement::Agree => {}
                Agreement::Inconclusive => outcome.inconclusive += 1,
                Agreement::Diverge => outcome.divergences.push(Divergence {
                    function: f.name.clone(),
                    args,
                    reference: obs_ref,
                    candidate: obs_cand,
                }),
            }
        }
    }
    outcome
}

/// [`compare_modules_detailed`] reduced to the divergence list.
pub fn compare_modules(reference: &Module, candidate: &Module, cfg: &OracleConfig) -> Vec<Divergence> {
    compare_modules_detailed(reference, candidate, cfg).divergences
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre::{OptLevel, Optimizer};
    use epre_frontend::{compile, NamingMode};

    const SRC: &str = "function foo(y, z)\n\
                       real y, z, s, x\n\
                       integer i\n\
                       begin\n\
                       s = 0\n\
                       x = y + z\n\
                       do i = x, 100\n\
                         s = i + s + x\n\
                       enddo\n\
                       return s\nend\n";

    #[test]
    fn optimized_module_agrees_with_reference() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        for level in [OptLevel::Baseline, OptLevel::Distribution] {
            let opt = Optimizer::new(level).optimize(&m);
            let d = compare_modules(&m, &opt, &OracleConfig::default());
            assert!(d.is_empty(), "{level:?}: {:?}", d);
        }
    }

    #[test]
    fn wrong_constant_is_caught() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let mut bad = m.clone();
        // Corrupt a constant: turn some `loadi` payload into a different one.
        let f = &mut bad.functions[0];
        let mut corrupted = false;
        for blk in &mut f.blocks {
            for inst in &mut blk.insts {
                if let epre_ir::Inst::LoadI { value: epre_ir::Const::Int(v), .. } = inst {
                    *v += 7;
                    corrupted = true;
                    break;
                }
            }
            if corrupted {
                break;
            }
        }
        assert!(corrupted, "expected an integer loadi to corrupt");
        let d = compare_modules(&m, &bad, &OracleConfig::default());
        assert!(!d.is_empty(), "oracle missed a corrupted constant");
        assert_eq!(d[0].function, "foo");
    }

    #[test]
    fn fuel_exhaustion_is_inconclusive() {
        let a = Observed::Failed(ExecError::OutOfFuel { budget: 10 });
        let b = Observed::Returned(Some(Value::Int(3)));
        assert!(behaviors_agree(&a, &b));
        assert!(behaviors_agree(&b, &a));
        assert_eq!(classify(&a, &b), Agreement::Inconclusive);
        assert_eq!(classify(&b, &a), Agreement::Inconclusive);
    }

    #[test]
    fn out_of_fuel_comparisons_are_counted_not_dropped() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        // Fuel 2 starves every run of this loopy function on both sides.
        let cfg = OracleConfig { fuel: 2, ..OracleConfig::default() };
        let out = compare_modules_detailed(&m, &m, &cfg);
        assert!(out.divergences.is_empty());
        assert!(out.comparisons > 0);
        assert_eq!(
            out.inconclusive, out.comparisons,
            "every starved vector must be tallied inconclusive"
        );
        // With generous fuel the same comparison is fully conclusive.
        let out = compare_modules_detailed(&m, &m, &OracleConfig::default());
        assert_eq!(out.inconclusive, 0);
    }

    #[test]
    fn float_tolerance_absorbs_reassociation_noise() {
        let a = Observed::Returned(Some(Value::Float(1.0e9)));
        let b = Observed::Returned(Some(Value::Float(1.0e9 + 0.5)));
        assert!(behaviors_agree(&a, &b));
        let c = Observed::Returned(Some(Value::Float(2.0e9)));
        assert!(!behaviors_agree(&a, &c));
    }

    #[test]
    fn oracle_is_deterministic() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let mut bad = m.clone();
        if let Some(epre_ir::Inst::LoadI { value: epre_ir::Const::Int(v), .. }) =
            bad.functions[0].blocks[0].insts.first_mut()
        {
            *v += 1000;
        }
        let d1 = compare_modules(&m, &bad, &OracleConfig::default());
        let d2 = compare_modules(&m, &bad, &OracleConfig::default());
        assert_eq!(d1.len(), d2.len());
        for (a, b) in d1.iter().zip(&d2) {
            assert_eq!(a.args, b.args);
        }
    }
}
