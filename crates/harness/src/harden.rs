//! The hardened pipeline: sandboxed passes plus the differential oracle,
//! with semantic rollback — and, optionally, a watchdog-supervised worker
//! pool and a crash-tolerant write-ahead journal.
//!
//! This is the harness's top-level entry, and what `epre opt
//! --best-effort` runs. Structural damage is contained per pass by the
//! sandbox ([`crate::sandbox`]) under a resource [`Budget`]; a pass that
//! keeps faulting across functions is quarantined by the circuit breaker
//! ([`crate::breaker`]); semantic damage that survives the lint layer is
//! caught after the fact by the oracle ([`crate::oracle`]), and the
//! offending *function* is rolled back wholesale to its input form — the
//! module that comes out is always runnable and always agrees with the
//! input on the oracle's test vectors. Oracle comparisons that ran out of
//! fuel prove nothing and are tallied as
//! [`HardenedOutput::inconclusive`], never silently dropped.
//!
//! With a per-function deadline ([`Harness::with_deadline`]) the module
//! runs on the watchdog pool ([`crate::watchdog`]) instead, so even a
//! *non-cooperative* hang is rolled back. With a journal path
//! ([`Harness::optimize_journaled`]) every finished function is logged to
//! a write-ahead journal so a killed run can resume without redoing the
//! completed work — and without changing a byte of the output.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use epre::fault::PassFault;
use epre::{Budget, OptLevel, Optimizer};
use epre_ir::{parse_function, Function, Module};
use epre_lint::LintOptions;

use crate::breaker::{CircuitBreaker, Quarantine};
use crate::journal::{header_line, load_journal, JournalLoad, JournalWriter};
use crate::oracle::{compare_modules_detailed, Divergence, OracleConfig};
use crate::rng::fingerprint64;
use crate::sandbox::{
    run_passes_governed, FaultPolicy, SandboxReport, SandboxedOptimizer,
};
use crate::watchdog::{optimize_module_watchdog, WatchdogConfig};

/// The fault-tolerant optimizer: a level, a policy, an oracle, and the
/// resource-governance knobs.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Optimization level to run.
    pub level: OptLevel,
    /// What to do when a pass faults.
    pub policy: FaultPolicy,
    /// Differential-execution settings.
    pub oracle: OracleConfig,
    /// Per-pass resource budget (deadline, iteration cap, growth cap).
    pub budget: Budget,
    /// Circuit-breaker trip threshold: faults per pass, per module run.
    pub breaker_threshold: usize,
    /// When set, run the module on the watchdog pool with this
    /// per-function wall-clock deadline (set via
    /// [`Harness::with_deadline`]).
    pub function_deadline: Option<Duration>,
}

/// The result of a hardened optimization run.
#[derive(Debug, Clone)]
pub struct HardenedOutput {
    /// The optimized module. Functions whose optimized form diverged from
    /// the input under the oracle have been rolled back to their input
    /// form, so this module is always safe to run.
    pub module: Module,
    /// Contained pass faults (panics, verify failures, new lint errors,
    /// budget exhaustion, watchdog rollbacks).
    pub faults: Vec<PassFault>,
    /// Oracle divergences. Each names a function that was rolled back.
    pub divergences: Vec<Divergence>,
    /// Pass retries performed under [`FaultPolicy::RetryThenSkip`].
    pub retries: usize,
    /// Pass invocations skipped because the pass was quarantined.
    pub skipped: usize,
    /// Passes the circuit breaker quarantined during this run.
    pub quarantined: Vec<Quarantine>,
    /// Oracle comparisons that ran out of fuel on either side — proved
    /// nothing, counted rather than silently dropped.
    pub inconclusive: usize,
}

impl HardenedOutput {
    /// No faults and no divergences: the run was entirely clean.
    /// (Inconclusive oracle comparisons don't dirty a run — they are a
    /// fuel-sizing signal, not a fault.)
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty() && self.divergences.is_empty()
    }

    /// Function names that were rolled back — by the oracle, the
    /// watchdog, or a budget fault — deduplicated, in first-seen order.
    pub fn rolled_back_functions(&self) -> Vec<&str> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for d in &self.divergences {
            if seen.insert(d.function.as_str()) {
                out.push(d.function.as_str());
            }
        }
        for f in &self.faults {
            if seen.insert(f.function.as_str()) {
                out.push(f.function.as_str());
            }
        }
        out
    }
}

/// The result of a journaled run: the hardened output plus the
/// reuse accounting.
#[derive(Debug, Clone)]
pub struct JournaledOutcome {
    /// The hardened run result (identical to an unjournaled run's).
    pub output: HardenedOutput,
    /// Functions replayed from the journal without re-optimizing.
    pub reused: usize,
    /// Functions optimized (and journaled) in this run.
    pub fresh: usize,
    /// The journal carried a torn tail from a killed run; it was
    /// discarded and the file rewritten clean.
    pub resumed_torn: bool,
}

/// Why a journaled run could not complete.
#[derive(Debug)]
pub enum JournalError {
    /// Reading or writing the journal file failed.
    Io(io::Error),
    /// The journal on disk was written under a different level, policy,
    /// or budget; resuming it would mix incompatible outputs.
    HeaderMismatch {
        /// The header found in the file.
        found: String,
        /// The header this run requires.
        expected: String,
    },
    /// A pass fault surfaced under [`FaultPolicy::FailFast`].
    Fault(PassFault),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::HeaderMismatch { found, expected } => write!(
                f,
                "journal was written by an incompatible run\n  found:    {found}\n  expected: {expected}"
            ),
            JournalError::Fault(p) => write!(f, "{p}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<PassFault> for JournalError {
    fn from(p: PassFault) -> Self {
        JournalError::Fault(p)
    }
}

impl Harness {
    /// A harness at `level` with `policy`, default oracle settings, the
    /// deterministic [`Budget::governed`] caps, and the default breaker
    /// threshold.
    pub fn new(level: OptLevel, policy: FaultPolicy) -> Self {
        Harness {
            level,
            policy,
            oracle: OracleConfig::default(),
            budget: Budget::governed(),
            breaker_threshold: CircuitBreaker::DEFAULT_THRESHOLD,
            function_deadline: None,
        }
    }

    /// Replace the oracle configuration.
    pub fn with_oracle(mut self, oracle: OracleConfig) -> Self {
        self.oracle = oracle;
        self
    }

    /// Replace the per-pass resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Replace the circuit-breaker trip threshold (clamped to ≥ 1).
    pub fn with_breaker_threshold(mut self, threshold: usize) -> Self {
        self.breaker_threshold = threshold.max(1);
        self
    }

    /// Impose a wall-clock deadline: `deadline` per pass (in the budget),
    /// and eight times that per function (enforced by the watchdog pool,
    /// which also catches *non-cooperative* hangs). Routes
    /// [`Harness::optimize_jobs`] through the watchdog driver.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.budget.deadline = Some(deadline);
        self.function_deadline = Some(deadline * 8);
        self
    }

    /// Optimize `module` with full containment.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the first pass fault. Oracle
    /// divergence never errors — the affected function is rolled back
    /// and reported.
    pub fn optimize(&self, module: &Module) -> Result<HardenedOutput, PassFault> {
        self.optimize_jobs(module, 1)
    }

    /// [`Harness::optimize`] with up to `jobs` sandbox worker threads
    /// (`epre opt --best-effort --jobs N`). The oracle comparison and
    /// rollback stay serial; only the per-function pass pipelines run in
    /// parallel. Without a deadline the output is deterministic —
    /// identical to the serial run; with one
    /// ([`Harness::with_deadline`]) the watchdog pool may additionally
    /// roll back functions that overran their wall-clock allowance.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the first pass fault in module
    /// function order.
    pub fn optimize_jobs(&self, module: &Module, jobs: usize) -> Result<HardenedOutput, PassFault> {
        let (out, report) = if let Some(deadline) = self.function_deadline {
            let level = self.level;
            optimize_module_watchdog(
                module,
                Arc::new(move || Optimizer::new(level).passes()),
                self.policy,
                LintOptions::invariants_only(),
                self.budget,
                &WatchdogConfig::new(deadline, jobs),
            )?
        } else {
            SandboxedOptimizer::new(self.level, self.policy)
                .with_budget(self.budget)
                .with_breaker_threshold(self.breaker_threshold)
                .optimize_jobs(module, jobs)?
        };
        Ok(self.oracle_stage(module, out, report))
    }

    /// The shared back half of every hardened run: compare `out` against
    /// `input` with the differential oracle, roll back divergent
    /// functions to their input form, and assemble the output.
    ///
    /// Public because the serve daemon assembles candidate modules from a
    /// mix of cache replays and fresh pipelines and then needs exactly
    /// this stage: whatever the candidate's provenance, the emitted
    /// module must agree with the input on the oracle's vectors.
    pub fn finish_with_oracle(
        &self,
        input: &Module,
        out: Module,
        report: SandboxReport,
    ) -> HardenedOutput {
        self.oracle_stage(input, out, report)
    }

    fn oracle_stage(&self, input: &Module, mut out: Module, report: SandboxReport) -> HardenedOutput {
        let SandboxReport { faults, retries, skipped, quarantined } = report;
        let oracle = compare_modules_detailed(input, &out, &self.oracle);
        for d in &oracle.divergences {
            // Semantic rollback: the optimized function computes the wrong
            // answer, so ship the input version instead.
            if let Some(original) = input.function(&d.function) {
                if let Some(target) = out.function_mut(&d.function) {
                    *target = original.clone();
                }
            }
        }
        HardenedOutput {
            module: out,
            faults,
            divergences: oracle.divergences,
            retries,
            skipped,
            quarantined,
            inconclusive: oracle.inconclusive,
        }
    }

    /// The journal header binding a file to this harness configuration.
    pub fn journal_header(&self) -> String {
        header_line(self.level.label(), self.policy.label(), &self.budget)
    }

    /// [`Harness::optimize_jobs`] with a write-ahead journal at `path`:
    /// each function's post-pipeline body is appended and flushed the
    /// moment it completes, so a killed run leaves a resumable journal.
    ///
    /// With `resume`, records whose input fingerprint still matches the
    /// current module are replayed instead of re-optimized; a torn tail
    /// (the signature of a kill) is discarded and the file rewritten
    /// clean. Because records are written *before* the oracle stage and
    /// the oracle re-runs over the whole assembled module, the resumed
    /// run's output is byte-identical to an uninterrupted run's.
    ///
    /// Journal entries must be order-independent, so this path uses no
    /// circuit breaker (quarantine depends on module order) and no
    /// watchdog (an abandoned worker could journal a stale body).
    ///
    /// # Errors
    /// Journal I/O, a header mismatch on resume, or — under
    /// [`FaultPolicy::FailFast`] — the first pass fault.
    pub fn optimize_journaled(
        &self,
        module: &Module,
        jobs: usize,
        path: &Path,
        resume: bool,
    ) -> Result<JournaledOutcome, JournalError> {
        let header = self.journal_header();
        let (writer, entries, resumed_torn) = if resume {
            match load_journal(path, &header)? {
                JournalLoad::Fresh => {
                    (JournalWriter::create(path, &header)?, BTreeMap::new(), false)
                }
                JournalLoad::Mismatch { found } => {
                    return Err(JournalError::HeaderMismatch { found, expected: header })
                }
                JournalLoad::Resumed(st) => {
                    let w = JournalWriter::rewrite(path, &header, &st.entries)?;
                    (w, st.entries, st.torn_tail)
                }
            }
        } else {
            (JournalWriter::create(path, &header)?, BTreeMap::new(), false)
        };

        // Partition: a function is reused iff its journaled input
        // fingerprint matches its current text and the journaled body
        // still parses back to a function of the same name.
        let n = module.functions.len();
        let mut slots: Vec<Option<(Function, SandboxReport)>> = vec![None; n];
        let mut fresh_idx: Vec<usize> = Vec::new();
        for (i, f) in module.functions.iter().enumerate() {
            let reused = entries.get(&f.name).and_then(|e| {
                if e.input_fp != fingerprint64(&format!("{f}")) {
                    return None;
                }
                let parsed = parse_function(&e.body).ok()?;
                if parsed.name == f.name {
                    Some(parsed)
                } else {
                    None
                }
            });
            match reused {
                Some(parsed) => slots[i] = Some((parsed, SandboxReport::default())),
                None => fresh_idx.push(i),
            }
        }
        let reused = n - fresh_idx.len();

        // Optimize the fresh functions, journaling each the moment its
        // pipeline finishes. Workers share the writer; record() is one
        // locked write+flush, so a kill tears at most the final record.
        type FreshSlot = Mutex<Option<Result<(Function, SandboxReport), PassFault>>>;
        let fresh_slots: Vec<FreshSlot> = fresh_idx.iter().map(|_| Mutex::new(None)).collect();
        let io_errors: Mutex<Vec<io::Error>> = Mutex::new(Vec::new());
        let next = AtomicUsize::new(0);
        let this = *self;
        let opts = LintOptions::invariants_only();
        std::thread::scope(|s| {
            for _ in 0..jobs.max(1).min(fresh_idx.len().max(1)) {
                s.spawn(|| {
                    let passes = Optimizer::new(this.level).passes();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= fresh_idx.len() {
                            break;
                        }
                        let src = &module.functions[fresh_idx[k]];
                        let mut f = src.clone();
                        let outcome = run_passes_governed(
                            &mut f,
                            &passes,
                            this.policy,
                            &opts,
                            &this.budget,
                            None,
                        )
                        .map(|rep| {
                            let in_fp = fingerprint64(&format!("{src}"));
                            if let Err(e) = writer.record(&src.name, in_fp, &format!("{f}")) {
                                io_errors.lock().expect("io-error list poisoned").push(e);
                            }
                            (f, rep)
                        });
                        *fresh_slots[k].lock().expect("fresh slot poisoned") = Some(outcome);
                    }
                });
            }
        });
        if let Some(e) = io_errors.into_inner().expect("io-error list poisoned").into_iter().next()
        {
            return Err(JournalError::Io(e));
        }
        for (k, slot) in fresh_slots.into_iter().enumerate() {
            let outcome =
                slot.into_inner().expect("fresh slot poisoned").expect("worker filled slot");
            slots[fresh_idx[k]] = Some(outcome?);
        }

        let mut out = module.clone();
        out.functions.clear();
        let mut report = SandboxReport::default();
        for slot in slots {
            let (f, rep) = slot.expect("every slot filled");
            out.functions.push(f);
            report.merge(rep);
        }
        Ok(JournaledOutcome {
            output: self.oracle_stage(module, out, report),
            reused,
            fresh: fresh_idx.len(),
            resumed_torn,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::compare_modules;
    use epre::Optimizer;
    use epre_frontend::{compile, NamingMode};

    const SRC: &str = "function foo(y, z)\n\
                       real y, z, s, x\n\
                       integer i\n\
                       begin\n\
                       s = 0\n\
                       x = y + z\n\
                       do i = x, 100\n\
                         s = i + s + x\n\
                       enddo\n\
                       return s\nend\n";

    const SRC2: &str = "function bar(a, b)\n\
                        integer a, b, t\n\
                        begin\n\
                        t = a * b + a\n\
                        return t + a * b\nend\n";

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("epre-harden-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn clean_input_produces_clean_output() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let h = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort);
        let out = h.optimize(&m).unwrap();
        assert!(out.is_clean(), "faults={:?} divergences={:?}", out.faults, out.divergences);
        assert_eq!(out.skipped, 0);
        assert!(out.quarantined.is_empty());
        let plain = Optimizer::new(OptLevel::Distribution).optimize(&m);
        assert_eq!(format!("{}", out.module), format!("{plain}"));
    }

    #[test]
    fn divergent_function_is_rolled_back() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        // Sabotage the *input* so that optimization changes behaviour:
        // simplest is to compare against a hand-corrupted "optimized"
        // module through the rollback path directly.
        let h = Harness::new(OptLevel::Baseline, FaultPolicy::BestEffort);
        let out = h.optimize(&m).unwrap();
        // A healthy pipeline cannot be made to diverge here; assert the
        // invariant the rollback maintains instead: emitted module agrees
        // with the input on the oracle's vectors.
        let check = compare_modules(&m, &out.module, &h.oracle);
        assert!(check.is_empty());
    }

    #[test]
    fn starved_oracle_reports_inconclusive_not_divergence() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let h = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort)
            .with_oracle(OracleConfig { fuel: 2, ..OracleConfig::default() });
        let out = h.optimize(&m).unwrap();
        assert!(out.divergences.is_empty(), "{:?}", out.divergences);
        assert!(out.inconclusive > 0, "2 fuel cannot finish this loop");
        assert!(out.is_clean(), "inconclusive must not dirty the run");
    }

    #[test]
    fn deadline_harness_matches_plain_on_healthy_input() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let h = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort)
            .with_deadline(Duration::from_secs(10));
        let out = h.optimize_jobs(&m, 2).unwrap();
        assert!(out.is_clean(), "faults={:?}", out.faults);
        let plain = Optimizer::new(OptLevel::Distribution).optimize(&m);
        assert_eq!(format!("{}", out.module), format!("{plain}"));
    }

    #[test]
    fn journaled_run_matches_unjournaled_and_resume_reuses() {
        let path = tmp("match");
        let mut m = compile(SRC, NamingMode::Disciplined).unwrap();
        m.functions.extend(compile(SRC2, NamingMode::Disciplined).unwrap().functions);
        let h = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort);
        let plain = h.optimize(&m).unwrap();
        let j1 = h.optimize_journaled(&m, 1, &path, false).unwrap();
        assert_eq!(j1.reused, 0);
        assert_eq!(j1.fresh, 2);
        assert_eq!(format!("{}", j1.output.module), format!("{}", plain.module));
        // Resume over the complete journal: everything reuses, output
        // byte-identical.
        let j2 = h.optimize_journaled(&m, 1, &path, true).unwrap();
        assert_eq!(j2.reused, 2);
        assert_eq!(j2.fresh, 0);
        assert!(!j2.resumed_torn);
        assert_eq!(format!("{}", j2.output.module), format!("{}", plain.module));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_after_a_kill_is_byte_identical() {
        let path = tmp("kill");
        let mut m = compile(SRC, NamingMode::Disciplined).unwrap();
        m.functions.extend(compile(SRC2, NamingMode::Disciplined).unwrap().functions);
        let h = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort);
        let full = h.optimize_journaled(&m, 1, &path, false).unwrap();
        // Simulate a SIGKILL mid-write: tear the journal inside its final
        // record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let resumed = h.optimize_journaled(&m, 1, &path, true).unwrap();
        assert!(resumed.resumed_torn, "the tear must be detected");
        assert_eq!(resumed.reused, 1, "the complete record must be reused");
        assert_eq!(resumed.fresh, 1, "the torn record must be redone");
        assert_eq!(
            format!("{}", resumed.output.module),
            format!("{}", full.output.module),
            "resume must reproduce the uninterrupted output byte-for-byte"
        );
        // And the journal is clean again: a second resume reuses both.
        let again = h.optimize_journaled(&m, 1, &path, true).unwrap();
        assert!(!again.resumed_torn);
        assert_eq!(again.reused, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_under_a_different_config_is_refused() {
        let path = tmp("refuse");
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let h = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort);
        h.optimize_journaled(&m, 1, &path, false).unwrap();
        let other = Harness::new(OptLevel::Baseline, FaultPolicy::BestEffort);
        match other.optimize_journaled(&m, 1, &path, true) {
            Err(JournalError::HeaderMismatch { found, expected }) => {
                assert!(found.contains("level=distribution"), "{found}");
                assert!(expected.contains("level=baseline"), "{expected}");
            }
            other => panic!("expected header mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stale_input_is_reoptimized_not_replayed() {
        let path = tmp("stale");
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let h = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort);
        h.optimize_journaled(&m, 1, &path, false).unwrap();
        // "Edit" the source: recompile with an extra function and a
        // changed body shape for foo via a different module — here we
        // just alter the module's function text by optimizing it first.
        let m2 = Optimizer::new(OptLevel::Baseline).optimize(&m);
        let j = h.optimize_journaled(&m2, 1, &path, true).unwrap();
        assert_eq!(j.reused, 0, "changed input text must invalidate the record");
        assert_eq!(j.fresh, 1);
        std::fs::remove_file(&path).ok();
    }
}
