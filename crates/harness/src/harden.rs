//! The hardened pipeline: sandboxed passes plus the differential oracle,
//! with semantic rollback.
//!
//! This is the harness's top-level entry, and what `epre opt
//! --best-effort` runs. Structural damage is contained per pass by the
//! sandbox ([`crate::sandbox`]); semantic damage that survives the lint
//! layer is caught after the fact by the oracle ([`crate::oracle`]), and
//! the offending *function* is rolled back wholesale to its input form —
//! the module that comes out is always runnable and always agrees with
//! the input on the oracle's test vectors.

use epre::fault::PassFault;
use epre::OptLevel;
use epre_ir::Module;

use crate::oracle::{compare_modules, Divergence, OracleConfig};
use crate::sandbox::{FaultPolicy, SandboxReport, SandboxedOptimizer};

/// The fault-tolerant optimizer: a level, a policy, and an oracle.
#[derive(Debug, Clone, Copy)]
pub struct Harness {
    /// Optimization level to run.
    pub level: OptLevel,
    /// What to do when a pass faults.
    pub policy: FaultPolicy,
    /// Differential-execution settings.
    pub oracle: OracleConfig,
}

/// The result of a hardened optimization run.
#[derive(Debug, Clone)]
pub struct HardenedOutput {
    /// The optimized module. Functions whose optimized form diverged from
    /// the input under the oracle have been rolled back to their input
    /// form, so this module is always safe to run.
    pub module: Module,
    /// Contained pass faults (panics, verify failures, new lint errors).
    pub faults: Vec<PassFault>,
    /// Oracle divergences. Each names a function that was rolled back.
    pub divergences: Vec<Divergence>,
    /// Pass retries performed under [`FaultPolicy::RetryThenSkip`].
    pub retries: usize,
}

impl HardenedOutput {
    /// No faults and no divergences: the run was entirely clean.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty() && self.divergences.is_empty()
    }
}

impl Harness {
    /// A harness at `level` with `policy` and default oracle settings.
    pub fn new(level: OptLevel, policy: FaultPolicy) -> Self {
        Harness { level, policy, oracle: OracleConfig::default() }
    }

    /// Replace the oracle configuration.
    pub fn with_oracle(mut self, oracle: OracleConfig) -> Self {
        self.oracle = oracle;
        self
    }

    /// Optimize `module` with full containment.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the first pass fault. Oracle
    /// divergence never errors — the affected function is rolled back
    /// and reported.
    pub fn optimize(&self, module: &Module) -> Result<HardenedOutput, PassFault> {
        self.optimize_jobs(module, 1)
    }

    /// [`Harness::optimize`] with up to `jobs` sandbox worker threads
    /// (`epre opt --best-effort --jobs N`). The oracle comparison and
    /// rollback stay serial; only the per-function pass pipelines run in
    /// parallel. Output is deterministic — identical to the serial run.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the first pass fault in module
    /// function order.
    pub fn optimize_jobs(&self, module: &Module, jobs: usize) -> Result<HardenedOutput, PassFault> {
        let sandboxed = SandboxedOptimizer::new(self.level, self.policy);
        let (mut out, report) = sandboxed.optimize_jobs(module, jobs)?;
        let SandboxReport { faults, retries } = report;

        let divergences = compare_modules(module, &out, &self.oracle);
        for d in &divergences {
            // Semantic rollback: the optimized function computes the wrong
            // answer, so ship the input version instead.
            if let Some(original) = module.function(&d.function) {
                if let Some(target) = out.function_mut(&d.function) {
                    *target = original.clone();
                }
            }
        }
        Ok(HardenedOutput { module: out, faults, divergences, retries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre::Optimizer;
    use epre_frontend::{compile, NamingMode};

    const SRC: &str = "function foo(y, z)\n\
                       real y, z, s, x\n\
                       integer i\n\
                       begin\n\
                       s = 0\n\
                       x = y + z\n\
                       do i = x, 100\n\
                         s = i + s + x\n\
                       enddo\n\
                       return s\nend\n";

    #[test]
    fn clean_input_produces_clean_output() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        let h = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort);
        let out = h.optimize(&m).unwrap();
        assert!(out.is_clean(), "faults={:?} divergences={:?}", out.faults, out.divergences);
        let plain = Optimizer::new(OptLevel::Distribution).optimize(&m);
        assert_eq!(format!("{}", out.module), format!("{plain}"));
    }

    #[test]
    fn divergent_function_is_rolled_back() {
        let m = compile(SRC, NamingMode::Disciplined).unwrap();
        // Sabotage the *input* so that optimization changes behaviour:
        // simplest is to compare against a hand-corrupted "optimized"
        // module through the rollback path directly.
        let h = Harness::new(OptLevel::Baseline, FaultPolicy::BestEffort);
        let out = h.optimize(&m).unwrap();
        // A healthy pipeline cannot be made to diverge here; assert the
        // invariant the rollback maintains instead: emitted module agrees
        // with the input on the oracle's vectors.
        let check = compare_modules(&m, &out.module, &h.oracle);
        assert!(check.is_empty());
    }
}
