//! Telemetry adapters: harness outcomes as structured trace events.
//!
//! The harness already aggregates its fault handling into typed reports
//! ([`HardenedOutput`], [`JournaledOutcome`]); these adapters render
//! those reports as [`Event`]s after the fact, so a best-effort
//! `epre opt --trace` run exports fault, rollback, quarantine, and
//! journal accounting through the same JSON Lines / Chrome sinks as the
//! clean pipeline's spans. Being derived from the deterministic reports,
//! the event streams are deterministic too.

use epre_telemetry::{Event, Value};

use crate::harden::{HardenedOutput, JournaledOutcome};

/// Render a hardened run's fault handling as trace events, in report
/// order: one `fault` per contained [`PassFault`](epre::PassFault), one
/// `rollback` per oracle divergence, one `quarantine` per tripped
/// breaker, and a closing `counter` event with the retry/skip/
/// inconclusive tallies.
pub fn harden_events(out: &HardenedOutput) -> Vec<Event> {
    let mut events = Vec::new();
    for fault in &out.faults {
        events.push(
            Event::instant("fault", &fault.function, &fault.pass)
                .with("fault_kind", Value::Str(fault.kind_label().to_string())),
        );
    }
    for d in &out.divergences {
        events.push(
            Event::instant("rollback", &d.function, "oracle")
                .with("reason", Value::Str("divergence".to_string())),
        );
    }
    for q in &out.quarantined {
        events.push(
            Event::instant("quarantine", &q.tripped_in, &q.pass)
                .with("faults", Value::U64(q.faults as u64)),
        );
    }
    events.push(
        Event::instant("counter", "", "harness")
            .with("retries", Value::U64(out.retries as u64))
            .with("skipped", Value::U64(out.skipped as u64))
            .with("inconclusive", Value::U64(out.inconclusive as u64)),
    );
    events
}

/// [`harden_events`] for a journaled run: the hardened events followed
/// by a `journal` event carrying the reuse/fresh/torn-tail accounting.
pub fn journal_events(out: &JournaledOutcome) -> Vec<Event> {
    let mut events = harden_events(&out.output);
    events.push(
        Event::instant("journal", "", "pipeline")
            .with("reused", Value::U64(out.reused as u64))
            .with("fresh", Value::U64(out.fresh as u64))
            .with("resumed_torn", Value::Bool(out.resumed_torn)),
    );
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre::PassFault;
    use epre_ir::Module;
    use epre_telemetry::Trace;

    fn sample_output() -> HardenedOutput {
        HardenedOutput {
            module: Module::default(),
            faults: vec![PassFault::panic("pre", "foo", "boom".to_string())],
            divergences: Vec::new(),
            retries: 2,
            skipped: 1,
            quarantined: vec![crate::breaker::Quarantine {
                pass: "pre".to_string(),
                faults: 3,
                tripped_in: "bar".to_string(),
            }],
            inconclusive: 0,
        }
    }

    #[test]
    fn harden_events_cover_every_report_row() {
        let out = sample_output();
        let events = harden_events(&out);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, "fault");
        assert_eq!((events[0].function.as_str(), events[0].pass.as_str()), ("foo", "pre"));
        assert_eq!(events[1].kind, "quarantine");
        assert_eq!(events[1].field_u64("faults"), Some(3));
        assert_eq!(events[2].field_u64("retries"), Some(2));
        assert_eq!(events[2].field_u64("skipped"), Some(1));
    }

    #[test]
    fn journal_events_append_journal_accounting() {
        let out = JournaledOutcome {
            output: sample_output(),
            reused: 4,
            fresh: 6,
            resumed_torn: true,
        };
        let events = journal_events(&out);
        let j = events.last().unwrap();
        assert_eq!(j.kind, "journal");
        assert_eq!(j.field_u64("reused"), Some(4));
        assert_eq!(j.field_u64("fresh"), Some(6));
        assert_eq!(j.field_bool("resumed_torn"), Some(true));
        // The adapters feed Trace::from_events; the export must parse.
        let trace = Trace::from_events(events);
        assert!(trace.to_jsonl().lines().all(|l| l.starts_with("{\"seq\":")));
    }
}
