//! A tiny deterministic PRNG (SplitMix64) for seeded fault injection and
//! oracle input generation.
//!
//! The workspace deliberately carries no external RNG dependency on the
//! library path; SplitMix64 is sixteen lines, passes BigCrush in its
//! published form, and — crucially for the fuzz campaign's reproducibility
//! guarantee — its stream is fixed for all time by the seed alone, immune
//! to upstream crate version bumps.

/// SplitMix64 (Steele, Lea & Flood; public-domain reference constants).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform integer in `lo..=hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        debug_assert!(lo <= hi);
        lo + (self.next_u64() % (hi - lo + 1) as u64) as i64
    }
}

/// FNV-1a over a string: a stable, dependency-free 64-bit fingerprint.
///
/// Used by the oracle (per-function argument streams) and the journal
/// (input/output fingerprints binding a resume to unchanged text). Like
/// the PRNG above, the value is fixed for all time by the input alone.
pub fn fingerprint64(text: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        assert_eq!(fingerprint64("foo"), fingerprint64("foo"));
        assert_ne!(fingerprint64("foo"), fingerprint64("fop"));
        assert_ne!(fingerprint64(""), fingerprint64(" "));
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let mut c = SplitMix64::new(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn below_and_range_stay_in_bounds() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range_i64(-3, 12);
            assert!((-3..=12).contains(&v));
        }
    }
}
