//! The module-driver watchdog: detect a worker stuck past its per-function
//! wall-clock deadline, roll the function back to its input form, and keep
//! the remaining workers draining the queue.
//!
//! The [`Budget`] layer stops *cooperative* runaways — passes that tick
//! their meter inside every fixed-point loop. A worker can still wedge in
//! non-cooperative code: a pathological allocation, a bug in an opaque
//! pass, a deadlocked dependency. The watchdog is the backstop for that
//! case. It runs the module's functions on detached worker threads,
//! polls for workers that have held one function past
//! [`WatchdogConfig::function_deadline`], and when it finds one it (a)
//! publishes the *input* function as that slot's result together with a
//! [`PassFault`] blamed on the pseudo-pass `"watchdog"`, (b) spawns a
//! replacement worker so the pool keeps its capacity, and (c) leaves the
//! stuck thread to its fate — it holds only clones, and its late result
//! (if it ever produces one) is discarded at the slot.
//!
//! Output functions are reassembled in module order, so *which bytes* come
//! out for a function depends only on whether it timed out — timing out is
//! of course wall-clock-dependent, which is exactly why the deterministic
//! pipelines leave the deadline dimension unset and this driver is opt-in
//! (`epre opt --best-effort --deadline-ms N --jobs K`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use epre::fault::PassFault;
use epre::{Budget, BudgetExceeded, BudgetKind};
use epre_ir::{Function, Module};
use epre_lint::LintOptions;
use epre_passes::Pass;

use crate::sandbox::{run_passes_governed, FaultPolicy, SandboxReport};

/// Builds a fresh pass list per worker thread (pass objects are not
/// `Sync`, and the stuck worker keeps its list forever).
pub type PassFactory = dyn Fn() -> Vec<Box<dyn Pass>> + Send + Sync;

/// The watchdog driver's knobs.
#[derive(Debug, Clone, Copy)]
pub struct WatchdogConfig {
    /// How long one worker may hold one function before it is declared
    /// stuck and the function is rolled back.
    pub function_deadline: Duration,
    /// How often the watchdog scans for stuck workers when no completion
    /// arrives.
    pub poll: Duration,
    /// Worker-thread count.
    pub jobs: usize,
}

impl WatchdogConfig {
    /// A config with `jobs` workers and the given per-function deadline;
    /// the poll interval is an eighth of the deadline, floored at 1 ms.
    pub fn new(function_deadline: Duration, jobs: usize) -> Self {
        WatchdogConfig {
            function_deadline,
            poll: (function_deadline / 8).max(Duration::from_millis(1)),
            jobs: jobs.max(1),
        }
    }
}

/// The pseudo-pass name the watchdog blames its rollbacks on.
pub const WATCHDOG_PASS: &str = "watchdog";

/// A per-function result slot: `None` until either the worker's real
/// result or the watchdog's rollback verdict lands (first write wins).
type Slot = Mutex<Option<Result<(Function, SandboxReport), PassFault>>>;

struct Shared {
    module: Module,
    slots: Vec<Slot>,
    started: Vec<Mutex<Option<Instant>>>,
    next: AtomicUsize,
}

fn spawn_worker(
    shared: &Arc<Shared>,
    passes_for: &Arc<PassFactory>,
    policy: FaultPolicy,
    opts: LintOptions,
    budget: Budget,
    tx: &mpsc::Sender<usize>,
) {
    let shared = Arc::clone(shared);
    let passes_for = Arc::clone(passes_for);
    let tx = tx.clone();
    std::thread::spawn(move || {
        let passes = passes_for();
        let n = shared.module.functions.len();
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            *shared.started[i].lock().expect("start-time slot poisoned") = Some(Instant::now());
            let mut f = shared.module.functions[i].clone();
            let outcome = run_passes_governed(&mut f, &passes, policy, &opts, &budget, None)
                .map(|rep| (f, rep));
            let mut slot = shared.slots[i].lock().expect("result slot poisoned");
            if slot.is_none() {
                *slot = Some(outcome);
                drop(slot);
                // The watchdog may have shut the channel down already; a
                // failed send just means nobody is waiting anymore.
                let _ = tx.send(i);
            }
            // else: the watchdog gave up on this function; the late result
            // is discarded and this (recovered) worker rejoins the pool.
        }
    });
}

/// Optimize `module` on a watchdog-supervised worker pool.
///
/// Each function runs a governed sandboxed pipeline
/// ([`run_passes_governed`]; no circuit breaker — quarantine replay is
/// meaningless when results can be abandoned mid-flight). A function whose
/// worker exceeds the per-function deadline is rolled back to its input
/// form and reported as a fault of [`WATCHDOG_PASS`] with
/// [`BudgetKind::WallClock`] evidence; the remaining functions keep
/// draining on the surviving and replacement workers.
///
/// # Errors
/// Under [`FaultPolicy::FailFast`], the fault of the earliest faulting
/// function in module order (watchdog rollbacks are always contained,
/// never errors — a deadline is a degradation, not a failure).
pub fn optimize_module_watchdog(
    module: &Module,
    passes_for: Arc<PassFactory>,
    policy: FaultPolicy,
    opts: LintOptions,
    budget: Budget,
    cfg: &WatchdogConfig,
) -> Result<(Module, SandboxReport), PassFault> {
    let n = module.functions.len();
    if n == 0 {
        return Ok((module.clone(), SandboxReport::default()));
    }
    let shared = Arc::new(Shared {
        module: module.clone(),
        slots: (0..n).map(|_| Mutex::new(None)).collect(),
        started: (0..n).map(|_| Mutex::new(None)).collect(),
        next: AtomicUsize::new(0),
    });
    let (tx, rx) = mpsc::channel::<usize>();
    for _ in 0..cfg.jobs.min(n) {
        spawn_worker(&shared, &passes_for, policy, opts, budget, &tx);
    }

    let mut done = 0usize;
    while done < n {
        match rx.recv_timeout(cfg.poll) {
            Ok(_) => done += 1,
            Err(RecvTimeoutError::Disconnected) => {
                unreachable!("the watchdog holds a live sender")
            }
            Err(RecvTimeoutError::Timeout) => {
                for i in 0..n {
                    let Some(t0) = *shared.started[i].lock().expect("start-time slot poisoned")
                    else {
                        continue;
                    };
                    let elapsed = t0.elapsed();
                    if elapsed < cfg.function_deadline {
                        continue;
                    }
                    let mut slot = shared.slots[i].lock().expect("result slot poisoned");
                    if slot.is_some() {
                        continue; // finished (or already abandoned) in time
                    }
                    let f = shared.module.functions[i].clone();
                    let fault = PassFault::budget(
                        WATCHDOG_PASS,
                        &f.name,
                        BudgetExceeded {
                            kind: BudgetKind::WallClock,
                            spent: elapsed.as_millis() as u64,
                            limit: cfg.function_deadline.as_millis() as u64,
                        },
                    );
                    let rep = SandboxReport { faults: vec![fault], ..SandboxReport::default() };
                    *slot = Some(Ok((f, rep)));
                    drop(slot);
                    done += 1;
                    // The stuck worker's capacity is gone; replace it so the
                    // rest of the queue keeps draining at full width.
                    spawn_worker(&shared, &passes_for, policy, opts, budget, &tx);
                }
            }
        }
    }

    let mut out = module.clone();
    out.functions.clear();
    let mut report = SandboxReport::default();
    for slot in &shared.slots {
        let outcome = slot
            .lock()
            .expect("result slot poisoned")
            .take()
            .expect("every slot filled before exit");
        let (f, rep) = outcome?;
        out.functions.push(f);
        report.merge(rep);
    }
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre::Optimizer;
    use epre_ir::{BinOp, FunctionBuilder, Ty};

    fn named(name: &str) -> Function {
        let mut b = FunctionBuilder::new(name, Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.bin(BinOp::Add, Ty::Int, x, x);
        b.ret(Some(y));
        b.finish()
    }

    #[test]
    fn healthy_module_passes_through_unharmed() {
        let mut m = Module::new();
        for name in ["a", "b", "c"] {
            m.functions.push(named(name));
        }
        let level = epre::OptLevel::Distribution;
        let (out, rep) = optimize_module_watchdog(
            &m,
            Arc::new(move || Optimizer::new(level).passes()),
            FaultPolicy::BestEffort,
            LintOptions::invariants_only(),
            Budget::governed(),
            &WatchdogConfig::new(Duration::from_secs(60), 2),
        )
        .unwrap();
        assert!(rep.faults.is_empty(), "{:?}", rep.faults);
        let plain = Optimizer::new(level).optimize(&m);
        assert_eq!(format!("{out}"), format!("{plain}"));
    }
}
