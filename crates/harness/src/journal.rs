//! The write-ahead optimization journal: crash-tolerant resume for
//! `epre opt --best-effort --journal PATH`.
//!
//! As each function finishes its sandboxed pipeline, one self-delimiting
//! record — name, a fingerprint of the *input* text, a fingerprint of the
//! *output* text, and the output's serialized body — is appended and
//! flushed. A run killed mid-module (SIGKILL, OOM, power button) leaves a
//! journal whose tail may be torn mid-record; the loader tolerates exactly
//! that, keeping every complete record and discarding the torn tail. On
//! `--resume`, functions whose input fingerprint still matches skip the
//! pass pipeline and replay their journaled bodies, so the resumed run's
//! emitted module is byte-identical to what the uninterrupted run would
//! have produced.
//!
//! Records are written *before* the oracle stage (the sandbox is
//! per-function; the oracle needs the whole candidate module), so a resume
//! re-runs the oracle over reused and fresh functions alike — which is
//! precisely what makes the final output independent of where the crash
//! landed. The header binds the journal to the optimization level, fault
//! policy, and budget that produced it; resuming under a different
//! configuration is refused rather than silently mixed.
//!
//! ## Format
//!
//! Plain text, ASCII framing, length-prefixed bodies:
//!
//! ```text
//! EPRE-JOURNAL v1 level=distribution policy=best-effort iters=200000 growth=64 deadline-ms=none
//! fn <name>
//! in <16-hex input fingerprint>
//! out <16-hex output fingerprint>
//! at <decimal recency epoch>        (optional; absent means epoch 0)
//! body <byte length>
//! <exactly that many bytes of printed ILOC>
//! end
//! ```
//!
//! The `at` line is the serve-layer cache's LRU clock: each record carries
//! the logical epoch of its last touch so recency survives a restart. The
//! optimizer journal never writes it (its records are epoch 0, and a zero
//! epoch is serialized as *no line at all*), which keeps the optimizer's
//! journal bytes identical to the pre-epoch format.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use epre::Budget;

use crate::rng::fingerprint64;

/// The format-version magic every journal starts with.
pub const JOURNAL_MAGIC: &str = "EPRE-JOURNAL v1";

/// The header line binding a journal to the run configuration that wrote
/// it. Level, policy, and every budget dimension participate: a journal
/// written under different caps could hold bodies the current run would
/// have rolled back (or vice versa).
pub fn header_line(level_label: &str, policy_label: &str, budget: &Budget) -> String {
    let iters = budget.max_iters.map_or("none".to_string(), |n| n.to_string());
    let growth = budget.max_growth.map_or("none".to_string(), |g| format!("{g}"));
    let deadline =
        budget.deadline.map_or("none".to_string(), |d| format!("{}", d.as_millis()));
    format!(
        "{JOURNAL_MAGIC} level={level_label} policy={policy_label} \
         iters={iters} growth={growth} deadline-ms={deadline}"
    )
}

/// One complete journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The function the record belongs to.
    pub function: String,
    /// [`fingerprint64`] of the function's printed *input* text. A resume
    /// reuses the record only when the current input still matches.
    pub input_fp: u64,
    /// Logical recency epoch of the record's last touch (the serve cache's
    /// LRU clock). Zero for records written without an `at` line — every
    /// optimizer-journal record, and every pre-epoch cache file.
    pub epoch: u64,
    /// The post-pipeline function, serialized as printed ILOC.
    pub body: String,
}

/// What the loader recovered from a journal file.
#[derive(Debug, Clone, Default)]
pub struct ResumeState {
    /// Complete, checksum-valid records, keyed by function name (a name
    /// journaled twice keeps its latest record).
    pub entries: BTreeMap<String, JournalEntry>,
    /// The file ended mid-record — the signature of a killed run. The
    /// torn tail was discarded.
    pub torn_tail: bool,
    /// Records whose body failed its output-fingerprint check and were
    /// dropped.
    pub corrupt_dropped: usize,
}

/// The outcome of probing a journal path for resume.
#[derive(Debug)]
pub enum JournalLoad {
    /// No journal exists at the path: start fresh.
    Fresh,
    /// A journal exists but was written under a different configuration.
    Mismatch {
        /// The header found in the file.
        found: String,
    },
    /// A compatible journal with whatever records survived.
    Resumed(ResumeState),
}

/// Read one `\n`-terminated line starting at `*pos`, advancing past it.
fn take_line<'a>(text: &'a str, pos: &mut usize) -> Option<&'a str> {
    let rest = &text[*pos..];
    let nl = rest.find('\n')?;
    *pos += nl + 1;
    Some(&rest[..nl])
}

/// Load and validate the journal at `path` against `expected_header`.
///
/// Tolerant of a torn tail (see module docs); strict about the header.
///
/// Crash-before-first-record edge cases resolve to [`JournalLoad::Fresh`]
/// rather than a torn resume or an error: a zero-length file (killed
/// between `create` and the header write) and a file whose only content
/// is a partial header with no newline (killed mid-header) both carry no
/// records and no trustworthy header, so the run simply starts over. A
/// header-only file (the header landed, no records yet) resumes cleanly
/// with zero entries and `torn_tail == false`.
///
/// # Errors
/// Only real I/O errors. A missing file is [`JournalLoad::Fresh`]; any
/// malformed content is handled by tolerance or [`JournalLoad::Mismatch`].
pub fn load_journal(path: &Path, expected_header: &str) -> io::Result<JournalLoad> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(JournalLoad::Fresh),
        Err(e) => return Err(e),
    };
    // ILOC and the framing are ASCII; a kill can still tear the file at
    // any byte, so decode leniently and let the framing checks below
    // discard whatever the tear mangled.
    let text = String::from_utf8_lossy(&bytes);
    let mut pos = 0usize;
    let Some(header) = take_line(&text, &mut pos) else {
        // Empty file, or a partial header the kill cut before its
        // newline: nothing was journaled, so there is nothing to resume
        // *or* to mourn — start fresh instead of reporting a torn tail
        // that never held a record.
        return Ok(JournalLoad::Fresh);
    };
    if header != expected_header {
        return Ok(JournalLoad::Mismatch { found: header.to_string() });
    }
    let mut state = ResumeState::default();
    loop {
        if pos >= text.len() {
            break; // clean end-of-journal
        }
        let parsed = (|| -> Option<(String, u64, u64, u64, String)> {
            let name = take_line(&text, &mut pos)?.strip_prefix("fn ")?.to_string();
            let input_fp =
                u64::from_str_radix(take_line(&text, &mut pos)?.strip_prefix("in ")?, 16).ok()?;
            let output_fp =
                u64::from_str_radix(take_line(&text, &mut pos)?.strip_prefix("out ")?, 16).ok()?;
            // The recency line is optional: records written before epochs
            // existed (and all optimizer-journal records) jump straight
            // from `out` to `body`.
            let mut epoch = 0u64;
            let mut line = take_line(&text, &mut pos)?;
            if let Some(at) = line.strip_prefix("at ") {
                epoch = at.parse().ok()?;
                line = take_line(&text, &mut pos)?;
            }
            let len: usize = line.strip_prefix("body ")?.parse().ok()?;
            let body = text.get(pos..pos + len)?.to_string();
            pos += len;
            if take_line(&text, &mut pos)? != "end" {
                return None;
            }
            Some((name, input_fp, output_fp, epoch, body))
        })();
        match parsed {
            None => {
                // Torn mid-record: the remainder is the crash artifact.
                // Keep what came before.
                state.torn_tail = true;
                break;
            }
            Some((function, input_fp, output_fp, epoch, body)) => {
                if fingerprint64(&body) != output_fp {
                    state.corrupt_dropped += 1;
                    continue;
                }
                state
                    .entries
                    .insert(function.clone(), JournalEntry { function, input_fp, epoch, body });
            }
        }
    }
    Ok(JournalLoad::Resumed(state))
}

/// An append-only journal writer, safe to share across worker threads.
///
/// Each [`JournalWriter::record`] call assembles its record in memory and
/// writes it with a single locked `write_all` + flush, so records from
/// concurrent workers interleave only at record granularity and a kill
/// tears at most the final record.
#[derive(Debug)]
pub struct JournalWriter {
    inner: Mutex<WriterInner>,
}

#[derive(Debug)]
struct WriterInner {
    file: File,
    bytes: u64,
}

/// Exact on-disk byte length of the record [`JournalWriter::record_at`]
/// would write for these arguments — the serve cache's byte-accurate
/// accounting unit (live bytes = header + Σ `record_len`, which is exactly
/// the file size a compaction will produce).
pub fn record_len(function: &str, epoch: u64, body: &str) -> u64 {
    let fixed = 4 + function.len()          // "fn <name>\n"
        + 20                                // "in <16 hex>\n"
        + 21                                // "out <16 hex>\n"
        + 6 + decimal_digits(body.len() as u64) // "body <len>\n"
        + body.len()
        + 4; // "end\n"
    let at = if epoch > 0 { 4 + decimal_digits(epoch) } else { 0 }; // "at <epoch>\n"
    (fixed + at) as u64
}

fn decimal_digits(mut n: u64) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

/// The sibling path a crash-safe rewrite stages its replacement file at
/// before the atomic rename. Exposed so readers that inherit a crash can
/// clean the stale sibling up (the rename never happened, so the original
/// file at `path` is still the valid one).
pub fn rewrite_staging_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
    name.push_str(".compact");
    path.with_file_name(name)
}

impl JournalWriter {
    /// Create (truncate) a journal at `path` and write `header`.
    ///
    /// # Errors
    /// File creation or the header write.
    pub fn create(path: &Path, header: &str) -> io::Result<JournalWriter> {
        let mut file = File::create(path)?;
        file.write_all(header.as_bytes())?;
        file.write_all(b"\n")?;
        file.flush()?;
        Ok(JournalWriter { inner: Mutex::new(WriterInner { file, bytes: header.len() as u64 + 1 }) })
    }

    /// Rewrite `path` from scratch with `header` and the given complete
    /// records, **crash-atomically**: the replacement is written to a
    /// staging sibling ([`rewrite_staging_path`]), fsynced, and renamed
    /// over `path` in one step. A kill at any instant leaves either the
    /// old file or the complete new file at `path` — never a torn hybrid.
    /// This is both the resume path's way of discarding a torn tail and
    /// the serve cache's online compaction. Returns the writer positioned
    /// for appending fresh records (its handle survives the rename: it
    /// points at the inode now living at `path`).
    ///
    /// # Errors
    /// File creation, any write, the fsync, or the rename.
    pub fn rewrite(
        path: &Path,
        header: &str,
        entries: &BTreeMap<String, JournalEntry>,
    ) -> io::Result<JournalWriter> {
        let staging = rewrite_staging_path(path);
        let w = JournalWriter::create(&staging, header)?;
        for e in entries.values() {
            w.record_at(&e.function, e.input_fp, e.epoch, &e.body)?;
        }
        {
            let inner = w.inner.lock().expect("journal file poisoned");
            // The rename below makes the new content *the* journal; fsync
            // first so the kill window between rename and writeback cannot
            // publish a name pointing at unwritten data.
            inner.file.sync_all()?;
        }
        std::fs::rename(&staging, path)?;
        Ok(w)
    }

    /// Append one record for `function` and flush it to the OS, making it
    /// kill-durable (surviving SIGKILL; full power-loss durability would
    /// need an fsync per record, a cost the journal's crash model does not
    /// ask for).
    ///
    /// # Errors
    /// The write or flush.
    pub fn record(&self, function: &str, input_fp: u64, body: &str) -> io::Result<()> {
        self.record_at(function, input_fp, 0, body)
    }

    /// [`JournalWriter::record`] with an explicit recency epoch. Epoch 0
    /// writes no `at` line at all, keeping pre-epoch journal bytes
    /// unchanged; the loader reads the absence back as epoch 0.
    ///
    /// # Errors
    /// The write or flush.
    pub fn record_at(
        &self,
        function: &str,
        input_fp: u64,
        epoch: u64,
        body: &str,
    ) -> io::Result<()> {
        let mut rec = String::with_capacity(body.len() + 96);
        rec.push_str("fn ");
        rec.push_str(function);
        rec.push('\n');
        rec.push_str(&format!("in {input_fp:016x}\n"));
        rec.push_str(&format!("out {:016x}\n", fingerprint64(body)));
        if epoch > 0 {
            rec.push_str(&format!("at {epoch}\n"));
        }
        rec.push_str(&format!("body {}\n", body.len()));
        rec.push_str(body);
        rec.push_str("end\n");
        let mut inner = self.inner.lock().expect("journal file poisoned");
        inner.file.write_all(rec.as_bytes())?;
        inner.file.flush()?;
        inner.bytes += rec.len() as u64;
        Ok(())
    }

    /// Bytes written through this writer since creation, header included —
    /// the journal file's size as long as nothing else touches the path.
    /// The serve cache's compaction trigger reads this instead of
    /// stat()ing the file on every insert.
    pub fn bytes_written(&self) -> u64 {
        self.inner.lock().expect("journal file poisoned").bytes
    }

    /// Fsync the journal file itself (used by graceful drain to upgrade
    /// the final state from kill-durable to power-durable before exit).
    ///
    /// # Errors
    /// The fsync.
    pub fn sync(&self) -> io::Result<()> {
        self.inner.lock().expect("journal file poisoned").file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> String {
        header_line("distribution", "best-effort", &Budget::governed())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("epre-journal-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_every_record() {
        let path = tmp("roundtrip");
        let w = JournalWriter::create(&path, &header()).unwrap();
        w.record("foo", 0xAB, "body of foo\n").unwrap();
        w.record("bar", 0xCD, "body of bar\nwith two lines\n").unwrap();
        let JournalLoad::Resumed(st) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        assert!(!st.torn_tail);
        assert_eq!(st.corrupt_dropped, 0);
        assert_eq!(st.entries.len(), 2);
        assert_eq!(st.entries["foo"].input_fp, 0xAB);
        assert_eq!(st.entries["bar"].body, "body of bar\nwith two lines\n");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_keeps_complete_records() {
        let path = tmp("torn");
        let w = JournalWriter::create(&path, &header()).unwrap();
        w.record("keep", 1, "kept body\n").unwrap();
        w.record("torn", 2, "this record will be cut mid-body\n").unwrap();
        let full = std::fs::read(&path).unwrap();
        // Cut inside the second record's body, as a SIGKILL would.
        std::fs::write(&path, &full[..full.len() - 10]).unwrap();
        let JournalLoad::Resumed(st) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        assert!(st.torn_tail, "a cut file must be flagged torn");
        assert_eq!(st.entries.len(), 1);
        assert!(st.entries.contains_key("keep"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_body_is_dropped_not_trusted() {
        let path = tmp("corrupt");
        let w = JournalWriter::create(&path, &header()).unwrap();
        w.record("good", 1, "good body\n").unwrap();
        w.record("bad", 2, "bad body\n").unwrap();
        // Flip a byte inside `bad`'s body without breaking the framing.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = bytes.windows(8).rposition(|w| w == b"bad body").unwrap();
        bytes[idx] = b'B';
        std::fs::write(&path, &bytes).unwrap();
        let JournalLoad::Resumed(st) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        assert!(!st.torn_tail);
        assert_eq!(st.corrupt_dropped, 1);
        assert_eq!(st.entries.len(), 1);
        assert!(st.entries.contains_key("good"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatch_is_refused() {
        let path = tmp("mismatch");
        let other = header_line("baseline", "best-effort", &Budget::governed());
        JournalWriter::create(&path, &other).unwrap();
        match load_journal(&path, &header()).unwrap() {
            JournalLoad::Mismatch { found } => assert!(found.contains("level=baseline")),
            other => panic!("expected mismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_fresh() {
        let path = tmp("definitely-not-created");
        assert!(matches!(load_journal(&path, &header()).unwrap(), JournalLoad::Fresh));
    }

    #[test]
    fn zero_length_file_is_fresh_not_torn() {
        // A kill between `File::create` and the header write leaves a
        // zero-length file: no header, no records, nothing torn.
        let path = tmp("zero-length");
        std::fs::write(&path, b"").unwrap();
        assert!(matches!(load_journal(&path, &header()).unwrap(), JournalLoad::Fresh));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn partial_header_without_newline_is_fresh() {
        // A kill mid-header leaves a newline-less prefix. It must not be
        // treated as a mismatch (error) or a torn resume; it is a
        // crash-before-first-record and the run starts over.
        let path = tmp("partial-header");
        let h = header();
        std::fs::write(&path, &h.as_bytes()[..h.len() - 10]).unwrap();
        assert!(matches!(load_journal(&path, &header()).unwrap(), JournalLoad::Fresh));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_only_file_resumes_cleanly_with_no_entries() {
        // The header landed but the kill arrived before the first record:
        // a clean, empty resume — not torn, not an error.
        let path = tmp("header-only");
        JournalWriter::create(&path, &header()).unwrap();
        let JournalLoad::Resumed(st) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        assert!(!st.torn_tail, "an empty journal has no torn tail");
        assert_eq!(st.corrupt_dropped, 0);
        assert!(st.entries.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn epoch_roundtrips_and_zero_epoch_writes_no_at_line() {
        let path = tmp("epoch");
        let w = JournalWriter::create(&path, &header()).unwrap();
        w.record_at("hot", 1, 42, "hot body\n").unwrap();
        w.record_at("cold", 2, 0, "cold body\n").unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\nat 42\n"), "nonzero epoch must serialize");
        assert_eq!(
            text.matches("\nat ").count(),
            1,
            "epoch 0 must write no at line (pre-epoch byte compatibility)"
        );
        let JournalLoad::Resumed(st) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        assert_eq!(st.entries["hot"].epoch, 42);
        assert_eq!(st.entries["cold"].epoch, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn record_len_matches_bytes_actually_written() {
        let path = tmp("record-len");
        let w = JournalWriter::create(&path, &header()).unwrap();
        let before = w.bytes_written();
        assert_eq!(before, header().len() as u64 + 1);
        w.record_at("f", 7, 0, "x\n").unwrap();
        w.record_at("long-name", 8, 123_456, "a longer body here\n").unwrap();
        let expected =
            before + record_len("f", 0, "x\n") + record_len("long-name", 123_456, "a longer body here\n");
        assert_eq!(w.bytes_written(), expected);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), expected);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn crash_before_rename_leaves_old_journal_valid() {
        // The compaction crash window: the staging sibling exists (complete
        // or torn — a kill can land anywhere in its write) but the rename
        // never happened. The file at `path` must still load as the valid
        // journal, staging sibling ignored.
        let path = tmp("crash-window");
        let w = JournalWriter::create(&path, &header()).unwrap();
        w.record("survivor", 1, "old content\n").unwrap();
        let staging = rewrite_staging_path(&path);
        std::fs::write(&staging, b"EPRE-JOURNAL v1 torn garbage with no newline").unwrap();
        let JournalLoad::Resumed(st) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        assert_eq!(st.entries.len(), 1);
        assert!(st.entries.contains_key("survivor"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&staging).ok();
    }

    #[test]
    fn rewrite_replaces_the_file_atomically_and_keeps_appending() {
        let path = tmp("atomic-rewrite");
        let w = JournalWriter::create(&path, &header()).unwrap();
        w.record_at("keep", 1, 5, "kept body\n").unwrap();
        w.record_at("drop", 2, 1, "dropped body\n").unwrap();
        let JournalLoad::Resumed(mut st) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        st.entries.remove("drop");
        let w = JournalWriter::rewrite(&path, &header(), &st.entries).unwrap();
        // The staging sibling must be gone (renamed over the original).
        assert!(!rewrite_staging_path(&path).exists(), "staging file must be renamed away");
        // The returned writer appends to the *new* file through the rename.
        w.record_at("fresh", 3, 9, "fresh body\n").unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), w.bytes_written());
        let JournalLoad::Resumed(st2) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        assert_eq!(st2.entries.len(), 2);
        assert_eq!(st2.entries["keep"].epoch, 5);
        assert_eq!(st2.entries["fresh"].epoch, 9);
        assert!(!st2.entries.contains_key("drop"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rewrite_discards_the_torn_tail_durably() {
        let path = tmp("rewrite");
        let w = JournalWriter::create(&path, &header()).unwrap();
        w.record("keep", 1, "kept body\n").unwrap();
        w.record("torn", 2, "cut mid-body\n").unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 6]).unwrap();
        let JournalLoad::Resumed(st) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        let w = JournalWriter::rewrite(&path, &header(), &st.entries).unwrap();
        w.record("fresh", 3, "fresh body\n").unwrap();
        let JournalLoad::Resumed(st2) = load_journal(&path, &header()).unwrap() else {
            panic!("expected resume");
        };
        assert!(!st2.torn_tail, "rewrite must leave a clean file");
        assert_eq!(st2.entries.len(), 2);
        assert!(st2.entries.contains_key("keep") && st2.entries.contains_key("fresh"));
        std::fs::remove_file(&path).ok();
    }
}
