//! Pass sandboxing: run every pass on a clone under `catch_unwind`,
//! re-lint the result, and roll back on panic or new invariant violation.
//!
//! The plain pipeline trusts its passes; `verify_each` distrusts them but
//! fails fast. The sandbox goes the final step the ROADMAP's
//! production-scale north star demands: a pass that panics or emits
//! invalid ILOC is *contained* — the function rolls back to its pre-pass
//! state, the incident is recorded as a typed [`PassFault`], and the rest
//! of the pipeline keeps running. The [`FaultPolicy`] selects between
//! fail-fast, best-effort, and retry-then-skip behaviour.

use std::cell::Cell;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use epre::fault::PassFault;
use epre::{OptLevel, Optimizer};
use epre_ir::{Function, Module};
use epre_lint::{lint_function, Diagnostic, LintOptions, Report, Severity};
use epre_passes::Pass;

/// What to do when a pass faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Stop the pipeline and surface the fault as an error.
    FailFast,
    /// Roll the function back to its pre-pass state, record the fault, and
    /// continue with the next pass.
    BestEffort,
    /// Retry the pass once on a fresh clone (a safeguard for passes with
    /// internal state or allocation-dependent behaviour), then skip it as
    /// in [`FaultPolicy::BestEffort`].
    RetryThenSkip,
}

impl FaultPolicy {
    /// The policy's CLI label.
    pub fn label(self) -> &'static str {
        match self {
            FaultPolicy::FailFast => "fail-fast",
            FaultPolicy::BestEffort => "best-effort",
            FaultPolicy::RetryThenSkip => "retry-then-skip",
        }
    }
}

/// The outcome of a sandboxed pipeline run over one function.
#[derive(Debug, Clone, Default)]
pub struct SandboxReport {
    /// Every contained fault, in pipeline order. A pass that faulted was
    /// rolled back: its effect on the function is void.
    pub faults: Vec<PassFault>,
    /// How many faulting passes were re-run under
    /// [`FaultPolicy::RetryThenSkip`] (whether or not the retry helped).
    pub retries: usize,
}

impl SandboxReport {
    /// Fold another report's tallies into this one.
    pub fn merge(&mut self, other: SandboxReport) {
        self.faults.extend(other.faults);
        self.retries += other.retries;
    }
}

thread_local! {
    /// When set, the process-wide panic hook stays silent for panics on
    /// this thread — the sandbox expects them and converts them to faults.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Run `body`, catching any panic and returning its payload as a string.
///
/// The first call installs a process-wide panic-hook shim that suppresses
/// hook output for panics occurring while this thread is inside
/// `catch_quiet` — without it a fuzz campaign injecting thousands of
/// faults would bury real output in backtrace noise. Panics on other
/// threads keep the previous hook's behaviour.
///
/// # Errors
/// The panic payload (downcast to a string where possible).
pub fn catch_quiet<R>(body: impl FnOnce() -> R) -> Result<R, String> {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
    QUIET_PANICS.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    QUIET_PANICS.with(|q| q.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

fn fingerprints(report: &Report) -> HashSet<String> {
    report.diagnostics.iter().map(Diagnostic::fingerprint).collect()
}

/// Run `passes` over `f` in order, each invocation sandboxed.
///
/// Every pass runs on a clone of `f` under `catch_unwind`; the clone is
/// then re-linted and diffed (by diagnostic fingerprint) against the
/// pre-pass report. Only when the pass neither panicked nor introduced a
/// new error-severity finding is the clone committed back to `f` —
/// otherwise `f` keeps its pre-pass state (rollback) and a [`PassFault`]
/// records the incident, subject to `policy`.
///
/// Pre-existing findings belong to the *input* and never fault a pass.
///
/// # Errors
/// Under [`FaultPolicy::FailFast`], the first fault. The other policies
/// always return the accumulated [`SandboxReport`].
pub fn run_passes_sandboxed(
    f: &mut Function,
    passes: &[Box<dyn Pass>],
    policy: FaultPolicy,
    opts: &LintOptions,
) -> Result<SandboxReport, PassFault> {
    let mut seen = fingerprints(&lint_function(f, opts));
    let mut out = SandboxReport::default();
    for pass in passes {
        let mut attempts = 0;
        loop {
            let base = &*f;
            let run = catch_quiet(|| {
                let mut candidate = base.clone();
                pass.run(&mut candidate);
                let report = lint_function(&candidate, opts);
                (candidate, report)
            });
            let fault = match run {
                Err(payload) => Some(PassFault::panic(pass.name(), &f.name, payload)),
                Ok((candidate, report)) => {
                    let new_errors: Vec<Diagnostic> = report
                        .diagnostics
                        .iter()
                        .filter(|d| {
                            d.severity() == Severity::Error && !seen.contains(&d.fingerprint())
                        })
                        .cloned()
                        .collect();
                    if new_errors.is_empty() {
                        seen = fingerprints(&report);
                        *f = candidate;
                        None
                    } else {
                        Some(PassFault::lint(pass.name(), &f.name, new_errors))
                    }
                }
            };
            match fault {
                None => break,
                Some(fault) => match policy {
                    FaultPolicy::FailFast => return Err(fault),
                    FaultPolicy::RetryThenSkip if attempts == 0 => {
                        attempts = 1;
                        out.retries += 1;
                        out.faults.push(fault);
                    }
                    _ => {
                        out.faults.push(fault);
                        break;
                    }
                },
            }
        }
    }
    Ok(out)
}

/// An [`Optimizer`] wrapper whose every pass invocation is sandboxed.
#[derive(Debug, Clone, Copy)]
pub struct SandboxedOptimizer {
    level: OptLevel,
    policy: FaultPolicy,
}

impl SandboxedOptimizer {
    /// A sandboxed optimizer at `level` under `policy`.
    pub fn new(level: OptLevel, policy: FaultPolicy) -> Self {
        SandboxedOptimizer { level, policy }
    }

    /// The wrapped level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Optimize one function in place with per-pass sandboxing (invariant
    /// lint rules only — intermediate pipeline states legitimately carry
    /// critical edges, dead code, and remaining redundancy).
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the first fault.
    pub fn optimize_function(&self, f: &mut Function) -> Result<SandboxReport, PassFault> {
        run_passes_sandboxed(
            f,
            &Optimizer::new(self.level).passes(),
            self.policy,
            &LintOptions::invariants_only(),
        )
    }

    /// Optimize a copy of the module with per-pass sandboxing.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the first fault in any function.
    pub fn optimize(&self, module: &Module) -> Result<(Module, SandboxReport), PassFault> {
        let mut out = module.clone();
        let mut report = SandboxReport::default();
        for f in &mut out.functions {
            report.merge(self.optimize_function(f)?);
        }
        Ok((out, report))
    }

    /// [`SandboxedOptimizer::optimize`] with up to `jobs` worker threads.
    ///
    /// Functions are distributed over a [`std::thread::scope`] pool and
    /// reassembled in module order, so the output module — and, because
    /// faults are collected per function before merging, the report's
    /// fault order — is deterministic and identical to the serial run.
    /// The panic-quieting hook in [`catch_quiet`] is keyed on a
    /// thread-local flag, so each worker's contained panics stay silent
    /// without affecting its siblings. `jobs <= 1` takes the exact serial
    /// path.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the fault of the earliest faulting
    /// function in module order.
    pub fn optimize_jobs(
        &self,
        module: &Module,
        jobs: usize,
    ) -> Result<(Module, SandboxReport), PassFault> {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;

        let n = module.functions.len();
        if jobs <= 1 || n <= 1 {
            return self.optimize(module);
        }
        let next = AtomicUsize::new(0);
        type Slot = Mutex<Option<Result<(Function, SandboxReport), PassFault>>>;
        let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for _ in 0..jobs.min(n) {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let mut f = module.functions[i].clone();
                    let outcome = self.optimize_function(&mut f).map(|rep| (f, rep));
                    *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });
        let mut out = module.clone();
        out.functions.clear();
        let mut report = SandboxReport::default();
        for slot in slots {
            let (f, rep) =
                slot.into_inner().expect("result slot poisoned").expect("worker filled slot")?;
            out.functions.push(f);
            report.merge(rep);
        }
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre::fault::FaultKind;
    use epre_ir::{BinOp, FunctionBuilder, Inst, Ty};
    use epre_passes::passes::{ConstProp, Dce};

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("s", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.bin(BinOp::Add, Ty::Int, x, x);
        let z = b.bin(BinOp::Add, Ty::Int, y, x);
        b.ret(Some(z));
        b.finish()
    }

    /// A pass that always panics.
    struct Bomb;
    impl Pass for Bomb {
        fn name(&self) -> &'static str {
            "bomb"
        }
        fn run(&self, _f: &mut Function) -> bool {
            panic!("deliberate detonation");
        }
    }

    /// A pass that introduces a use of a never-defined register.
    struct UseGhost;
    impl Pass for UseGhost {
        fn name(&self) -> &'static str {
            "use-ghost"
        }
        fn run(&self, f: &mut Function) -> bool {
            let dst = f.new_reg(Ty::Int);
            let ghost = f.new_reg(Ty::Int);
            f.blocks[0].insts.push(Inst::Copy { dst, src: ghost });
            true
        }
    }

    #[test]
    fn panic_is_contained_and_rolled_back() {
        let mut f = sample();
        let before = f.clone();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Bomb), Box::new(ConstProp)];
        let rep = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
        )
        .unwrap();
        assert_eq!(rep.faults.len(), 1);
        assert_eq!(rep.faults[0].pass, "bomb");
        assert!(matches!(&rep.faults[0].kind, FaultKind::Panic(p) if p.contains("detonation")));
        // The bomb's (nonexistent) effect was rolled back; constprop still ran.
        assert!(f.verify().is_ok());
        assert_eq!(f.params, before.params);
    }

    #[test]
    fn lint_violation_is_contained_and_rolled_back() {
        let mut f = sample();
        let before = f.clone();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(UseGhost)];
        let rep = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
        )
        .unwrap();
        assert_eq!(rep.faults.len(), 1);
        assert!(matches!(&rep.faults[0].kind, FaultKind::Lint(errs) if !errs.is_empty()));
        assert_eq!(f, before, "rollback must restore the pre-pass IR exactly");
    }

    #[test]
    fn fail_fast_surfaces_the_fault() {
        let mut f = sample();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Dce), Box::new(Bomb)];
        let e = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::FailFast,
            &LintOptions::invariants_only(),
        )
        .unwrap_err();
        assert_eq!(e.pass, "bomb");
    }

    #[test]
    fn retry_then_skip_counts_the_retry() {
        let mut f = sample();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Bomb)];
        let rep = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::RetryThenSkip,
            &LintOptions::invariants_only(),
        )
        .unwrap();
        assert_eq!(rep.retries, 1);
        assert_eq!(rep.faults.len(), 2, "one fault per attempt");
    }

    #[test]
    fn preexisting_violations_do_not_fault_passes() {
        // A function that is already broken on input: the fault belongs to
        // the input, and a well-behaved pass must not be blamed for it.
        let mut f = Function::new("broken", None);
        let dst = f.new_reg(Ty::Int);
        let ghost = f.new_reg(Ty::Int);
        let mut blk = epre_ir::Block::new(epre_ir::Terminator::Return { value: None });
        blk.insts.push(Inst::Copy { dst, src: ghost });
        f.add_block(blk);
        struct Nop;
        impl Pass for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn run(&self, _f: &mut Function) -> bool {
                false
            }
        }
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Nop)];
        let rep = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
        )
        .unwrap();
        assert!(rep.faults.is_empty());
    }

    #[test]
    fn sandboxed_optimizer_matches_plain_pipeline_on_clean_input() {
        let mut m = Module::new();
        m.functions.push(sample());
        let sandboxed = SandboxedOptimizer::new(OptLevel::Distribution, FaultPolicy::BestEffort);
        let (out, rep) = sandboxed.optimize(&m).unwrap();
        assert!(rep.faults.is_empty(), "{:?}", rep.faults);
        let plain = Optimizer::new(OptLevel::Distribution).optimize(&m);
        assert_eq!(format!("{out}"), format!("{plain}"));
    }
}
