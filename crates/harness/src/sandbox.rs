//! Pass sandboxing: run every pass on a clone under `catch_unwind` and a
//! resource [`Budget`], re-lint the result, and roll back on panic, new
//! invariant violation, or budget exhaustion.
//!
//! The plain pipeline trusts its passes; `verify_each` distrusts them but
//! fails fast. The sandbox goes the final step the ROADMAP's
//! production-scale north star demands: a pass that panics, emits invalid
//! ILOC, spins past its iteration cap, or explodes the code past its
//! growth cap is *contained* — the function rolls back to its pre-pass
//! state, the incident is recorded as a typed [`PassFault`], and the rest
//! of the pipeline keeps running. The [`FaultPolicy`] selects between
//! fail-fast, best-effort, and retry-then-skip behaviour; under
//! retry-then-skip the second attempt runs on a fresh clone under a
//! [`Budget::relaxed`] budget, so a pass that merely brushed a cap gets a
//! real second chance. A per-pass [`CircuitBreaker`] quarantines a pass
//! that keeps faulting across the functions of one module.

use std::cell::Cell;
use std::collections::HashSet;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

use epre::fault::PassFault;
use epre::{Budget, OptLevel, Optimizer};
use epre_analysis::AnalysisCache;
use epre_ir::{Function, Module};
use epre_lint::{lint_function, Diagnostic, LintOptions, Report, Severity};
use epre_passes::Pass;

use crate::breaker::{CircuitBreaker, Quarantine};

/// What to do when a pass faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Stop the pipeline and surface the fault as an error.
    FailFast,
    /// Roll the function back to its pre-pass state, record the fault, and
    /// continue with the next pass.
    BestEffort,
    /// Retry the pass once on a fresh clone under a [`Budget::relaxed`]
    /// budget (a safeguard for passes with internal state,
    /// allocation-dependent behaviour, or a merely-too-tight cap), then
    /// skip it as in [`FaultPolicy::BestEffort`].
    RetryThenSkip,
}

impl FaultPolicy {
    /// The policy's CLI label.
    pub fn label(self) -> &'static str {
        match self {
            FaultPolicy::FailFast => "fail-fast",
            FaultPolicy::BestEffort => "best-effort",
            FaultPolicy::RetryThenSkip => "retry-then-skip",
        }
    }
}

/// The outcome of a sandboxed pipeline run over one function or module.
#[derive(Debug, Clone, Default)]
pub struct SandboxReport {
    /// Every contained fault, in pipeline order. A pass that faulted was
    /// rolled back: its effect on the function is void.
    pub faults: Vec<PassFault>,
    /// How many faulting passes were re-run under
    /// [`FaultPolicy::RetryThenSkip`] (whether or not the retry helped).
    pub retries: usize,
    /// Pass invocations skipped because the pass's circuit was open.
    pub skipped: usize,
    /// Passes quarantined by the module's circuit breaker, in trip order.
    pub quarantined: Vec<Quarantine>,
}

impl SandboxReport {
    /// Fold another report's tallies into this one.
    pub fn merge(&mut self, other: SandboxReport) {
        self.faults.extend(other.faults);
        self.retries += other.retries;
        self.skipped += other.skipped;
        self.quarantined.extend(other.quarantined);
    }
}

thread_local! {
    /// When set, the process-wide panic hook stays silent for panics on
    /// this thread — the sandbox expects them and converts them to faults.
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

/// Run `body`, catching any panic and returning its payload as a string.
///
/// The first call installs a process-wide panic-hook shim that suppresses
/// hook output for panics occurring while this thread is inside
/// `catch_quiet` — without it a fuzz campaign injecting thousands of
/// faults would bury real output in backtrace noise. Panics on other
/// threads keep the previous hook's behaviour.
///
/// # Errors
/// The panic payload (downcast to a string where possible).
pub fn catch_quiet<R>(body: impl FnOnce() -> R) -> Result<R, String> {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
    QUIET_PANICS.with(|q| q.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(body));
    QUIET_PANICS.with(|q| q.set(false));
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    })
}

fn fingerprints(report: &Report) -> HashSet<String> {
    report.diagnostics.iter().map(Diagnostic::fingerprint).collect()
}

/// Run `passes` over `f` in order, each invocation sandboxed and governed
/// by `budget`.
///
/// Every pass runs on a clone of `f` under `catch_unwind` via
/// [`Pass::run_budgeted`]; the clone is then re-linted and diffed (by
/// diagnostic fingerprint) against the pre-pass report. Only when the
/// pass neither panicked, nor exceeded the budget, nor introduced a new
/// error-severity finding is the clone committed back to `f` — otherwise
/// `f` keeps its pre-pass state (rollback) and a [`PassFault`] records
/// the incident, subject to `policy`. Under
/// [`FaultPolicy::RetryThenSkip`] the retry attempt runs on a fresh clone
/// under [`Budget::relaxed`].
///
/// When `breaker` is supplied, every recorded fault is counted against
/// its pass, and a pass whose circuit is open is skipped outright
/// (tallied in [`SandboxReport::skipped`]). Pre-existing lint findings
/// belong to the *input* and never fault a pass.
///
/// # Errors
/// Under [`FaultPolicy::FailFast`], the first fault. The other policies
/// always return the accumulated [`SandboxReport`].
pub fn run_passes_governed(
    f: &mut Function,
    passes: &[Box<dyn Pass>],
    policy: FaultPolicy,
    opts: &LintOptions,
    budget: &Budget,
    mut breaker: Option<&mut CircuitBreaker>,
) -> Result<SandboxReport, PassFault> {
    let mut seen = fingerprints(&lint_function(f, opts));
    let mut out = SandboxReport::default();
    for pass in passes {
        if breaker.as_ref().is_some_and(|b| b.is_open(pass.name())) {
            out.skipped += 1;
            continue;
        }
        let mut attempts = 0;
        loop {
            let attempt_budget = if attempts == 0 { *budget } else { budget.relaxed() };
            let base = &*f;
            let run = catch_quiet(|| {
                let mut candidate = base.clone();
                let mut cache = AnalysisCache::new();
                match pass.run_budgeted(&mut candidate, &mut cache, &attempt_budget) {
                    Err(exceeded) => Err(exceeded),
                    Ok(_changed) => {
                        let report = lint_function(&candidate, opts);
                        Ok((candidate, report))
                    }
                }
            });
            let fault = match run {
                Err(payload) => Some(PassFault::panic(pass.name(), &f.name, payload)),
                Ok(Err(exceeded)) => Some(PassFault::budget(pass.name(), &f.name, exceeded)),
                Ok(Ok((candidate, report))) => {
                    let new_errors: Vec<Diagnostic> = report
                        .diagnostics
                        .iter()
                        .filter(|d| {
                            d.severity() == Severity::Error && !seen.contains(&d.fingerprint())
                        })
                        .cloned()
                        .collect();
                    if new_errors.is_empty() {
                        seen = fingerprints(&report);
                        *f = candidate;
                        None
                    } else {
                        Some(PassFault::lint(pass.name(), &f.name, new_errors))
                    }
                }
            };
            match fault {
                None => break,
                Some(fault) => {
                    if let Some(b) = breaker.as_deref_mut() {
                        b.record(&fault.pass, &fault.function);
                    }
                    match policy {
                        FaultPolicy::FailFast => return Err(fault),
                        FaultPolicy::RetryThenSkip if attempts == 0 => {
                            attempts = 1;
                            out.retries += 1;
                            out.faults.push(fault);
                        }
                        _ => {
                            out.faults.push(fault);
                            break;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// [`run_passes_governed`] with the harness-default [`Budget::governed`]
/// and no circuit breaker — the historical sandbox entry point.
///
/// # Errors
/// Under [`FaultPolicy::FailFast`], the first fault.
pub fn run_passes_sandboxed(
    f: &mut Function,
    passes: &[Box<dyn Pass>],
    policy: FaultPolicy,
    opts: &LintOptions,
) -> Result<SandboxReport, PassFault> {
    run_passes_governed(f, passes, policy, opts, &Budget::governed(), None)
}

/// Run a whole module through governed sandboxed pipelines, one pass list
/// per function (fresh-built via `passes_for`, so worker threads never
/// share non-`Sync` pass objects), with a module-wide per-pass
/// [`CircuitBreaker`].
///
/// With `jobs > 1` the functions are optimized speculatively in parallel
/// *as if every circuit were closed*, then reconciled serially in module
/// order: a function whose speculative run either started after a circuit
/// opened or would itself trip one is redone serially under the true
/// breaker state. Healthy modules take zero redos; the output — module,
/// faults, skip tally, quarantine list — is byte-identical to the serial
/// run in every case.
///
/// # Errors
/// Under [`FaultPolicy::FailFast`], the fault of the earliest faulting
/// function in module order.
pub fn run_module_governed(
    module: &Module,
    passes_for: &(dyn Fn() -> Vec<Box<dyn Pass>> + Sync),
    policy: FaultPolicy,
    opts: &LintOptions,
    budget: &Budget,
    breaker_threshold: usize,
    jobs: usize,
) -> Result<(Module, SandboxReport), PassFault> {
    use std::sync::Mutex;

    use epre::WorkShards;

    let n = module.functions.len();
    let mut breaker = CircuitBreaker::new(breaker_threshold);
    let mut out = module.clone();
    let mut report = SandboxReport::default();

    if jobs <= 1 || n <= 1 {
        let passes = passes_for();
        for f in &mut out.functions {
            report.merge(run_passes_governed(f, &passes, policy, opts, budget, Some(&mut breaker))?);
        }
        report.quarantined = breaker.quarantined().to_vec();
        return Ok((out, report));
    }

    let shards = WorkShards::new(n, jobs.min(n));
    type Slot = Mutex<Option<Result<(Function, SandboxReport), PassFault>>>;
    let slots: Vec<Slot> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for w in 0..jobs.min(n) {
            let (shards, slots) = (&shards, &slots);
            s.spawn(move || {
                let passes = passes_for();
                while let Some(i) = shards.pop(w) {
                    let mut f = module.functions[i].clone();
                    let outcome =
                        run_passes_governed(&mut f, &passes, policy, opts, budget, None)
                            .map(|rep| (f, rep));
                    *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                }
            });
        }
    });

    out.functions.clear();
    let mut serial_passes: Option<Vec<Box<dyn Pass>>> = None;
    for (i, slot) in slots.into_iter().enumerate() {
        let speculative =
            slot.into_inner().expect("result slot poisoned").expect("worker filled slot");
        let (f, rep) = speculative?;
        // The worker assumed every circuit was closed. That holds for this
        // function iff nothing was open at its entry and replaying its own
        // faults trips nothing; otherwise redo it under the true state.
        let mut probe = breaker.clone();
        let speculation_holds = !breaker.any_open()
            && !rep.faults.iter().any(|ft| probe.record(&ft.pass, &ft.function));
        if speculation_holds {
            breaker = probe;
            out.functions.push(f);
            report.merge(rep);
        } else {
            let passes = serial_passes.get_or_insert_with(passes_for);
            let mut f = module.functions[i].clone();
            let rep =
                run_passes_governed(&mut f, passes, policy, opts, budget, Some(&mut breaker))?;
            out.functions.push(f);
            report.merge(rep);
        }
    }
    report.quarantined = breaker.quarantined().to_vec();
    Ok((out, report))
}

/// An [`Optimizer`] wrapper whose every pass invocation is sandboxed and
/// budget-governed.
#[derive(Debug, Clone, Copy)]
pub struct SandboxedOptimizer {
    level: OptLevel,
    policy: FaultPolicy,
    budget: Budget,
    breaker_threshold: usize,
}

impl SandboxedOptimizer {
    /// A sandboxed optimizer at `level` under `policy`, with the
    /// deterministic [`Budget::governed`] resource caps and the default
    /// circuit-breaker threshold.
    pub fn new(level: OptLevel, policy: FaultPolicy) -> Self {
        SandboxedOptimizer {
            level,
            policy,
            budget: Budget::governed(),
            breaker_threshold: CircuitBreaker::DEFAULT_THRESHOLD,
        }
    }

    /// The wrapped level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Replace the per-pass resource budget.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// The per-pass resource budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Replace the circuit-breaker fault threshold (clamped to ≥ 1).
    pub fn with_breaker_threshold(mut self, threshold: usize) -> Self {
        self.breaker_threshold = threshold.max(1);
        self
    }

    /// Optimize one function in place with per-pass sandboxing (invariant
    /// lint rules only — intermediate pipeline states legitimately carry
    /// critical edges, dead code, and remaining redundancy). No circuit
    /// breaker: quarantine is a module-scoped decision.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the first fault.
    pub fn optimize_function(&self, f: &mut Function) -> Result<SandboxReport, PassFault> {
        run_passes_governed(
            f,
            &Optimizer::new(self.level).passes(),
            self.policy,
            &LintOptions::invariants_only(),
            &self.budget,
            None,
        )
    }

    /// Optimize a copy of the module with per-pass sandboxing, a shared
    /// per-pass circuit breaker, and the configured budget.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the first fault in any function.
    pub fn optimize(&self, module: &Module) -> Result<(Module, SandboxReport), PassFault> {
        self.optimize_jobs(module, 1)
    }

    /// [`SandboxedOptimizer::optimize`] with up to `jobs` worker threads.
    ///
    /// Functions are distributed over a [`std::thread::scope`] pool and
    /// reconciled in module order (see [`run_module_governed`]), so the
    /// output module — and, because faults are collected per function
    /// before merging, the report's fault order and the breaker's trip
    /// points — is deterministic and identical to the serial run. The
    /// panic-quieting hook in [`catch_quiet`] is keyed on a thread-local
    /// flag, so each worker's contained panics stay silent without
    /// affecting its siblings. `jobs <= 1` takes the exact serial path.
    ///
    /// # Errors
    /// Under [`FaultPolicy::FailFast`], the fault of the earliest faulting
    /// function in module order.
    pub fn optimize_jobs(
        &self,
        module: &Module,
        jobs: usize,
    ) -> Result<(Module, SandboxReport), PassFault> {
        run_module_governed(
            module,
            &|| Optimizer::new(self.level).passes(),
            self.policy,
            &LintOptions::invariants_only(),
            &self.budget,
            self.breaker_threshold,
            jobs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre::fault::FaultKind;
    use epre::BudgetKind;
    use epre_ir::{BinOp, FunctionBuilder, Inst, Ty};
    use epre_passes::passes::{ConstProp, Dce};
    use epre_passes::BudgetExceeded;

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("s", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.bin(BinOp::Add, Ty::Int, x, x);
        let z = b.bin(BinOp::Add, Ty::Int, y, x);
        b.ret(Some(z));
        b.finish()
    }

    fn named(name: &str) -> Function {
        let mut b = FunctionBuilder::new(name, Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.bin(BinOp::Add, Ty::Int, x, x);
        b.ret(Some(y));
        b.finish()
    }

    /// A pass that always panics.
    struct Bomb;
    impl Pass for Bomb {
        fn name(&self) -> &'static str {
            "bomb"
        }
        fn run(&self, _f: &mut Function) -> bool {
            panic!("deliberate detonation");
        }
    }

    /// A pass that introduces a use of a never-defined register.
    struct UseGhost;
    impl Pass for UseGhost {
        fn name(&self) -> &'static str {
            "use-ghost"
        }
        fn run(&self, f: &mut Function) -> bool {
            let dst = f.new_reg(Ty::Int);
            let ghost = f.new_reg(Ty::Int);
            f.blocks[0].insts.push(Inst::Copy { dst, src: ghost });
            true
        }
    }

    /// A fixed-point pass that needs exactly `need` cooperative ticks.
    struct Spinner {
        need: u64,
    }
    impl Pass for Spinner {
        fn name(&self) -> &'static str {
            "spinner"
        }
        fn run(&self, _f: &mut Function) -> bool {
            false
        }
        fn run_budgeted(
            &self,
            f: &mut Function,
            _cache: &mut AnalysisCache,
            budget: &Budget,
        ) -> Result<bool, BudgetExceeded> {
            let mut meter = budget.start(f);
            for _ in 0..self.need {
                meter.tick(f)?;
            }
            Ok(false)
        }
    }

    #[test]
    fn panic_is_contained_and_rolled_back() {
        let mut f = sample();
        let before = f.clone();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Bomb), Box::new(ConstProp)];
        let rep = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
        )
        .unwrap();
        assert_eq!(rep.faults.len(), 1);
        assert_eq!(rep.faults[0].pass, "bomb");
        assert!(matches!(&rep.faults[0].kind, FaultKind::Panic(p) if p.contains("detonation")));
        // The bomb's (nonexistent) effect was rolled back; constprop still ran.
        assert!(f.verify().is_ok());
        assert_eq!(f.params, before.params);
    }

    #[test]
    fn lint_violation_is_contained_and_rolled_back() {
        let mut f = sample();
        let before = f.clone();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(UseGhost)];
        let rep = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
        )
        .unwrap();
        assert_eq!(rep.faults.len(), 1);
        assert!(matches!(&rep.faults[0].kind, FaultKind::Lint(errs) if !errs.is_empty()));
        assert_eq!(f, before, "rollback must restore the pre-pass IR exactly");
    }

    #[test]
    fn budget_exhaustion_is_contained_and_rolled_back() {
        let mut f = sample();
        let before = f.clone();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Spinner { need: u64::MAX })];
        let budget = Budget { max_iters: Some(100), ..Budget::UNLIMITED };
        let rep = run_passes_governed(
            &mut f,
            &passes,
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
            &budget,
            None,
        )
        .unwrap();
        assert_eq!(rep.faults.len(), 1);
        assert_eq!(rep.faults[0].kind_label(), "budget");
        assert!(matches!(
            &rep.faults[0].kind,
            FaultKind::Budget(e) if e.kind == BudgetKind::Iterations
        ));
        assert_eq!(f, before, "over-budget attempt must be rolled back");
    }

    #[test]
    fn retry_runs_under_a_relaxed_budget() {
        // 150 ticks: over the 100-iteration budget, within the relaxed 200.
        let mut f = sample();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Spinner { need: 150 })];
        let budget = Budget { max_iters: Some(100), ..Budget::UNLIMITED };
        let rep = run_passes_governed(
            &mut f,
            &passes,
            FaultPolicy::RetryThenSkip,
            &LintOptions::invariants_only(),
            &budget,
            None,
        )
        .unwrap();
        assert_eq!(rep.retries, 1);
        assert_eq!(rep.faults.len(), 1, "first attempt faults; relaxed retry succeeds");
        assert_eq!(rep.faults[0].kind_label(), "budget");
    }

    #[test]
    fn fail_fast_surfaces_the_fault() {
        let mut f = sample();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Dce), Box::new(Bomb)];
        let e = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::FailFast,
            &LintOptions::invariants_only(),
        )
        .unwrap_err();
        assert_eq!(e.pass, "bomb");
    }

    #[test]
    fn retry_then_skip_counts_the_retry() {
        let mut f = sample();
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Bomb)];
        let rep = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::RetryThenSkip,
            &LintOptions::invariants_only(),
        )
        .unwrap();
        assert_eq!(rep.retries, 1);
        assert_eq!(rep.faults.len(), 2, "one fault per attempt");
    }

    #[test]
    fn preexisting_violations_do_not_fault_passes() {
        // A function that is already broken on input: the fault belongs to
        // the input, and a well-behaved pass must not be blamed for it.
        let mut f = Function::new("broken", None);
        let dst = f.new_reg(Ty::Int);
        let ghost = f.new_reg(Ty::Int);
        let mut blk = epre_ir::Block::new(epre_ir::Terminator::Return { value: None });
        blk.insts.push(Inst::Copy { dst, src: ghost });
        f.add_block(blk);
        struct Nop;
        impl Pass for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn run(&self, _f: &mut Function) -> bool {
                false
            }
        }
        let passes: Vec<Box<dyn Pass>> = vec![Box::new(Nop)];
        let rep = run_passes_sandboxed(
            &mut f,
            &passes,
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
        )
        .unwrap();
        assert!(rep.faults.is_empty());
    }

    #[test]
    fn breaker_quarantines_a_repeatedly_faulting_pass() {
        let mut m = Module::new();
        for name in ["a", "b", "c", "d", "e"] {
            m.functions.push(named(name));
        }
        let (out, rep) = run_module_governed(
            &m,
            &|| vec![Box::new(Bomb) as Box<dyn Pass>, Box::new(ConstProp)],
            FaultPolicy::BestEffort,
            &LintOptions::invariants_only(),
            &Budget::governed(),
            2,
            1,
        )
        .unwrap();
        // The bomb faults in `a` and `b`, trips at 2, and is skipped for
        // the remaining three functions.
        assert_eq!(rep.faults.len(), 2, "{:?}", rep.faults);
        assert_eq!(rep.skipped, 3);
        assert_eq!(rep.quarantined.len(), 1);
        assert_eq!(rep.quarantined[0].pass, "bomb");
        assert_eq!(rep.quarantined[0].tripped_in, "b");
        assert_eq!(out.functions.len(), 5);
    }

    #[test]
    fn breaker_parallel_matches_serial_exactly() {
        let mut m = Module::new();
        for name in ["a", "b", "c", "d", "e", "f", "g"] {
            m.functions.push(named(name));
        }
        let passes_for =
            || vec![Box::new(Bomb) as Box<dyn Pass>, Box::new(ConstProp), Box::new(Dce)];
        let opts = LintOptions::invariants_only();
        let budget = Budget::governed();
        let (m1, r1) = run_module_governed(
            &m, &passes_for, FaultPolicy::BestEffort, &opts, &budget, 3, 1,
        )
        .unwrap();
        for jobs in [2, 4, 8] {
            let (mj, rj) = run_module_governed(
                &m, &passes_for, FaultPolicy::BestEffort, &opts, &budget, 3, jobs,
            )
            .unwrap();
            assert_eq!(format!("{m1}"), format!("{mj}"), "module differs at jobs={jobs}");
            assert_eq!(r1.faults.len(), rj.faults.len(), "fault count at jobs={jobs}");
            for (a, b) in r1.faults.iter().zip(&rj.faults) {
                assert_eq!(format!("{a}"), format!("{b}"), "fault order at jobs={jobs}");
            }
            assert_eq!(r1.skipped, rj.skipped, "skip tally at jobs={jobs}");
            assert_eq!(r1.quarantined, rj.quarantined, "quarantine list at jobs={jobs}");
        }
    }

    #[test]
    fn sandboxed_optimizer_matches_plain_pipeline_on_clean_input() {
        let mut m = Module::new();
        m.functions.push(sample());
        let sandboxed = SandboxedOptimizer::new(OptLevel::Distribution, FaultPolicy::BestEffort);
        let (out, rep) = sandboxed.optimize(&m).unwrap();
        assert!(rep.faults.is_empty(), "{:?}", rep.faults);
        assert!(rep.quarantined.is_empty());
        let plain = Optimizer::new(OptLevel::Distribution).optimize(&m);
        assert_eq!(format!("{out}"), format!("{plain}"));
    }
}
