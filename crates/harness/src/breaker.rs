//! Per-pass circuit breakers: after a pass has faulted `threshold` times
//! across the functions of one module, stop invoking it for the rest of
//! that module.
//!
//! The sandbox already contains each individual fault, but a pass that is
//! broken *everywhere* — a miscompiled build, a bad interaction with one
//! module's code shapes — would otherwise burn a clone, a `catch_unwind`,
//! and a full re-lint on every remaining function just to fault again.
//! The breaker converts that repeated cost into a single decision:
//! quarantine the pass, record the quarantine in the fault report, and
//! keep the rest of the pipeline running. Quarantine is scoped to one
//! module run; a fresh [`CircuitBreaker`] starts closed.
//!
//! Fault counts are deterministic (they come from the sandbox's fault
//! list, which is itself deterministic per function), so the breaker's
//! trip point is reproducible — the parallel module driver exploits this
//! by replaying the counts serially in module order; see
//! [`crate::sandbox::SandboxedOptimizer::optimize_jobs`].

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Mutex;

/// A pass quarantined by the breaker: the evidence for the decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// The quarantined pass.
    pub pass: String,
    /// How many faults it had accumulated when the circuit opened.
    pub faults: usize,
    /// The function whose fault tripped the breaker.
    pub tripped_in: String,
}

impl std::fmt::Display for Quarantine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pass `{}` quarantined after {} fault(s) (tripped in `{}`)",
            self.pass, self.faults, self.tripped_in
        )
    }
}

/// Per-pass fault counters with a trip threshold.
///
/// The threshold boundary is **inclusive**: the `threshold`-th recorded
/// fault of a pass is the one that trips its circuit (with the default
/// threshold of 3, the 3rd fault quarantines the pass — not the 4th).
/// Equivalently, a pass survives at most `threshold - 1` faults.
///
/// Counts are capped at the threshold: once a pass's circuit is open,
/// further [`CircuitBreaker::record`] calls for it are no-ops, so equal
/// fault *prefixes* produce equal breaker states regardless of how many
/// redundant faults a caller replays afterwards.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: usize,
    counts: BTreeMap<String, usize>,
    quarantined: Vec<Quarantine>,
}

impl CircuitBreaker {
    /// Default trip threshold: faults from three distinct invocations are
    /// a pattern, not an accident.
    pub const DEFAULT_THRESHOLD: usize = 3;

    /// A closed breaker tripping after `threshold` faults per pass.
    /// `threshold = 0` is clamped to 1 (a breaker that starts open would
    /// silently skip every pass).
    pub fn new(threshold: usize) -> Self {
        CircuitBreaker { threshold: threshold.max(1), counts: BTreeMap::new(), quarantined: Vec::new() }
    }

    /// The configured trip threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Is `pass`'s circuit open (the pass quarantined)?
    pub fn is_open(&self, pass: &str) -> bool {
        self.counts.get(pass).is_some_and(|&n| n >= self.threshold)
    }

    /// Is any circuit open?
    pub fn any_open(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Record one fault of `pass` while processing `function`. Returns
    /// `true` exactly when this fault tripped the breaker (the pass is
    /// quarantined from now on). No-op when the circuit is already open.
    ///
    /// The trip boundary is inclusive: this call trips iff it brings the
    /// pass's count *up to* the threshold, so the `threshold`-th fault is
    /// the tripping one and the count never exceeds the threshold.
    pub fn record(&mut self, pass: &str, function: &str) -> bool {
        if self.is_open(pass) {
            return false;
        }
        let n = self.counts.entry(pass.to_string()).or_insert(0);
        *n += 1;
        if *n >= self.threshold {
            self.quarantined.push(Quarantine {
                pass: pass.to_string(),
                faults: *n,
                tripped_in: function.to_string(),
            });
            true
        } else {
            false
        }
    }

    /// Every quarantine decision, in trip order.
    pub fn quarantined(&self) -> &[Quarantine] {
        &self.quarantined
    }

    /// Current fault count for `pass` (capped at the threshold).
    pub fn faults_of(&self, pass: &str) -> usize {
        self.counts.get(pass).copied().unwrap_or(0)
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(Self::DEFAULT_THRESHOLD)
    }
}

/// What one [`ServeQuarantine::record`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineOutcome {
    /// The (client, pass, module) evidence was already on record, or the
    /// client's quarantine is already open: nothing changed.
    Duplicate,
    /// New evidence was recorded; the client stays admitted.
    Evidence,
    /// New evidence was recorded and it tripped the client's quarantine.
    Tripped,
}

/// The per-pass circuit breaker promoted to fleet scope: a thread-safe,
/// idempotent per-*client* quarantine ledger for the serve daemon.
///
/// A module-scoped [`CircuitBreaker`] protects one optimization run from
/// one bad pass; a long-lived server needs the same decision one level
/// up — a client that keeps submitting poisoned modules must stop
/// costing sandbox clones, re-lints, and oracle runs for the whole
/// fleet. Evidence is the distinct set of `(pass, module fingerprint)`
/// pairs that faulted for a client; when a client accumulates
/// `threshold` distinct pieces of evidence its quarantine opens and the
/// server rejects its requests with a typed `quarantined` response
/// instead of doing work.
///
/// Recording is **idempotent**: concurrent workers faulting the same
/// pass on the same module report the same evidence, and exactly one
/// entry lands in the ledger (the rest observe
/// [`QuarantineOutcome::Duplicate`]). The trip boundary is inclusive,
/// matching [`CircuitBreaker`]: the `threshold`-th distinct piece of
/// evidence trips, and evidence counts never exceed the threshold.
#[derive(Debug, Default)]
pub struct ServeQuarantine {
    threshold: usize,
    state: Mutex<ServeState>,
}

#[derive(Debug, Default)]
struct ServeState {
    /// Distinct `(pass, module fingerprint)` fault evidence per client.
    evidence: BTreeMap<String, BTreeSet<(String, String)>>,
    /// Clients whose quarantine is open, in trip order.
    open: Vec<String>,
}

impl ServeQuarantine {
    /// A ledger tripping a client after `threshold` distinct pieces of
    /// evidence (clamped to ≥ 1, like [`CircuitBreaker::new`]).
    pub fn new(threshold: usize) -> Self {
        ServeQuarantine { threshold: threshold.max(1), state: Mutex::new(ServeState::default()) }
    }

    /// The configured trip threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Is `client` quarantined?
    pub fn is_open(&self, client: &str) -> bool {
        self.state.lock().expect("quarantine ledger poisoned").open.iter().any(|c| c == client)
    }

    /// Record that `pass` faulted while optimizing the module
    /// fingerprinted `module_fp` for `client`. Idempotent per
    /// `(client, pass, module_fp)` triple and a no-op once the client's
    /// quarantine is open.
    pub fn record(&self, client: &str, pass: &str, module_fp: &str) -> QuarantineOutcome {
        let mut st = self.state.lock().expect("quarantine ledger poisoned");
        if st.open.iter().any(|c| c == client) {
            return QuarantineOutcome::Duplicate;
        }
        let set = st.evidence.entry(client.to_string()).or_default();
        if !set.insert((pass.to_string(), module_fp.to_string())) {
            return QuarantineOutcome::Duplicate;
        }
        if set.len() >= self.threshold {
            st.open.push(client.to_string());
            QuarantineOutcome::Tripped
        } else {
            QuarantineOutcome::Evidence
        }
    }

    /// How many distinct pieces of evidence `client` has accumulated
    /// (capped at the threshold — evidence past the trip is not stored).
    pub fn evidence_of(&self, client: &str) -> usize {
        self.state
            .lock()
            .expect("quarantine ledger poisoned")
            .evidence
            .get(client)
            .map_or(0, BTreeSet::len)
    }

    /// Quarantined clients, in trip order.
    pub fn open_clients(&self) -> Vec<String> {
        self.state.lock().expect("quarantine ledger poisoned").open.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_exactly_at_threshold() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record("gvn", "f1"));
        assert!(!b.record("gvn", "f2"));
        assert!(!b.is_open("gvn"));
        assert!(b.record("gvn", "f3"), "third fault must trip");
        assert!(b.is_open("gvn"));
        assert_eq!(b.quarantined().len(), 1);
        assert_eq!(b.quarantined()[0].tripped_in, "f3");
        assert_eq!(b.quarantined()[0].faults, 3);
    }

    #[test]
    fn counts_are_per_pass() {
        let mut b = CircuitBreaker::new(2);
        b.record("gvn", "f");
        b.record("pre", "f");
        assert!(!b.is_open("gvn") && !b.is_open("pre"));
        b.record("gvn", "g");
        assert!(b.is_open("gvn"));
        assert!(!b.is_open("pre"));
    }

    #[test]
    fn open_circuit_absorbs_further_faults() {
        let mut b = CircuitBreaker::new(1);
        assert!(b.record("dce", "f"));
        assert!(!b.record("dce", "g"), "already open: no second trip");
        assert_eq!(b.faults_of("dce"), 1, "count capped at threshold");
        assert_eq!(b.quarantined().len(), 1);
    }

    #[test]
    fn zero_threshold_is_clamped() {
        let b = CircuitBreaker::new(0);
        assert_eq!(b.threshold(), 1);
        assert!(!b.is_open("anything"));
    }

    /// The boundary is inclusive: with the default threshold of 3, the
    /// 3rd fault trips — the circuit must already be open before a 4th
    /// fault could be recorded.
    #[test]
    fn third_fault_trips_not_the_fourth() {
        let mut b = CircuitBreaker::default();
        assert_eq!(b.threshold(), 3);
        assert!(!b.record("pre", "f1"), "1st fault must not trip");
        assert!(!b.record("pre", "f2"), "2nd fault must not trip");
        assert!(b.record("pre", "f3"), "3rd fault is the tripping one");
        assert!(!b.record("pre", "f4"), "4th fault finds the circuit already open");
        assert_eq!(b.quarantined().len(), 1, "one quarantine decision, not two");
        assert_eq!(b.quarantined()[0].tripped_in, "f3");
    }

    /// Saturation: counts are capped *at* the threshold no matter how
    /// many redundant faults are replayed, so a breaker that absorbed a
    /// long redundant tail is indistinguishable from one that saw only
    /// the tripping prefix (the property the parallel driver's serial
    /// replay relies on).
    #[test]
    fn capped_counts_saturate_at_the_threshold() {
        let mut long = CircuitBreaker::new(3);
        for i in 0..10 {
            long.record("gvn", &format!("f{i}"));
        }
        let mut prefix = CircuitBreaker::new(3);
        for i in 0..3 {
            prefix.record("gvn", &format!("f{i}"));
        }
        assert_eq!(long.faults_of("gvn"), 3, "count must saturate at the threshold");
        assert_eq!(long.faults_of("gvn"), prefix.faults_of("gvn"));
        assert_eq!(long.quarantined(), prefix.quarantined(), "redundant tail must be invisible");
        assert!(long.is_open("gvn") && prefix.is_open("gvn"));
    }

    #[test]
    fn serve_quarantine_trips_on_distinct_evidence() {
        let q = ServeQuarantine::new(2);
        assert_eq!(q.record("alice", "pre", "aaaa"), QuarantineOutcome::Evidence);
        assert!(!q.is_open("alice"));
        // Same pass, same module: idempotent, not new evidence.
        assert_eq!(q.record("alice", "pre", "aaaa"), QuarantineOutcome::Duplicate);
        assert_eq!(q.evidence_of("alice"), 1);
        // A different module from the same client is new evidence — trip.
        assert_eq!(q.record("alice", "pre", "bbbb"), QuarantineOutcome::Tripped);
        assert!(q.is_open("alice"));
        // Once open, everything is absorbed.
        assert_eq!(q.record("alice", "gvn", "cccc"), QuarantineOutcome::Duplicate);
        assert_eq!(q.evidence_of("alice"), 2, "evidence capped at the threshold");
        // Other clients are unaffected.
        assert!(!q.is_open("bob"));
        assert_eq!(q.open_clients(), ["alice"]);
    }

    /// The serve-path idempotence contract: N workers racing to record
    /// the *same* (client, pass, module) fault produce exactly one ledger
    /// entry — one non-duplicate outcome, evidence count 1.
    #[test]
    fn serve_quarantine_concurrent_duplicates_record_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = ServeQuarantine::new(3);
        let recorded = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    if q.record("mallory", "pre", "deadbeef") != QuarantineOutcome::Duplicate {
                        recorded.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(recorded.load(Ordering::Relaxed), 1, "exactly one entry may land");
        assert_eq!(q.evidence_of("mallory"), 1);
        assert!(!q.is_open("mallory"), "one piece of evidence must not trip a threshold of 3");
    }
}
