//! Per-pass circuit breakers: after a pass has faulted `threshold` times
//! across the functions of one module, stop invoking it for the rest of
//! that module.
//!
//! The sandbox already contains each individual fault, but a pass that is
//! broken *everywhere* — a miscompiled build, a bad interaction with one
//! module's code shapes — would otherwise burn a clone, a `catch_unwind`,
//! and a full re-lint on every remaining function just to fault again.
//! The breaker converts that repeated cost into a single decision:
//! quarantine the pass, record the quarantine in the fault report, and
//! keep the rest of the pipeline running. Quarantine is scoped to one
//! module run; a fresh [`CircuitBreaker`] starts closed.
//!
//! Fault counts are deterministic (they come from the sandbox's fault
//! list, which is itself deterministic per function), so the breaker's
//! trip point is reproducible — the parallel module driver exploits this
//! by replaying the counts serially in module order; see
//! [`crate::sandbox::SandboxedOptimizer::optimize_jobs`].

use std::collections::BTreeMap;

/// A pass quarantined by the breaker: the evidence for the decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// The quarantined pass.
    pub pass: String,
    /// How many faults it had accumulated when the circuit opened.
    pub faults: usize,
    /// The function whose fault tripped the breaker.
    pub tripped_in: String,
}

impl std::fmt::Display for Quarantine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pass `{}` quarantined after {} fault(s) (tripped in `{}`)",
            self.pass, self.faults, self.tripped_in
        )
    }
}

/// Per-pass fault counters with a trip threshold.
///
/// Counts are capped at the threshold: once a pass's circuit is open,
/// further [`CircuitBreaker::record`] calls for it are no-ops, so equal
/// fault *prefixes* produce equal breaker states regardless of how many
/// redundant faults a caller replays afterwards.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    threshold: usize,
    counts: BTreeMap<String, usize>,
    quarantined: Vec<Quarantine>,
}

impl CircuitBreaker {
    /// Default trip threshold: faults from three distinct invocations are
    /// a pattern, not an accident.
    pub const DEFAULT_THRESHOLD: usize = 3;

    /// A closed breaker tripping after `threshold` faults per pass.
    /// `threshold = 0` is clamped to 1 (a breaker that starts open would
    /// silently skip every pass).
    pub fn new(threshold: usize) -> Self {
        CircuitBreaker { threshold: threshold.max(1), counts: BTreeMap::new(), quarantined: Vec::new() }
    }

    /// The configured trip threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Is `pass`'s circuit open (the pass quarantined)?
    pub fn is_open(&self, pass: &str) -> bool {
        self.counts.get(pass).is_some_and(|&n| n >= self.threshold)
    }

    /// Is any circuit open?
    pub fn any_open(&self) -> bool {
        !self.quarantined.is_empty()
    }

    /// Record one fault of `pass` while processing `function`. Returns
    /// `true` exactly when this fault tripped the breaker (the pass is
    /// quarantined from now on). No-op when the circuit is already open.
    pub fn record(&mut self, pass: &str, function: &str) -> bool {
        if self.is_open(pass) {
            return false;
        }
        let n = self.counts.entry(pass.to_string()).or_insert(0);
        *n += 1;
        if *n >= self.threshold {
            self.quarantined.push(Quarantine {
                pass: pass.to_string(),
                faults: *n,
                tripped_in: function.to_string(),
            });
            true
        } else {
            false
        }
    }

    /// Every quarantine decision, in trip order.
    pub fn quarantined(&self) -> &[Quarantine] {
        &self.quarantined
    }

    /// Current fault count for `pass` (capped at the threshold).
    pub fn faults_of(&self, pass: &str) -> usize {
        self.counts.get(pass).copied().unwrap_or(0)
    }
}

impl Default for CircuitBreaker {
    fn default() -> Self {
        CircuitBreaker::new(Self::DEFAULT_THRESHOLD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_exactly_at_threshold() {
        let mut b = CircuitBreaker::new(3);
        assert!(!b.record("gvn", "f1"));
        assert!(!b.record("gvn", "f2"));
        assert!(!b.is_open("gvn"));
        assert!(b.record("gvn", "f3"), "third fault must trip");
        assert!(b.is_open("gvn"));
        assert_eq!(b.quarantined().len(), 1);
        assert_eq!(b.quarantined()[0].tripped_in, "f3");
        assert_eq!(b.quarantined()[0].faults, 3);
    }

    #[test]
    fn counts_are_per_pass() {
        let mut b = CircuitBreaker::new(2);
        b.record("gvn", "f");
        b.record("pre", "f");
        assert!(!b.is_open("gvn") && !b.is_open("pre"));
        b.record("gvn", "g");
        assert!(b.is_open("gvn"));
        assert!(!b.is_open("pre"));
    }

    #[test]
    fn open_circuit_absorbs_further_faults() {
        let mut b = CircuitBreaker::new(1);
        assert!(b.record("dce", "f"));
        assert!(!b.record("dce", "g"), "already open: no second trip");
        assert_eq!(b.faults_of("dce"), 1, "count capped at threshold");
        assert_eq!(b.quarantined().len(), 1);
    }

    #[test]
    fn zero_threshold_is_clamped() {
        let b = CircuitBreaker::new(0);
        assert_eq!(b.threshold(), 1);
        assert!(!b.is_open("anything"));
    }
}
