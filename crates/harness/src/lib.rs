//! # epre-harness — the fault-tolerant optimizer harness
//!
//! Everything the pipeline needs to *survive its own bugs*, layered on
//! the typed [`PassFault`](epre::fault::PassFault) route of `epre` and
//! the invariant rules of `epre-lint`:
//!
//! * [`sandbox`] — every pass runs on a clone under
//!   `std::panic::catch_unwind` and a resource
//!   [`Budget`](epre::Budget), and is re-linted; on panic, budget
//!   exhaustion, or new invariant violation the function rolls back to
//!   its pre-pass state and the pipeline continues, per a
//!   [`FaultPolicy`],
//! * [`breaker`] — per-pass circuit breakers: a pass that faults in
//!   enough functions of one module is quarantined for the rest of it,
//! * [`watchdog`] — a supervised worker pool that rolls back any
//!   function whose worker overruns a wall-clock deadline, even in
//!   non-cooperative code,
//! * [`oracle`] — differential execution of unoptimized vs. optimized
//!   modules on seeded inputs under bounded fuel, reporting value or
//!   error-variant divergence as a miscompile and tallying out-of-fuel
//!   comparisons as inconclusive,
//! * [`harden`] — the combination: sandboxed passes plus oracle-driven
//!   *semantic* rollback of any function whose optimized form diverges,
//! * [`journal`] — a write-ahead journal of finished functions, so a
//!   killed `epre opt --journal` run resumes byte-identically,
//! * [`events`] — adapters rendering the reports above as telemetry
//!   trace events for `epre opt --trace`,
//! * [`inject`] — a seeded, deterministic fault-injection mutator
//!   modelling realistic optimizer bugs, plus adversarial pass models
//!   (non-terminating, unbounded growth) only a budget can stop,
//! * [`fuzz`] — the campaign that proves the containment stack holds:
//!   every injected fault is caught, rolled back, or shown harmless,
//! * [`reduce`] — a ddmin-style reducer that shrinks a failing module
//!   (functions, then instructions, then blocks, then operands) while a
//!   [`FailureSpec`] keeps holding.
//!
//! ```
//! use epre::OptLevel;
//! use epre_frontend::{compile, NamingMode};
//! use epre_harness::{FaultPolicy, Harness};
//!
//! let src = "function foo(y, z)\n\
//!            real y, z, x\n\
//!            begin\n\
//!            x = y + z\n\
//!            return x * x\nend\n";
//! let module = compile(src, NamingMode::Disciplined).unwrap();
//! let harness = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort);
//! let out = harness.optimize(&module).unwrap();
//! assert!(out.is_clean());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod breaker;
pub mod events;
pub mod fuzz;
pub mod harden;
pub mod inject;
pub mod journal;
pub mod oracle;
pub mod reduce;
pub mod rng;
pub mod sandbox;
pub mod watchdog;

pub use breaker::{CircuitBreaker, Quarantine, QuarantineOutcome, ServeQuarantine};
pub use events::{harden_events, journal_events};
pub use fuzz::{run_campaign, CampaignConfig, CampaignReport, Containment, ALL_LEVELS};
pub use harden::{HardenedOutput, Harness, JournalError, JournaledOutcome};
pub use inject::{mutate_module, Mutation, MutationKind, PassFaultModel};
pub use journal::{
    header_line, load_journal, record_len, rewrite_staging_path, JournalEntry, JournalLoad,
    JournalWriter, ResumeState, JOURNAL_MAGIC,
};
pub use oracle::{
    classify, compare_modules, compare_modules_detailed, Agreement, Divergence, Observed,
    OracleConfig, OracleOutcome,
};
pub use reduce::{reduce, FailureSpec, ReduceStats};
pub use rng::{fingerprint64, SplitMix64};
pub use sandbox::{
    catch_quiet, run_module_governed, run_passes_governed, run_passes_sandboxed, FaultPolicy,
    SandboxReport, SandboxedOptimizer,
};
pub use watchdog::{optimize_module_watchdog, WatchdogConfig, WATCHDOG_PASS};
