//! # epre-harness — the fault-tolerant optimizer harness
//!
//! Everything the pipeline needs to *survive its own bugs*, layered on
//! the typed [`PassFault`](epre::fault::PassFault) route of `epre` and
//! the invariant rules of `epre-lint`:
//!
//! * [`sandbox`] — every pass runs on a clone under
//!   `std::panic::catch_unwind` and is re-linted; on panic or new
//!   invariant violation the function rolls back to its pre-pass state
//!   and the pipeline continues, per a [`FaultPolicy`],
//! * [`oracle`] — differential execution of unoptimized vs. optimized
//!   modules on seeded inputs under bounded fuel, reporting value or
//!   error-variant divergence as a miscompile,
//! * [`harden`] — the combination: sandboxed passes plus oracle-driven
//!   *semantic* rollback of any function whose optimized form diverges,
//! * [`inject`] — a seeded, deterministic fault-injection mutator
//!   modelling realistic optimizer bugs,
//! * [`fuzz`] — the campaign that proves the containment stack holds:
//!   every injected fault is caught, rolled back, or shown harmless,
//! * [`reduce`] — a ddmin-style reducer that shrinks a failing module
//!   (functions, then instructions, then blocks, then operands) while a
//!   [`FailureSpec`] keeps holding.
//!
//! ```
//! use epre::OptLevel;
//! use epre_frontend::{compile, NamingMode};
//! use epre_harness::{FaultPolicy, Harness};
//!
//! let src = "function foo(y, z)\n\
//!            real y, z, x\n\
//!            begin\n\
//!            x = y + z\n\
//!            return x * x\nend\n";
//! let module = compile(src, NamingMode::Disciplined).unwrap();
//! let harness = Harness::new(OptLevel::Distribution, FaultPolicy::BestEffort);
//! let out = harness.optimize(&module).unwrap();
//! assert!(out.is_clean());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fuzz;
pub mod harden;
pub mod inject;
pub mod oracle;
pub mod reduce;
pub mod rng;
pub mod sandbox;

pub use fuzz::{run_campaign, CampaignConfig, CampaignReport, Containment, ALL_LEVELS};
pub use harden::{HardenedOutput, Harness};
pub use inject::{mutate_module, Mutation, MutationKind};
pub use oracle::{compare_modules, Divergence, Observed, OracleConfig};
pub use reduce::{reduce, FailureSpec, ReduceStats};
pub use rng::SplitMix64;
pub use sandbox::{catch_quiet, run_passes_sandboxed, FaultPolicy, SandboxReport, SandboxedOptimizer};
