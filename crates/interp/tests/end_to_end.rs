//! End-to-end tests: mini-FORTRAN source → ILOC → interpreter.
//!
//! These pin down the language semantics that every optimization level
//! must preserve; `epre-passes` re-runs many of the same programs after
//! each pass and compares results.

use epre_frontend::{compile, NamingMode};
use epre_interp::{Interpreter, Value};

fn run(src: &str, func: &str, args: &[Value], mode: NamingMode) -> Value {
    let m = compile(src, mode).unwrap();
    let mut i = Interpreter::new(&m);
    i.run(func, args).unwrap().expect("function returns a value")
}

fn run_both(src: &str, func: &str, args: &[Value]) -> Value {
    let a = run(src, func, args, NamingMode::Simple);
    let b = run(src, func, args, NamingMode::Disciplined);
    assert_eq!(a, b, "naming mode must not change semantics");
    a
}

#[test]
fn paper_figure2_foo() {
    // Figure 2: s accumulates i + s + x over i = x .. 100.
    let src = "function foo(y, z)\n\
               real y, z, s, x\n\
               integer i\n\
               begin\n\
               s = 0\n\
               x = y + z\n\
               do i = x, 100\n\
                 s = i + s + x\n\
               enddo\n\
               return s\n\
               end\n";
    // y + z = 3 -> i runs 3..=100, s = sum(i) + 98*x = 5047 + 294
    let v = run_both(src, "foo", &[Value::Float(1.0), Value::Float(2.0)]);
    let expected: f64 = (3..=100).map(|i| i as f64).sum::<f64>() + 98.0 * 3.0;
    assert_eq!(v, Value::Float(expected));
}

#[test]
fn do_loop_zero_trips() {
    let src = "function f(n)\ninteger f, n, i, s\nbegin\ns = 0\ndo i = 1, n\ns = s + i\nenddo\nreturn s\nend\n";
    assert_eq!(run_both(src, "f", &[Value::Int(0)]), Value::Int(0));
    assert_eq!(run_both(src, "f", &[Value::Int(5)]), Value::Int(15));
}

#[test]
fn do_loop_negative_step() {
    let src = "function f(n)\ninteger f, n, i, s\nbegin\ns = 0\ndo i = n, 1, -1\ns = s + i\nenddo\nreturn s\nend\n";
    assert_eq!(run_both(src, "f", &[Value::Int(4)]), Value::Int(10));
    assert_eq!(run_both(src, "f", &[Value::Int(0)]), Value::Int(0));
}

#[test]
fn while_and_if_chain() {
    // Collatz step count.
    let src = "function steps(n)\ninteger steps, n, k\nbegin\n\
               k = 0\n\
               while n != 1 do\n\
                 if mod(n, 2) == 0 then\n\
                   n = n / 2\n\
                 else\n\
                   n = 3 * n + 1\n\
                 endif\n\
                 k = k + 1\n\
               endwhile\n\
               return k\nend\n";
    assert_eq!(run_both(src, "steps", &[Value::Int(6)]), Value::Int(8));
    assert_eq!(run_both(src, "steps", &[Value::Int(1)]), Value::Int(0));
}

#[test]
fn elseif_ladder() {
    let src = "function cls(x)\nreal x\ninteger cls\nbegin\n\
               if x < 0 then\n return -1\n\
               elseif x == 0 then\n return 0\n\
               elseif x < 10 then\n return 1\n\
               else\n return 2\n\
               endif\nend\n";
    assert_eq!(run_both(src, "cls", &[Value::Float(-3.0)]), Value::Int(-1));
    assert_eq!(run_both(src, "cls", &[Value::Float(0.0)]), Value::Int(0));
    assert_eq!(run_both(src, "cls", &[Value::Float(5.0)]), Value::Int(1));
    assert_eq!(run_both(src, "cls", &[Value::Float(50.0)]), Value::Int(2));
}

#[test]
fn arrays_two_dimensional() {
    // m(i,j) = i*10 + j, then sum a row.
    let src = "function f()\n\
               real m(8, 8)\n\
               integer i, j\n\
               real s\n\
               begin\n\
               do i = 1, 8\n\
                 do j = 1, 8\n\
                   m(i, j) = i * 10 + j\n\
                 enddo\n\
               enddo\n\
               s = 0\n\
               do j = 1, 8\n\
                 s = s + m(3, j)\n\
               enddo\n\
               return s\nend\n";
    let expected: f64 = (1..=8).map(|j| 30.0 + j as f64).sum();
    assert_eq!(run_both(src, "f", &[]), Value::Float(expected));
}

#[test]
fn array_parameters_share_storage() {
    // saxpy writes through an array parameter; caller observes the result.
    let src = "subroutine saxpy(n, a, x, y)\n\
               integer n, i\n\
               real a, x(*), y(*)\n\
               begin\n\
               do i = 1, n\n\
                 y(i) = a * x(i) + y(i)\n\
               enddo\n\
               end\n\
               function driver()\n\
               real x(16), y(16)\n\
               integer i\n\
               real s\n\
               begin\n\
               do i = 1, 16\n\
                 x(i) = i\n\
                 y(i) = 1\n\
               enddo\n\
               call saxpy(16, 2.0, x, y)\n\
               s = 0\n\
               do i = 1, 16\n\
                 s = s + y(i)\n\
               enddo\n\
               return s\nend\n";
    // y(i) = 2*i + 1; sum = 2*136 + 16 = 288.
    assert_eq!(run_both(src, "driver", &[]), Value::Float(288.0));
}

#[test]
fn function_calls_and_intrinsics() {
    let src = "function norm(a, b)\nreal a, b\nbegin\n\
               return sqrt(a * a + b * b)\nend\n\
               function top()\nbegin\n\
               return norm(3.0, 4.0) + abs(-2.0) + max(1.0, 7.0) + min(3, 2)\nend\n";
    assert_eq!(run_both(src, "top", &[]), Value::Float(5.0 + 2.0 + 7.0 + 2.0));
}

#[test]
fn logic_operators() {
    let src = "function inrange(x, lo, hi)\nreal x, lo, hi\ninteger inrange\nbegin\n\
               if x >= lo .and. x <= hi .or. .not. (x == x) then\n\
                 return 1\n\
               endif\n\
               return 0\nend\n";
    assert_eq!(
        run_both(src, "inrange", &[Value::Float(5.0), Value::Float(0.0), Value::Float(10.0)]),
        Value::Int(1)
    );
    assert_eq!(
        run_both(src, "inrange", &[Value::Float(-5.0), Value::Float(0.0), Value::Float(10.0)]),
        Value::Int(0)
    );
}

#[test]
fn mixed_mode_and_conversions() {
    let src = "function f(i)\ninteger i\nbegin\n\
               return float(i) / 2.0 + int(3.9)\nend\n";
    assert_eq!(run_both(src, "f", &[Value::Int(5)]), Value::Float(2.5 + 3.0));
}

#[test]
fn disciplined_mode_has_no_more_dynamic_ops_than_simple() {
    // Same program, same semantics; the naming discipline reuses names but
    // recomputes, so raw counts match exactly (same instruction sequence).
    let src = "function f(a, b)\nreal a, b, u, v\nbegin\n\
               u = a + b\n\
               v = a + b\n\
               return u * v\nend\n";
    let m1 = compile(src, NamingMode::Simple).unwrap();
    let m2 = compile(src, NamingMode::Disciplined).unwrap();
    let mut i1 = Interpreter::new(&m1);
    let mut i2 = Interpreter::new(&m2);
    let args = [Value::Float(2.0), Value::Float(3.0)];
    assert_eq!(i1.run("f", &args).unwrap(), i2.run("f", &args).unwrap());
    assert_eq!(i1.counts().total, i2.counts().total);
}

#[test]
fn recursion_is_bounded() {
    // The language permits recursion syntactically; the interpreter's depth
    // guard turns runaway recursion into an error rather than a crash.
    let src = "function f(n)\ninteger n\nbegin\nreturn f(n + 1)\nend\n";
    let m = compile(src, NamingMode::Simple).unwrap();
    let mut i = Interpreter::new(&m);
    assert!(i.run("f", &[Value::Int(0)]).is_err());
}

#[test]
fn uninitialized_variable_read_fails() {
    let src = "function f()\ninteger i, j\nbegin\ni = j\nreturn i\nend\n";
    // j declared but never assigned: runtime error, not silent zero.
    let m = compile(src, NamingMode::Simple).unwrap();
    let mut i = Interpreter::new(&m);
    assert!(i.run("f", &[]).is_err());
}

#[test]
fn factorial_recursive() {
    let src = "function fact(n)\ninteger fact, n\nbegin\n\
               if n <= 1 then\n return 1\n endif\n\
               return n * fact(n - 1)\nend\n";
    assert_eq!(run_both(src, "fact", &[Value::Int(10)]), Value::Int(3628800));
}
