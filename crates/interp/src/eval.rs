//! The evaluator: executes a module and counts retired operations.

use epre_ir::{BinOp, BlockId, Function, Inst, Module, Terminator, Ty, UnOp};

use crate::error::ExecError;
use crate::intrinsics::eval_intrinsic;
use crate::value::Value;

/// Dynamic operation counts, the paper's Table 1 metric.
///
/// Every retired instruction and terminator adds one to `total`; the
/// breakdown fields ease debugging and the per-category assertions in
/// tests. Branches are included, as in the paper ("the dynamic operation
/// count, including branches").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// All retired operations.
    pub total: u64,
    /// Arithmetic/logical/comparison/conversion operations.
    pub arith: u64,
    /// `loadi` constant materializations.
    pub loadi: u64,
    /// Register copies.
    pub copies: u64,
    /// Memory loads and stores.
    pub memory: u64,
    /// Calls (user functions and intrinsics).
    pub calls: u64,
    /// Terminators: jumps, conditional branches, returns.
    pub branches: u64,
}

/// The ILOC interpreter. Holds the module, its data-segment memory and the
/// accumulated [`OpCounts`].
///
/// Memory persists across [`run`](Self::run) calls so drivers can call an
/// initialization routine followed by a kernel; call
/// [`reset`](Self::reset) to clear both memory and counters.
#[derive(Debug)]
pub struct Interpreter<'m> {
    module: &'m Module,
    memory: Vec<Value>,
    counts: OpCounts,
    fuel: u64,
    /// The configured budget `fuel` started from, reported by
    /// [`ExecError::OutOfFuel`].
    fuel_budget: u64,
    /// Remaining call depth (guards against runaway recursion).
    depth: u32,
}

/// Default fuel: enough for the full benchmark suite with room to spare.
pub const DEFAULT_FUEL: u64 = 2_000_000_000;
const DEFAULT_DEPTH: u32 = 128;

impl<'m> Interpreter<'m> {
    /// A fresh interpreter for `module` with zeroed memory.
    pub fn new(module: &'m Module) -> Self {
        Interpreter {
            module,
            memory: vec![Value::Int(0); module.data_words],
            counts: OpCounts::default(),
            fuel: DEFAULT_FUEL,
            fuel_budget: DEFAULT_FUEL,
            depth: DEFAULT_DEPTH,
        }
    }

    /// Replace the fuel budget (operations until [`ExecError::OutOfFuel`]).
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self.fuel_budget = fuel;
        self
    }

    /// The configured fuel budget.
    pub fn fuel_budget(&self) -> u64 {
        self.fuel_budget
    }

    /// The accumulated operation counts.
    pub fn counts(&self) -> OpCounts {
        self.counts
    }

    /// Read one word of the data segment (for test assertions).
    pub fn peek(&self, addr: usize) -> Option<Value> {
        self.memory.get(addr).copied()
    }

    /// Clear memory and counters.
    pub fn reset(&mut self) {
        self.memory.fill(Value::Int(0));
        self.counts = OpCounts::default();
    }

    /// Execute `func` with `args`; returns its return value (or `None` for
    /// subroutines).
    ///
    /// # Errors
    /// Any [`ExecError`]; see that type for the catalogue.
    pub fn run(&mut self, func: &str, args: &[Value]) -> Result<Option<Value>, ExecError> {
        let f = self
            .module
            .function(func)
            .ok_or_else(|| ExecError::UnknownFunction(func.to_string()))?;
        self.call_function(f, args)
    }

    fn call_function(&mut self, f: &Function, args: &[Value]) -> Result<Option<Value>, ExecError> {
        if f.params.len() != args.len() {
            return Err(ExecError::ArityMismatch {
                callee: f.name.clone(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        if self.depth == 0 {
            return Err(ExecError::OutOfFuel { budget: self.fuel_budget });
        }
        self.depth -= 1;
        let result = self.exec_body(f, args);
        self.depth += 1;
        result
    }

    fn exec_body(&mut self, f: &Function, args: &[Value]) -> Result<Option<Value>, ExecError> {
        let mut regs: Vec<Option<Value>> = vec![None; f.reg_count()];
        for (&p, &a) in f.params.iter().zip(args) {
            regs[p.index()] = Some(coerce(a, f.ty_of(p)));
        }
        let mut block = BlockId::ENTRY;
        loop {
            let b = f.block(block);
            for inst in &b.insts {
                self.spend()?;
                self.exec_inst(f, inst, &mut regs, block)?;
            }
            self.spend()?;
            self.counts.branches += 1;
            match &b.term {
                Terminator::Jump { target } => block = *target,
                Terminator::Branch { cond, then_to, else_to } => {
                    let c = read(&regs, *cond)?;
                    block = if c.is_truthy() { *then_to } else { *else_to };
                }
                Terminator::Return { value } => {
                    return match value {
                        Some(v) => Ok(Some(read(&regs, *v)?)),
                        None => Ok(None),
                    };
                }
            }
        }
    }

    fn spend(&mut self) -> Result<(), ExecError> {
        if self.fuel == 0 {
            return Err(ExecError::OutOfFuel { budget: self.fuel_budget });
        }
        self.fuel -= 1;
        self.counts.total += 1;
        Ok(())
    }

    fn exec_inst(
        &mut self,
        f: &Function,
        inst: &Inst,
        regs: &mut [Option<Value>],
        block: BlockId,
    ) -> Result<(), ExecError> {
        match inst {
            Inst::Bin { op, ty, dst, lhs, rhs } => {
                self.counts.arith += 1;
                let a = read(regs, *lhs)?;
                let b = read(regs, *rhs)?;
                regs[dst.index()] = Some(eval_bin(*op, *ty, a, b)?);
            }
            Inst::Un { op, ty, dst, src } => {
                self.counts.arith += 1;
                let a = read(regs, *src)?;
                regs[dst.index()] = Some(eval_un(*op, *ty, a)?);
            }
            Inst::LoadI { dst, value } => {
                self.counts.loadi += 1;
                regs[dst.index()] = Some(Value::from(*value));
            }
            Inst::Copy { dst, src } => {
                self.counts.copies += 1;
                regs[dst.index()] = Some(read(regs, *src)?);
            }
            Inst::Load { ty, dst, addr } => {
                self.counts.memory += 1;
                let a = addr_of(read(regs, *addr)?, self.memory.len())?;
                regs[dst.index()] = Some(coerce(self.memory[a], *ty));
            }
            Inst::Store { ty, addr, value } => {
                self.counts.memory += 1;
                let a = addr_of(read(regs, *addr)?, self.memory.len())?;
                let v = read(regs, *value)?;
                self.memory[a] = coerce(v, *ty);
            }
            Inst::Call { dst, callee, args } => {
                self.counts.calls += 1;
                let mut vals = Vec::with_capacity(args.len());
                for &a in args {
                    vals.push(read(regs, a)?);
                }
                let result = match eval_intrinsic(callee, &vals) {
                    Some(r) => Some(r?),
                    None => {
                        let g = self
                            .module
                            .function(callee)
                            .ok_or_else(|| ExecError::UnknownCallee(callee.clone()))?;
                        self.call_function(g, &vals)?
                    }
                };
                if let Some((r, ty)) = dst {
                    let v = result.ok_or_else(|| ExecError::TypeMismatch {
                        what: format!("call `{callee}` returned no value"),
                    })?;
                    regs[r.index()] = Some(coerce(v, *ty));
                }
            }
            Inst::Phi { .. } => return Err(ExecError::PhiExecuted(block)),
        }
        let _ = f;
        Ok(())
    }
}

fn read(regs: &[Option<Value>], r: epre_ir::Reg) -> Result<Value, ExecError> {
    regs[r.index()].ok_or(ExecError::UninitializedRegister(r))
}

fn addr_of(v: Value, size: usize) -> Result<usize, ExecError> {
    let a = v.as_int().ok_or_else(|| ExecError::TypeMismatch { what: "address".into() })?;
    if a < 0 || a as usize >= size {
        return Err(ExecError::OutOfBounds { addr: a, size });
    }
    Ok(a as usize)
}

/// Convert `v` to `ty`. Loads/stores and parameter passing coerce values so
/// that zero-initialized memory reads as `0.0` for float loads.
fn coerce(v: Value, ty: Ty) -> Value {
    match (v, ty) {
        (Value::Int(i), Ty::Float) => Value::Float(i as f64),
        (Value::Float(f), Ty::Int) => Value::Int(f as i64),
        _ => v,
    }
}

fn eval_bin(op: BinOp, ty: Ty, a: Value, b: Value) -> Result<Value, ExecError> {
    // Operands were produced by type-checked code; coerce defensively so a
    // stray Int 0 in Float context behaves like 0.0.
    match ty {
        Ty::Int => {
            let x = a.as_int().ok_or_else(|| ExecError::TypeMismatch { what: format!("{op:?}") })?;
            let y = b.as_int().ok_or_else(|| ExecError::TypeMismatch { what: format!("{op:?}") })?;
            Ok(match op {
                BinOp::Add => Value::Int(x.wrapping_add(y)),
                BinOp::Sub => Value::Int(x.wrapping_sub(y)),
                BinOp::Mul => Value::Int(x.wrapping_mul(y)),
                BinOp::Div => {
                    if y == 0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    Value::Int(x.wrapping_div(y))
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(ExecError::DivisionByZero);
                    }
                    Value::Int(x.wrapping_rem(y))
                }
                BinOp::Min => Value::Int(x.min(y)),
                BinOp::Max => Value::Int(x.max(y)),
                BinOp::And => Value::Int(x & y),
                BinOp::Or => Value::Int(x | y),
                BinOp::Xor => Value::Int(x ^ y),
                BinOp::Shl => Value::Int(x.wrapping_shl((y & 63) as u32)),
                BinOp::Shr => Value::Int(x.wrapping_shr((y & 63) as u32)),
                BinOp::CmpEq => Value::Int((x == y) as i64),
                BinOp::CmpNe => Value::Int((x != y) as i64),
                BinOp::CmpLt => Value::Int((x < y) as i64),
                BinOp::CmpLe => Value::Int((x <= y) as i64),
                BinOp::CmpGt => Value::Int((x > y) as i64),
                BinOp::CmpGe => Value::Int((x >= y) as i64),
            })
        }
        Ty::Float => {
            let x =
                a.as_float().ok_or_else(|| ExecError::TypeMismatch { what: format!("{op:?}") })?;
            let y =
                b.as_float().ok_or_else(|| ExecError::TypeMismatch { what: format!("{op:?}") })?;
            Ok(match op {
                BinOp::Add => Value::Float(x + y),
                BinOp::Sub => Value::Float(x - y),
                BinOp::Mul => Value::Float(x * y),
                BinOp::Div => Value::Float(x / y),
                BinOp::Rem => Value::Float(x % y),
                BinOp::Min => Value::Float(x.min(y)),
                BinOp::Max => Value::Float(x.max(y)),
                BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr => {
                    return Err(ExecError::TypeMismatch { what: format!("float {op:?}") })
                }
                BinOp::CmpEq => Value::Int((x == y) as i64),
                BinOp::CmpNe => Value::Int((x != y) as i64),
                BinOp::CmpLt => Value::Int((x < y) as i64),
                BinOp::CmpLe => Value::Int((x <= y) as i64),
                BinOp::CmpGt => Value::Int((x > y) as i64),
                BinOp::CmpGe => Value::Int((x >= y) as i64),
            })
        }
    }
}

fn eval_un(op: UnOp, ty: Ty, a: Value) -> Result<Value, ExecError> {
    match op {
        UnOp::Neg => match (ty, a) {
            (Ty::Int, Value::Int(x)) => Ok(Value::Int(x.wrapping_neg())),
            (Ty::Float, Value::Float(x)) => Ok(Value::Float(-x)),
            _ => Err(ExecError::TypeMismatch { what: "neg".into() }),
        },
        UnOp::Not => match a {
            Value::Int(x) => Ok(Value::Int(!x)),
            _ => Err(ExecError::TypeMismatch { what: "not".into() }),
        },
        UnOp::I2F => match a {
            Value::Int(x) => Ok(Value::Float(x as f64)),
            _ => Err(ExecError::TypeMismatch { what: "i2f".into() }),
        },
        UnOp::F2I => match a {
            Value::Float(x) => Ok(Value::Int(x as i64)),
            _ => Err(ExecError::TypeMismatch { what: "f2i".into() }),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{Const, FunctionBuilder};

    fn module_of(f: Function) -> Module {
        let mut m = Module::new();
        m.functions.push(f);
        m
    }

    #[test]
    fn counts_every_operation() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let c = b.loadi(Const::Int(1));
        let s = b.bin(BinOp::Add, Ty::Int, x, c);
        b.ret(Some(s));
        let m = module_of(b.finish());
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("f", &[Value::Int(4)]).unwrap(), Some(Value::Int(5)));
        let c = i.counts();
        assert_eq!(c.total, 3);
        assert_eq!(c.loadi, 1);
        assert_eq!(c.arith, 1);
        assert_eq!(c.branches, 1);
    }

    #[test]
    fn loop_counts_scale_with_iterations() {
        // for i in 0..n: s += i
        let mut b = FunctionBuilder::new("sum", Some(Ty::Int));
        let n = b.param(Ty::Int);
        let s = b.new_reg(Ty::Int);
        let i = b.new_reg(Ty::Int);
        let head = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let z = b.loadi(Const::Int(0));
        b.copy_to(s, z);
        b.copy_to(i, z);
        b.jump(head);
        b.switch_to(head);
        let c = b.bin(BinOp::CmpLt, Ty::Int, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let s2 = b.bin(BinOp::Add, Ty::Int, s, i);
        b.copy_to(s, s2);
        let one = b.loadi(Const::Int(1));
        let i2 = b.bin(BinOp::Add, Ty::Int, i, one);
        b.copy_to(i, i2);
        b.jump(head);
        b.switch_to(exit);
        b.ret(Some(s));
        let m = module_of(b.finish());

        let mut i10 = Interpreter::new(&m);
        assert_eq!(i10.run("sum", &[Value::Int(10)]).unwrap(), Some(Value::Int(45)));
        let mut i20 = Interpreter::new(&m);
        i20.run("sum", &[Value::Int(20)]).unwrap();
        assert!(i20.counts().total > i10.counts().total);
        // entry (4) + 11 header visits × 2 + 10 body iterations × 6 + ret.
        assert_eq!(i10.counts().total, 4 + 11 * 2 + 10 * 6 + 1);
    }

    #[test]
    fn memory_round_trip_and_bounds() {
        let mut b = FunctionBuilder::new("mem", Some(Ty::Float));
        let addr = b.param(Ty::Int);
        let v = b.loadi(Const::Float(2.5));
        b.store(Ty::Float, addr, v);
        let r = b.load(Ty::Float, addr);
        b.ret(Some(r));
        let mut m = module_of(b.finish());
        m.data_words = 8;
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("mem", &[Value::Int(3)]).unwrap(), Some(Value::Float(2.5)));
        assert_eq!(i.peek(3), Some(Value::Float(2.5)));
        let mut i = Interpreter::new(&m);
        assert!(matches!(
            i.run("mem", &[Value::Int(8)]),
            Err(ExecError::OutOfBounds { addr: 8, size: 8 })
        ));
        let mut i = Interpreter::new(&m);
        assert!(matches!(i.run("mem", &[Value::Int(-1)]), Err(ExecError::OutOfBounds { .. })));
    }

    #[test]
    fn uninitialized_register_is_an_error() {
        let mut b = FunctionBuilder::new("u", Some(Ty::Int));
        let ghost = b.new_reg(Ty::Int);
        b.ret(Some(ghost));
        let m = module_of(b.finish());
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("u", &[]), Err(ExecError::UninitializedRegister(ghost)));
    }

    #[test]
    fn integer_division_by_zero() {
        let mut b = FunctionBuilder::new("d", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let z = b.loadi(Const::Int(0));
        let q = b.bin(BinOp::Div, Ty::Int, x, z);
        b.ret(Some(q));
        let m = module_of(b.finish());
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("d", &[Value::Int(1)]), Err(ExecError::DivisionByZero));
    }

    #[test]
    fn float_division_by_zero_is_ieee() {
        let mut b = FunctionBuilder::new("d", Some(Ty::Float));
        let x = b.param(Ty::Float);
        let z = b.loadi(Const::Float(0.0));
        let q = b.bin(BinOp::Div, Ty::Float, x, z);
        b.ret(Some(q));
        let m = module_of(b.finish());
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("d", &[Value::Float(1.0)]).unwrap(), Some(Value::Float(f64::INFINITY)));
    }

    #[test]
    fn user_calls_and_intrinsics() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("hyp", Some(Ty::Float));
        let x = b.param(Ty::Float);
        let y = b.param(Ty::Float);
        let xx = b.bin(BinOp::Mul, Ty::Float, x, x);
        let yy = b.bin(BinOp::Mul, Ty::Float, y, y);
        let s = b.bin(BinOp::Add, Ty::Float, xx, yy);
        let r = b.call("sqrt", vec![s], Ty::Float);
        b.ret(Some(r));
        m.functions.push(b.finish());
        let mut b = FunctionBuilder::new("main", Some(Ty::Float));
        let a = b.loadi(Const::Float(3.0));
        let c = b.loadi(Const::Float(4.0));
        let h = b.call("hyp", vec![a, c], Ty::Float);
        b.ret(Some(h));
        m.functions.push(b.finish());
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("main", &[]).unwrap(), Some(Value::Float(5.0)));
        // Counts include the callee's operations.
        assert!(i.counts().total > 5);
        assert_eq!(i.counts().calls, 2);
    }

    #[test]
    fn fuel_exhaustion() {
        let mut b = FunctionBuilder::new("spin", None);
        let l = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.jump(l);
        let m = module_of(b.finish());
        let mut i = Interpreter::new(&m).with_fuel(1000);
        assert_eq!(i.run("spin", &[]), Err(ExecError::OutOfFuel { budget: 1000 }));
    }

    #[test]
    fn phi_execution_is_an_error() {
        let mut b = FunctionBuilder::new("p", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let d = b.new_reg(Ty::Int);
        b.push(Inst::Phi { dst: d, args: vec![] });
        b.ret(Some(x));
        let m = module_of(b.finish());
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("p", &[Value::Int(0)]), Err(ExecError::PhiExecuted(BlockId::ENTRY)));
    }

    #[test]
    fn arity_and_unknowns() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        b.ret(Some(x));
        let m = module_of(b.finish());
        let mut i = Interpreter::new(&m);
        assert!(matches!(i.run("f", &[]), Err(ExecError::ArityMismatch { .. })));
        assert!(matches!(i.run("g", &[]), Err(ExecError::UnknownFunction(_))));
    }

    #[test]
    fn min_max_and_shifts() {
        let mut b = FunctionBuilder::new("mm", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let y = b.param(Ty::Int);
        let mn = b.bin(BinOp::Min, Ty::Int, x, y);
        let mx = b.bin(BinOp::Max, Ty::Int, x, y);
        let d = b.bin(BinOp::Sub, Ty::Int, mx, mn);
        let one = b.loadi(Const::Int(1));
        let sh = b.bin(BinOp::Shl, Ty::Int, d, one);
        b.ret(Some(sh));
        let m = module_of(b.finish());
        let mut i = Interpreter::new(&m);
        assert_eq!(i.run("mm", &[Value::Int(3), Value::Int(10)]).unwrap(), Some(Value::Int(14)));
    }

    #[test]
    fn reset_clears_state() {
        let mut b = FunctionBuilder::new("f", Some(Ty::Int));
        let x = b.param(Ty::Int);
        b.ret(Some(x));
        let mut m = module_of(b.finish());
        m.data_words = 4;
        let mut i = Interpreter::new(&m);
        i.run("f", &[Value::Int(1)]).unwrap();
        assert!(i.counts().total > 0);
        i.reset();
        assert_eq!(i.counts().total, 0);
        assert_eq!(i.peek(0), Some(Value::Int(0)));
    }
}
