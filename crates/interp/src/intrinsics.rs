//! Intrinsic functions callable from ILOC.
//!
//! The FORTRAN routines in the benchmark suite use the standard library
//! functions below. Intrinsic calls are still `call` instructions in the
//! IR — opaque to every optimization, exactly like the paper's treatment
//! of procedure calls (rank rule 2 applies to their results).

use crate::error::ExecError;
use crate::value::Value;

/// Evaluate intrinsic `name` on `args`, or return `None` if `name` is not
/// an intrinsic (the caller then looks for a user function).
///
/// # Errors
/// Returns [`ExecError::IntrinsicType`] on argument type/arity mismatch.
pub fn eval_intrinsic(name: &str, args: &[Value]) -> Option<Result<Value, ExecError>> {
    let f1 = |f: fn(f64) -> f64| -> Result<Value, ExecError> {
        match args {
            [Value::Float(x)] => Ok(Value::Float(f(*x))),
            _ => Err(ExecError::IntrinsicType { name: name.to_string() }),
        }
    };
    let f2 = |f: fn(f64, f64) -> f64| -> Result<Value, ExecError> {
        match args {
            [Value::Float(x), Value::Float(y)] => Ok(Value::Float(f(*x, *y))),
            _ => Err(ExecError::IntrinsicType { name: name.to_string() }),
        }
    };
    Some(match name {
        "sqrt" => f1(f64::sqrt),
        "exp" => f1(f64::exp),
        "log" => f1(f64::ln),
        "log10" => f1(f64::log10),
        "sin" => f1(f64::sin),
        "cos" => f1(f64::cos),
        "tan" => f1(f64::tan),
        "atan" => f1(f64::atan),
        "atan2" => f2(f64::atan2),
        "pow" => f2(f64::powf),
        "abs" => match args {
            [Value::Float(x)] => Ok(Value::Float(x.abs())),
            [Value::Int(x)] => Ok(Value::Int(x.wrapping_abs())),
            _ => Err(ExecError::IntrinsicType { name: name.to_string() }),
        },
        "sign" => match args {
            // FORTRAN SIGN(a, b): |a| with the sign of b.
            [Value::Float(a), Value::Float(b)] => {
                Ok(Value::Float(if *b < 0.0 { -a.abs() } else { a.abs() }))
            }
            [Value::Int(a), Value::Int(b)] => {
                Ok(Value::Int(if *b < 0 { -a.wrapping_abs() } else { a.wrapping_abs() }))
            }
            _ => Err(ExecError::IntrinsicType { name: name.to_string() }),
        },
        "mod" => match args {
            [Value::Int(a), Value::Int(b)] => {
                if *b == 0 {
                    Err(ExecError::DivisionByZero)
                } else {
                    Ok(Value::Int(a.wrapping_rem(*b)))
                }
            }
            [Value::Float(a), Value::Float(b)] => Ok(Value::Float(a % b)),
            _ => Err(ExecError::IntrinsicType { name: name.to_string() }),
        },
        _ => return None,
    })
}

/// Is `name` an intrinsic? (Used by the front end's call type-checking.)
pub fn is_intrinsic(name: &str) -> bool {
    matches!(
        name,
        "sqrt"
            | "exp"
            | "log"
            | "log10"
            | "sin"
            | "cos"
            | "tan"
            | "atan"
            | "atan2"
            | "pow"
            | "abs"
            | "sign"
            | "mod"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_unary() {
        let r = eval_intrinsic("sqrt", &[Value::Float(9.0)]).unwrap().unwrap();
        assert_eq!(r, Value::Float(3.0));
        assert!(eval_intrinsic("sqrt", &[Value::Int(9)]).unwrap().is_err());
    }

    #[test]
    fn abs_is_polymorphic() {
        assert_eq!(eval_intrinsic("abs", &[Value::Int(-3)]).unwrap().unwrap(), Value::Int(3));
        assert_eq!(
            eval_intrinsic("abs", &[Value::Float(-2.5)]).unwrap().unwrap(),
            Value::Float(2.5)
        );
    }

    #[test]
    fn sign_follows_fortran() {
        assert_eq!(
            eval_intrinsic("sign", &[Value::Float(3.0), Value::Float(-1.0)]).unwrap().unwrap(),
            Value::Float(-3.0)
        );
        assert_eq!(
            eval_intrinsic("sign", &[Value::Int(-3), Value::Int(5)]).unwrap().unwrap(),
            Value::Int(3)
        );
    }

    #[test]
    fn int_mod_by_zero_errors() {
        assert_eq!(
            eval_intrinsic("mod", &[Value::Int(5), Value::Int(0)]).unwrap(),
            Err(ExecError::DivisionByZero)
        );
        assert_eq!(
            eval_intrinsic("mod", &[Value::Int(7), Value::Int(3)]).unwrap().unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(eval_intrinsic("frobnicate", &[]).is_none());
        assert!(!is_intrinsic("frobnicate"));
        assert!(is_intrinsic("atan2"));
    }
}
