//! # epre-interp — an ILOC interpreter with dynamic operation counting
//!
//! The paper's back end translates ILOC to C "instrumented to accumulate
//! dynamic counts of ILOC operations"; Table 1 reports those counts,
//! *including branches*. This crate replaces that back end with a direct
//! interpreter: it executes a [`epre_ir::Module`] and tallies every
//! instruction and terminator it retires, so two optimization levels can be
//! compared by the exact metric the paper uses.
//!
//! ```
//! use epre_ir::{FunctionBuilder, Ty, Const, BinOp, Module};
//! use epre_interp::{Interpreter, Value};
//!
//! let mut b = FunctionBuilder::new("twice", Some(Ty::Int));
//! let x = b.param(Ty::Int);
//! let two = b.loadi(Const::Int(2));
//! let y = b.bin(BinOp::Mul, Ty::Int, x, two);
//! b.ret(Some(y));
//! let mut m = Module::new();
//! m.functions.push(b.finish());
//!
//! let mut interp = Interpreter::new(&m);
//! let out = interp.run("twice", &[Value::Int(21)]).unwrap();
//! assert_eq!(out, Some(Value::Int(42)));
//! assert_eq!(interp.counts().total, 3); // loadi, mul, ret
//! ```

pub mod error;
pub mod eval;
pub mod intrinsics;
pub mod value;

pub use error::ExecError;
pub use eval::{Interpreter, OpCounts, DEFAULT_FUEL};
pub use value::Value;
