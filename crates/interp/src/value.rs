//! Runtime values.

use epre_ir::{Const, Ty};
use std::fmt;

/// A runtime value: one machine word, integer or float.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer (also addresses and booleans).
    Int(i64),
    /// A 64-bit float.
    Float(f64),
}

impl Value {
    /// The value's type.
    pub fn ty(self) -> Ty {
        match self {
            Value::Int(_) => Ty::Int,
            Value::Float(_) => Ty::Float,
        }
    }

    /// The integer payload, if integral.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(v),
            Value::Float(_) => None,
        }
    }

    /// The float payload, if floating.
    pub fn as_float(self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(v),
            Value::Int(_) => None,
        }
    }

    /// Zero of the given type (the content of untouched memory).
    pub fn zero(ty: Ty) -> Value {
        match ty {
            Ty::Int => Value::Int(0),
            Ty::Float => Value::Float(0.0),
        }
    }

    /// Is the value non-zero (branch truth)?
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }
}

impl From<Const> for Value {
    fn from(c: Const) -> Value {
        match c {
            Const::Int(v) => Value::Int(v),
            Const::Float(v) => Value::Float(v),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(Const::Int(3)), Value::Int(3));
        assert_eq!(Value::from(Const::Float(2.5)), Value::Float(2.5));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(1.5f64), Value::Float(1.5));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_float(), None);
        assert_eq!(Value::Float(2.0).as_float(), Some(2.0));
        assert_eq!(Value::Int(1).ty(), Ty::Int);
        assert_eq!(Value::Float(0.0).ty(), Ty::Float);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Float(0.5).is_truthy());
        assert!(!Value::Float(0.0).is_truthy());
    }

    #[test]
    fn zeros() {
        assert_eq!(Value::zero(Ty::Int), Value::Int(0));
        assert_eq!(Value::zero(Ty::Float), Value::Float(0.0));
    }
}
