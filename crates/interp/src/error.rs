//! Execution errors.

use epre_ir::{BlockId, Reg};
use std::fmt;

/// A runtime error raised by the interpreter.
///
/// Errors are deterministic: an unoptimized and an optimized version of the
/// same program either both complete with the same value or both fail (the
/// property tests in `epre-passes` rely on this).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The named function does not exist in the module.
    UnknownFunction(String),
    /// Wrong number of arguments passed to a function.
    ArityMismatch {
        /// Callee name.
        callee: String,
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// A register was read before any definition wrote it.
    UninitializedRegister(Reg),
    /// A memory access fell outside the data segment.
    OutOfBounds {
        /// The offending address.
        addr: i64,
        /// Size of the data segment in words.
        size: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// A φ-node was executed (the module was not taken out of SSA form).
    PhiExecuted(BlockId),
    /// An intrinsic received an argument of the wrong type.
    IntrinsicType {
        /// Intrinsic name.
        name: String,
    },
    /// Unknown callee (not a module function, not an intrinsic).
    UnknownCallee(String),
    /// The fuel budget was exhausted (probable infinite loop), or the call
    /// depth guard tripped (runaway recursion). Carries the configured fuel
    /// budget — i.e. how many operations were allowed, all of which were
    /// consumed — so the variant compares equal between an optimized and an
    /// unoptimized run under the same budget even though the two retire
    /// different operation counts per iteration.
    OutOfFuel {
        /// The fuel budget the interpreter was configured with.
        budget: u64,
    },
    /// An operand had the wrong type for its instruction.
    TypeMismatch {
        /// Description of the faulting operation.
        what: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::ArityMismatch { callee, expected, got } => {
                write!(f, "`{callee}` expects {expected} arguments, got {got}")
            }
            ExecError::UninitializedRegister(r) => {
                write!(f, "read of uninitialized register {r}")
            }
            ExecError::OutOfBounds { addr, size } => {
                write!(f, "memory access at {addr} outside data segment of {size} words")
            }
            ExecError::DivisionByZero => write!(f, "integer division by zero"),
            ExecError::PhiExecuted(b) => write!(f, "φ-node executed in {b}"),
            ExecError::IntrinsicType { name } => {
                write!(f, "intrinsic `{name}` received wrong argument type")
            }
            ExecError::UnknownCallee(n) => write!(f, "unknown callee `{n}`"),
            ExecError::OutOfFuel { budget } => {
                write!(f, "fuel exhausted after {budget} operations")
            }
            ExecError::TypeMismatch { what } => write!(f, "type mismatch in {what}"),
        }
    }
}

impl ExecError {
    /// The variant's stable name, independent of its payload.
    ///
    /// The differential oracle in `epre-harness` and the §4.2 degradation
    /// tests compare failures *by variant*: an optimized and an unoptimized
    /// program must fail the same way, but payloads that legitimately track
    /// dynamic details (the interpreter's configured budget aside, e.g. a
    /// message string) should not distinguish them.
    pub fn variant_name(&self) -> &'static str {
        match self {
            ExecError::UnknownFunction(_) => "unknown-function",
            ExecError::ArityMismatch { .. } => "arity-mismatch",
            ExecError::UninitializedRegister(_) => "uninitialized-register",
            ExecError::OutOfBounds { .. } => "out-of-bounds",
            ExecError::DivisionByZero => "division-by-zero",
            ExecError::PhiExecuted(_) => "phi-executed",
            ExecError::IntrinsicType { .. } => "intrinsic-type",
            ExecError::UnknownCallee(_) => "unknown-callee",
            ExecError::OutOfFuel { .. } => "out-of-fuel",
            ExecError::TypeMismatch { .. } => "type-mismatch",
        }
    }

    /// Do two errors have the same variant (payloads ignored)?
    pub fn same_variant(&self, other: &ExecError) -> bool {
        std::mem::discriminant(self) == std::mem::discriminant(other)
    }
}

impl std::error::Error for ExecError {}
