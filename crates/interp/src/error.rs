//! Execution errors.

use epre_ir::{BlockId, Reg};
use std::fmt;

/// A runtime error raised by the interpreter.
///
/// Errors are deterministic: an unoptimized and an optimized version of the
/// same program either both complete with the same value or both fail (the
/// property tests in `epre-passes` rely on this).
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The named function does not exist in the module.
    UnknownFunction(String),
    /// Wrong number of arguments passed to a function.
    ArityMismatch {
        /// Callee name.
        callee: String,
        /// Expected parameter count.
        expected: usize,
        /// Provided argument count.
        got: usize,
    },
    /// A register was read before any definition wrote it.
    UninitializedRegister(Reg),
    /// A memory access fell outside the data segment.
    OutOfBounds {
        /// The offending address.
        addr: i64,
        /// Size of the data segment in words.
        size: usize,
    },
    /// Integer division or remainder by zero.
    DivisionByZero,
    /// A φ-node was executed (the module was not taken out of SSA form).
    PhiExecuted(BlockId),
    /// An intrinsic received an argument of the wrong type.
    IntrinsicType {
        /// Intrinsic name.
        name: String,
    },
    /// Unknown callee (not a module function, not an intrinsic).
    UnknownCallee(String),
    /// The fuel budget was exhausted (probable infinite loop).
    OutOfFuel,
    /// An operand had the wrong type for its instruction.
    TypeMismatch {
        /// Description of the faulting operation.
        what: String,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::ArityMismatch { callee, expected, got } => {
                write!(f, "`{callee}` expects {expected} arguments, got {got}")
            }
            ExecError::UninitializedRegister(r) => {
                write!(f, "read of uninitialized register {r}")
            }
            ExecError::OutOfBounds { addr, size } => {
                write!(f, "memory access at {addr} outside data segment of {size} words")
            }
            ExecError::DivisionByZero => write!(f, "integer division by zero"),
            ExecError::PhiExecuted(b) => write!(f, "φ-node executed in {b}"),
            ExecError::IntrinsicType { name } => {
                write!(f, "intrinsic `{name}` received wrong argument type")
            }
            ExecError::UnknownCallee(n) => write!(f, "unknown callee `{n}`"),
            ExecError::OutOfFuel => write!(f, "fuel exhausted"),
            ExecError::TypeMismatch { what } => write!(f, "type mismatch in {what}"),
        }
    }
}

impl std::error::Error for ExecError {}
