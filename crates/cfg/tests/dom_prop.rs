#![cfg(feature = "prop-tests")]
// Gated: requires the proptest dev-dependency, which the offline build
// environment cannot fetch. Restore it in Cargo.toml and build with
// `--features prop-tests` to run these.

//! Property test: the Cooper–Harvey–Kennedy dominator computation agrees
//! with the naive O(n²) iterative definition on random control-flow
//! graphs, including irreducible ones.

use proptest::prelude::*;

use epre_cfg::{Cfg, Dominators};
use epre_ir::{Block, BlockId, Const, Function, Inst, Terminator, Ty};

/// Build a function with `n` blocks and arbitrary terminators drawn from
/// the seed list (pairs of target indices; equal pair = jump; the last
/// block always returns so the graph has an exit).
fn build(n: usize, seeds: &[(usize, usize)]) -> Function {
    let mut f = Function::new("g", None);
    let c = f.new_reg(Ty::Int);
    for i in 0..n {
        let term = if i == n - 1 {
            Terminator::Return { value: None }
        } else {
            let (a, b) = seeds[i % seeds.len()];
            let t = BlockId((a % n) as u32);
            let e = BlockId((b % n) as u32);
            if t == e {
                Terminator::Jump { target: t }
            } else {
                Terminator::Branch { cond: c, then_to: t, else_to: e }
            }
        };
        let mut blk = Block::new(term);
        if i == 0 {
            blk.insts.push(Inst::LoadI { dst: c, value: Const::Int(1) });
        }
        f.add_block(blk);
    }
    f
}

/// Naive dominators: Dom(entry) = {entry}; Dom(b) = {b} ∪ ∩ Dom(preds).
fn naive(cfg: &Cfg) -> Vec<Vec<bool>> {
    let n = cfg.len();
    let reach = cfg.reachable();
    let mut dom = vec![vec![true; n]; n];
    dom[0] = vec![false; n];
    dom[0][0] = true;
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            if !reach[b] {
                continue;
            }
            let mut new = vec![true; n];
            let mut any = false;
            for &p in cfg.preds(BlockId(b as u32)) {
                if !reach[p.index()] {
                    continue;
                }
                any = true;
                for (x, n_x) in new.iter_mut().enumerate() {
                    *n_x = *n_x && dom[p.index()][x];
                }
            }
            if !any {
                new = vec![false; n];
            }
            new[b] = true;
            if new != dom[b] {
                dom[b] = new;
                changed = true;
            }
        }
    }
    dom
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    #[test]
    fn chk_matches_naive(n in 2usize..12,
                         seeds in prop::collection::vec((0usize..12, 0usize..12), 1..12)) {
        let f = build(n, &seeds);
        prop_assert!(f.verify().is_ok());
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let reference = naive(&cfg);
        let reach = cfg.reachable();
        for a in 0..n {
            for b in 0..n {
                if !reach[a] || !reach[b] {
                    continue;
                }
                let fast = dom.dominates(BlockId(a as u32), BlockId(b as u32));
                let slow = reference[b][a];
                prop_assert_eq!(fast, slow, "dominates(b{}, b{}) on n={} seeds={:?}", a, b, n, seeds);
            }
        }
    }

    #[test]
    fn rpo_numbers_dominators_first(n in 2usize..12,
                                    seeds in prop::collection::vec((0usize..12, 0usize..12), 1..12)) {
        // A dominator always precedes its dominatee in reverse postorder.
        let f = build(n, &seeds);
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&f, &cfg);
        let rpo = dom.rpo();
        for b in f.block_ids() {
            if let Some(d) = dom.idom(b) {
                prop_assert!(rpo.number(d).unwrap() < rpo.number(b).unwrap());
            }
        }
    }
}
