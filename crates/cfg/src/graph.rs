//! Predecessor/successor maps: [`Cfg`].

use epre_ir::{BlockId, Function};

/// The control-flow graph of a function, as dense predecessor and successor
/// lists.
///
/// A `Cfg` is a snapshot: any pass that adds, removes or retargets blocks
/// must rebuild it. Duplicate edges (a conditional branch whose two targets
/// coincide) are collapsed to a single edge, so a block appears at most once
/// in another block's predecessor list — which is what φ-node placement and
/// PRE edge placement require.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Build the CFG snapshot of `f`.
    pub fn new(f: &Function) -> Self {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (id, block) in f.iter_blocks() {
            let mut ss = block.term.successors();
            ss.dedup();
            // A two-way branch to the same block yields one edge; dedup()
            // suffices because successors() lists at most two targets.
            for s in &ss {
                preds[s.index()].push(id);
            }
            succs[id.index()] = ss;
        }
        Cfg { preds, succs }
    }

    /// Number of blocks the snapshot covers.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the function had no blocks (never the case for verified IR).
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// The predecessors of `b`, each listed once, in discovery order.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// The successors of `b`, each listed once, in terminator order.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// All `(from, to)` edges, in block order.
    pub fn edges(&self) -> Vec<(BlockId, BlockId)> {
        let mut out = Vec::new();
        for (i, ss) in self.succs.iter().enumerate() {
            for &s in ss {
                out.push((BlockId(i as u32), s));
            }
        }
        out
    }

    /// Is `(from, to)` a *critical* edge — one from a block with several
    /// successors to a block with several predecessors?
    ///
    /// Critical edges must be split before code can be placed "on" an edge
    /// (PRE insertion, φ destruction).
    pub fn is_critical(&self, from: BlockId, to: BlockId) -> bool {
        self.succs(from).len() > 1 && self.preds(to).len() > 1
    }

    /// Blocks reachable from the entry, as a dense bool map.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if self.is_empty() {
            return seen;
        }
        let mut stack = vec![BlockId::ENTRY];
        seen[BlockId::ENTRY.index()] = true;
        while let Some(b) = stack.pop() {
            for &s in self.succs(b) {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Blocks whose terminator is a return (the CFG exits).
    pub fn exits(&self) -> Vec<BlockId> {
        (0..self.len())
            .map(|i| BlockId(i as u32))
            .filter(|b| self.succs(*b).is_empty())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use epre_ir::{BinOp, Const, FunctionBuilder, Ty};

    /// entry -> {then, else} -> join -> ret, plus a self-loop on `then`.
    fn diamond_with_loop() -> (epre_ir::Function, [BlockId; 4]) {
        let mut b = FunctionBuilder::new("d", Some(Ty::Int));
        let x = b.param(Ty::Int);
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let z = b.loadi(Const::Int(0));
        let c = b.bin(BinOp::CmpLt, Ty::Int, x, z);
        b.branch(c, t, e);
        b.switch_to(t);
        b.branch(c, t, j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(Some(x));
        (b.finish(), [BlockId(0), t, e, j])
    }

    #[test]
    fn preds_and_succs() {
        let (f, [entry, t, e, j]) = diamond_with_loop();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(entry), &[t, e]);
        assert_eq!(cfg.succs(t), &[t, j]);
        assert_eq!(cfg.preds(j), &[t, e]);
        assert_eq!(cfg.preds(entry), &[] as &[BlockId]);
        assert_eq!(cfg.len(), 4);
        assert!(!cfg.is_empty());
    }

    #[test]
    fn duplicate_branch_targets_collapse() {
        let mut b = FunctionBuilder::new("dup", None);
        let c = b.loadi(Const::Int(1));
        let t = b.new_block();
        b.branch(c, t, t);
        b.switch_to(t);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId(0)).len(), 1);
        assert_eq!(cfg.preds(t).len(), 1);
    }

    #[test]
    fn critical_edge_detection() {
        let (f, [entry, t, _e, j]) = diamond_with_loop();
        let cfg = Cfg::new(&f);
        // t has two successors; j has two predecessors: (t, j) is critical.
        assert!(cfg.is_critical(t, j));
        // entry->t: t has preds {entry, t}... t also self-loops so (entry,t)
        // is critical too (entry has 2 succs, t has 2 preds).
        assert!(cfg.is_critical(entry, t));
    }

    #[test]
    fn reachability_and_exits() {
        let (f, [_, _, _, j]) = diamond_with_loop();
        let cfg = Cfg::new(&f);
        assert!(cfg.reachable().iter().all(|&r| r));
        assert_eq!(cfg.exits(), vec![j]);
    }

    #[test]
    fn unreachable_block_detected() {
        let mut b = FunctionBuilder::new("u", None);
        b.ret(None);
        let dead = b.new_block();
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let r = cfg.reachable();
        assert!(r[0]);
        assert!(!r[dead.index()]);
    }

    #[test]
    fn edges_enumeration() {
        let (f, [entry, t, e, j]) = diamond_with_loop();
        let cfg = Cfg::new(&f);
        let edges = cfg.edges();
        assert!(edges.contains(&(entry, t)));
        assert!(edges.contains(&(t, t)));
        assert!(edges.contains(&(e, j)));
        assert_eq!(edges.len(), 5);
    }
}
