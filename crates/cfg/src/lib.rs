//! # epre-cfg — control-flow analysis for `epre-ir`
//!
//! Control-flow infrastructure shared by every pass in the Effective PRE
//! pipeline (Briggs & Cooper, PLDI 1994):
//!
//! * [`Cfg`] — predecessor/successor maps derived from a function's
//!   terminators,
//! * [`order`] — postorder and the **reverse postorder** traversal that the
//!   paper's rank computation walks (§3.1 "we traverse the control-flow
//!   graph in reverse postorder, assigning ranks"),
//! * [`dom`] — immediate dominators (Cooper–Harvey–Kennedy iterative
//!   algorithm), the dominator tree, and **dominance frontiers** (Cytron et
//!   al.) used to place φ-nodes,
//! * [`loops`] — natural loops and per-block **loop nesting depth**,
//! * [`edit`] — CFG surgery: splitting (critical) edges, needed both by
//!   forward propagation (§3.1 "if necessary, the entering edges are split")
//!   and by PRE's edge placement of inserted computations.
//!
//! ```
//! use epre_ir::{FunctionBuilder, Ty, Const, BinOp};
//! use epre_cfg::{Cfg, dom::Dominators};
//!
//! let mut b = FunctionBuilder::new("loopy", Some(Ty::Int));
//! let n = b.param(Ty::Int);
//! let head = b.new_block();
//! let body = b.new_block();
//! let exit = b.new_block();
//! b.jump(head);
//! b.switch_to(head);
//! let z = b.loadi(Const::Int(0));
//! let c = b.bin(BinOp::CmpLt, Ty::Int, z, n);
//! b.branch(c, body, exit);
//! b.switch_to(body);
//! b.jump(head);
//! b.switch_to(exit);
//! b.ret(Some(n));
//! let f = b.finish();
//!
//! let cfg = Cfg::new(&f);
//! let dom = Dominators::new(&f, &cfg);
//! assert!(dom.dominates(head, body));
//! ```

pub mod dom;
pub mod edit;
pub mod graph;
pub mod loops;
pub mod order;

pub use dom::Dominators;
pub use graph::Cfg;
pub use loops::LoopInfo;
pub use order::{postorder, reverse_postorder, RpoNumbers};
